"""E10 — Corollary 1.3: batch-dynamic maximal matching.

A churn stream drives the matching structure; we record per-batch work,
verify maximality after every batch, and report the burstiness profile
(worst-case flavour should persist through the application layer).
"""

from __future__ import annotations

from repro.apps import MaximalMatching
from repro.graphs import streams
from repro.instrument import CostModel, render_table

from common import CONSTANTS, Experiment, drive, spike_ratio

N = 32
RHO_MAX = 6


def measure():
    cm = CostModel()
    mm = MaximalMatching(RHO_MAX, N, eps=0.4, cm=cm, constants=CONSTANTS, seed=15)
    ops = streams.churn(N, steps=40, batch_size=6, seed=15)
    series = drive(mm, ops, cm)
    mm.check_matching()
    return series, mm


def run_experiment() -> Experiment:
    series, mm = measure()
    rows = [
        ("batches processed", len(series.records)),
        ("final matching size", len(mm.matching())),
        ("mean work / edge", f"{series.mean_work_per_edge():.0f}"),
        ("p99 work / edge", f"{series.percentile_work_per_edge(99):.0f}"),
        ("max work / edge", f"{series.max_work_per_edge():.0f}"),
        ("spike (max/median)", f"{spike_ratio(series):.1f}x"),
        ("max batch depth", series.max_depth()),
    ]
    table = render_table(["metric", "value"], rows)
    return Experiment(
        exp_id="E10",
        title="batch-dynamic maximal matching (Corollary 1.3)",
        claim=(
            "maximal matching maintained with O(rho_max + polylog) "
            "worst-case work per edge and polylog depth per batch"
        ),
        table=table,
        conclusion=(
            "maximality re-verified after all batches; per-edge work stays "
            f"within a {spike_ratio(series):.1f}x band of its median — the "
            "worst-case profile survives the application layer because "
            "re-matching only touches O(rho_max)-degree neighbourhoods of "
            "freed vertices."
        ),
    )


def test_e10_matching_maximal_throughout():
    cm = CostModel()
    mm = MaximalMatching(RHO_MAX, N, eps=0.4, cm=cm, constants=CONSTANTS, seed=15)
    for op in streams.churn(N, steps=40, batch_size=6, seed=15):
        if op.kind == "insert":
            mm.insert_batch(op.edges)
        else:
            mm.delete_batch(op.edges)
        mm.check_matching()


def test_e10_bounded_burstiness():
    series, _ = measure()
    assert spike_ratio(series) < 30


def test_e10_wallclock(benchmark):
    benchmark.pedantic(measure, rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
