"""E11 — Corollaries 1.4 / 1.5: explicit and implicit coloring.

Explicit: palette size C = O(rho_max log n); colors used; fallback count
(zero means the w.h.p. argument held at laptop constants).
Implicit: palette reached after the Linial rounds vs the O(rho^2)-flavour
bound; per-query cost.
"""

from __future__ import annotations

from repro.apps import ExplicitColoring, ImplicitColoring
from repro.graphs import generators as gen, streams
from repro.instrument import CostModel, render_table

from common import CONSTANTS, Experiment

N = 28
RHO_MAX = 5


def run_explicit():
    ec = ExplicitColoring(RHO_MAX, N, eps=0.4, constants=CONSTANTS, seed=16)
    live: set = set()
    for op in streams.churn(N, steps=20, batch_size=6, seed=16):
        if op.kind == "insert":
            ec.insert_batch(op.edges)
            live |= set(op.edges)
        else:
            ec.delete_batch(op.edges)
            live -= set(op.edges)
        ec.check_proper(live)
    used = {ec.color_of(v) for v in range(N)}
    return ec, used


def run_implicit():
    cm = CostModel()
    ic = ImplicitColoring(N, eps=0.4, cm=cm, constants=CONSTANTS, seed=17)
    _, edges = gen.erdos_renyi(N, 70, seed=17)
    ic.insert_batch(edges)
    before = cm.snapshot()
    colors = ic.query(list(range(N)))
    query_work = cm.snapshot().work - before.work
    ic.check_proper(edges)
    return ic, colors, query_work / N


def run_experiment() -> Experiment:
    ec, used = run_explicit()
    ic, colors, per_query = run_implicit()
    rows = [
        ("explicit: palette size C (O(rho log n))", ec.C),
        ("explicit: colors actually used", len(used)),
        ("explicit: fallback recolorings", ec.fallbacks),
        ("implicit: distinct colors in full query", len(set(colors.values()))),
        ("implicit: largest color id", max(colors.values())),
        ("implicit: O(rho^2)-flavour bound", f"{ic.palette_bound():.0f}"),
        ("implicit: work units per queried vertex", f"{per_query:.0f}"),
    ]
    table = render_table(["metric", "value"], rows)
    return Experiment(
        exp_id="E11",
        title="explicit and implicit coloring (Corollaries 1.4/1.5)",
        claim=(
            "explicit: proper O(rho_max log n)-coloring, recoloring only "
            "vertices whose out-set changed; implicit: proper poly(rho)-"
            "coloring computed per query from O(log* n) successor chains"
        ),
        table=table,
        conclusion=(
            "both colorings verify proper after every batch/query; the "
            "explicit scheme never fell back beyond its random palette "
            f"({ec.fallbacks} fallbacks), and the implicit palette after two "
            "Linial rounds lands in the poly(rho) regime."
        ),
    )


def test_e11_explicit_proper_and_no_fallbacks():
    ec, used = run_explicit()
    assert ec.fallbacks == 0
    assert len(used) <= ec.C


def test_e11_implicit_proper_and_bounded():
    ic, colors, _ = run_implicit()
    assert max(colors.values()) < 100_000


def test_e11_wallclock(benchmark):
    benchmark.pedantic(run_implicit, rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
