"""E12 — ablation of the height hint H (Theorem 5.1's two cases).

A planted block of known coreness (~11) is fed to fixed-H estimators with
hints below, at, and far above the truth.  Expected shape:

* H far below core: the estimate saturates (f >= H) — only the lower
  bound ``core >= (1/2 - eps) H`` is learned (case 2 of the theorem);
* H near core: a two-sided estimate in the band;
* H far above core: still in band, but the additive eps*H slack grows —
  why the ladder of Theorem 1.1 wants the *first* unsaturated rung.
"""

from __future__ import annotations

from repro.baselines import core_numbers
from repro.core import FixedHCorenessEstimator
from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import render_table

from common import CONSTANTS, EPS, Experiment

HINTS = [2, 4, 8, 16, 64, 256]


def build():
    n, edges = gen.planted_dense(40, block=12, p_in=1.0, out_edges=30, seed=18)
    return n, edges


def measure(H: int):
    n, edges = build()
    est = FixedHCorenessEstimator(H=H, eps=EPS, n=n, constants=CONSTANTS, seed=18)
    for i in range(0, len(edges), 40):
        est.insert_batch(edges[i : i + 40])
    block = [est.estimate(v) for v in range(12)]
    saturated = sum(est.saturated(v) for v in range(12))
    return est.regime, min(block), max(block), saturated


def run_experiment() -> Experiment:
    n, edges = build()
    true_core = max(core_numbers(DynamicGraph(n, edges)).values())
    rows = []
    for H in HINTS:
        regime, lo, hi, saturated = measure(H)
        rows.append((H, regime, f"{lo:.1f}", f"{hi:.1f}", f"{saturated}/12"))
    table = render_table(
        ["hint H", "regime", "block est min", "block est max", "saturated"], rows
    )
    return Experiment(
        exp_id="E12",
        title=f"height-hint ablation (Theorem 5.1; true block core = {true_core})",
        claim=(
            "if f(v) < H the estimate is two-sided within (1/2-eps, 2+eps) "
            "x core +/- eps H; if f(v) >= H only core >= (1/2-eps) H is "
            "certified"
        ),
        table=table,
        conclusion=(
            "hints below the true coreness saturate the whole block (the "
            "structure correctly refuses to give an upper bound), the "
            "near-truth hint gives a tight two-sided estimate, and oversized "
            "hints stay correct but pay the eps*H additive slack and the "
            "sampling regime's variance — matching the theorem's case split "
            "and motivating the geometric ladder."
        ),
    )


def test_e12_low_hint_saturates():
    _, _, _, saturated = measure(2)
    assert saturated >= 10  # essentially the whole block


def test_e12_good_hint_two_sided():
    n, edges = build()
    true_core = max(core_numbers(DynamicGraph(n, edges)).values())
    _, lo, hi, saturated = measure(16)
    assert saturated <= 2
    assert 0.15 * true_core <= lo
    assert hi <= 4.0 * true_core + 0.5 * 16


def test_e12_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(8), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
