"""E13 — deletions are cheaper than insertions (Theorem 4.1: H^5 vs H^6).

The same edge set is inserted and then deleted through BALANCED(H) for a
sweep of H.  The theorem gives O(H^6 log n) per inserted edge vs
O(H^5 log n) per deleted edge; the measured ratio should favour deletions
and widen with H.
"""

from __future__ import annotations

import random

from repro.core import BalancedOrientation
from repro.graphs import generators as gen
from repro.instrument import CostModel, render_table

from common import Experiment

HEIGHTS = [2, 4, 6, 8]


def measure(H: int):
    n, edges = gen.erdos_renyi(48, 50 * H, seed=19)
    cm = CostModel()
    st = BalancedOrientation(H=H, cm=cm)
    batches = 0
    for i in range(0, len(edges), 50):
        st.insert_batch(edges[i : i + 50])
        batches += 1
    insert_work = cm.work
    ins_rounds = cm.counters.get("insert_bundle_rounds", 0) / batches
    doomed = list(edges)
    random.Random(19).shuffle(doomed)
    before = cm.snapshot()
    batches_before = cm.counters.get("delete_bundles", 0)
    del_batches = 0
    for i in range(0, len(doomed), 50):
        st.delete_batch(doomed[i : i + 50])
        del_batches += 1
    delete_work = cm.snapshot().work - before.work
    del_bundles = (cm.counters.get("delete_bundles", 0) - batches_before) / del_batches
    m = len(edges)
    return insert_work / m, delete_work / m, ins_rounds, del_bundles


def run_experiment() -> Experiment:
    rows = []
    for H in HEIGHTS:
        ins, dele, ins_rounds, del_bundles = measure(H)
        rows.append(
            (
                H,
                f"{ins:.0f}",
                f"{dele:.0f}",
                f"{ins / dele:.2f}",
                f"{ins_rounds:.1f} / {2 * (H + 1) ** 2 + 3}",
                f"{del_bundles:.1f} / {H}",
            )
        )
    table = render_table(
        [
            "H",
            "insert work/edge",
            "delete work/edge",
            "ins/del",
            "ins rounds (vs O(H^2))",
            "del bundles (vs H)",
        ],
        rows,
    )
    return Experiment(
        exp_id="E13",
        title="insertion vs deletion cost (Theorem 4.1: H^6 vs H^5)",
        claim=(
            "batch deletions cost O(H^5 log n) per edge vs O(H^6 log n) for "
            "insertions — the extra H factor is the O(H^2) bundle-extraction "
            "loop (vs <= H deletion bundles)"
        ),
        table=table,
        conclusion=(
            "both paths run far below their bounds.  The *worst-case "
            "drivers* match the theory: insertion needs up to O(H^2) "
            "extraction rounds per batch while deletion needs at most H "
            "bundles (last two columns).  On random inputs, however, the "
            "insertion path's slack is much larger (extraction settles in "
            "o(H) rounds), so the *measured* per-edge cost of deletions is "
            "about 2x that of insertions — the H^6-vs-H^5 gap is a "
            "worst-case statement that random workloads do not saturate; "
            "an honest reproduction reports this rather than the bound."
        ),
    )


def test_e13_measured_costs_same_order():
    for H in (4, 8):
        ins, dele, _, _ = measure(H)
        assert 0.2 <= ins / dele <= 2.0  # same order; neither path blows up


def test_e13_deletion_bundles_within_h():
    for H in (2, 4, 8):
        _, _, _, del_bundles = measure(H)
        assert del_bundles <= H


def test_e13_insert_rounds_within_quadratic():
    for H in (2, 4, 8):
        _, _, ins_rounds, _ = measure(H)
        assert ins_rounds <= 2 * (H + 1) ** 2 + 3


def test_e13_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(4), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
