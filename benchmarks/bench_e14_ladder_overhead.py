"""E14 — the unconditional ladder costs O(log n / eps) fixed-H structures.

Theorem 1.1/1.2 run one Theorem 5.1/5.2 structure per geometric rung.
Sweeping eps changes the rung count; total work should scale roughly with
the number of rungs (each rung sees every update), while the answer's
granularity tightens.
"""

from __future__ import annotations

from repro.core import CorenessDecomposition
from repro.graphs import generators as gen
from repro.instrument import CostModel, render_table

from common import CONSTANTS, Experiment

EPSES = [0.6, 0.45, 0.3, 0.2]
N, M = 36, 150


def measure(eps: float):
    _, edges = gen.erdos_renyi(N, M, seed=20)
    cm = CostModel()
    cd = CorenessDecomposition(N, eps=eps, cm=cm, constants=CONSTANTS, seed=20)
    for i in range(0, len(edges), 50):
        cd.insert_batch(edges[i : i + 50])
    B = CONSTANTS.B(N, eps)
    return len(cd.rungs), cm.work / M, cm.depth, B


def run_experiment() -> Experiment:
    rows = []
    stats = {}
    for eps in EPSES:
        rungs, wpe, depth, B = measure(eps)
        stats[eps] = (rungs, wpe, B)
        rows.append((eps, rungs, B, f"{wpe:.0f}", f"{wpe / (rungs * B):.0f}", depth))
    table = render_table(
        ["eps", "ladder rungs", "B(eps)", "work/edge", "work/(edge*rung*B)", "total depth"],
        rows,
    )
    r0, w0, b0 = stats[EPSES[0]]
    r1, w1, b1 = stats[EPSES[-1]]
    return Experiment(
        exp_id="E14",
        title="ladder overhead vs eps (Theorems 1.1/1.2)",
        claim=(
            "the unconditional algorithms run O(log n / eps) parallel "
            "fixed-H structures, each sized by the threshold "
            "B = c log n / eps^2 — total work scales with rungs x per-rung "
            "size, depth only with the deepest rung"
        ),
        table=table,
        conclusion=(
            f"shrinking eps {EPSES[0]} -> {EPSES[-1]} grows the ladder "
            f"{r0} -> {r1} rungs and the per-rung threshold B {b0} -> {b1}; "
            "work/edge grows as their product (the normalized column stays "
            "within a small band), i.e. the eps-dependence of the theorems' "
            "poly(1/eps) factors is visible and attributable, while rung "
            "counts match the O(log n / eps) formula."
        ),
    )


def test_e14_more_rungs_for_smaller_eps():
    r_coarse = measure(0.6)[0]
    r_fine = measure(0.2)[0]
    assert r_fine > r_coarse


def test_e14_work_tracks_rungs_times_B():
    r0, w0, _, b0 = measure(0.6)
    r1, w1, _, b1 = measure(0.2)
    # work growth explained by (rungs x B) growth within ~3x
    assert (w1 / w0) / ((r1 * b1) / (r0 * b0)) < 3.0


def test_e14_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(0.45), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
