"""E15 — ablation of deviation D1 (receiver-side transparency).

DESIGN.md documents one deliberate deviation from the paper's literal
token-pushing rules: a token arriving at a receiver with >= H residual
out-arcs is absorbed transparently regardless of the carrying arc's rank.
This ablation runs the *same* mixed workloads with the literal rule
(``strict_paper_transparency=True``) and with the fix, counting batches
after which the H-balancedness invariant is broken.  The literal rule
fails on real schedules; the fix never does.
"""

from __future__ import annotations

from repro.config import Constants
from repro.core import BalancedOrientation
from repro.errors import InvariantViolation
from repro.graphs import streams
from repro.instrument import render_table

from common import Experiment

def _dense_churn(seed):
    return lambda: streams.churn(30, 60, 14, seed=seed, insert_bias=0.6)


WORKLOADS = [
    ("churn n=40 b=12 seed=9 H=5", 5, lambda: streams.churn(40, 80, 12, seed=9)),
    ("dense churn seed=0 H=4", 4, _dense_churn(0)),
    ("dense churn seed=7 H=3", 3, _dense_churn(7)),
    ("dense churn seed=16 H=6", 6, _dense_churn(16)),
    ("dense churn seed=21 H=4", 4, _dense_churn(21)),
    ("sliding window H=4", 4, None),  # built below
]


def _sliding():
    from repro.graphs import generators as gen

    _, edges = gen.erdos_renyi(40, 200, seed=21)
    return streams.sliding_window(edges, window=3, batch_size=15)


def violations(ops, H: int, strict: bool) -> int:
    constants = Constants(strict_paper_transparency=strict)
    st = BalancedOrientation(H=H, constants=constants)
    bad = 0
    for op in ops:
        if op.kind == "insert":
            st.insert_batch(op.edges)
        else:
            st.delete_batch(op.edges)
        try:
            st.check_invariants()
        except InvariantViolation:
            bad += 1
    return bad


def run_experiment() -> Experiment:
    rows = []
    total_strict = 0
    total_fixed = 0
    for name, H, make in WORKLOADS:
        ops = list(make() if make else _sliding())
        strict = violations(ops, H, strict=True)
        fixed = violations(ops, H, strict=False)
        total_strict += strict
        total_fixed += fixed
        rows.append((name, len(ops), strict, fixed))
    table = render_table(
        ["workload", "batches", "violations (paper literal)", "violations (D1 fix)"],
        rows,
    )
    return Experiment(
        exp_id="E15",
        title="ablation of deviation D1 (push-game transparency rule)",
        claim=(
            "(our deviation) the paper's literal rule — transparency only "
            "for tokens carried by tr = H+1 arcs — lets a real token occupy "
            "a receiver whose settlement is invisible under min(H, .), "
            "deadlocking other tokens into an unbalanced settlement"
        ),
        table=table,
        conclusion=(
            f"the literal rule breaks H-balancedness on {total_strict} "
            f"batches across these workloads; the receiver-side rule breaks "
            f"{total_fixed}.  The deviation is load-bearing, not stylistic — "
            "this is the empirical footprint of the gap described in "
            "DESIGN.md."
        ),
    )


def test_e15_strict_rule_fails_somewhere():
    ops = list(streams.churn(40, 80, 12, seed=9))
    assert violations(ops, 5, strict=True) > 0


def test_e15_fixed_rule_never_fails():
    for name, H, make in WORKLOADS:
        ops = list(make() if make else _sliding())
        assert violations(ops, H, strict=False) == 0, name


def test_e15_wallclock(benchmark):
    ops = list(streams.churn(30, 40, 9, seed=3))
    benchmark.pedantic(lambda: violations(ops, 4, strict=False), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
