"""E16 — ablation of the duplication factor K (Lemma 5.3 / Corollary 5.4).

Duplication exists to shrink the additive O(log n / eps) error *relative*
to the K-times-larger measure.  Sweeping K at a fixed height hint shows
the tradeoff the paper's B' = H ceil(B/H) choice navigates: estimate
error falls with K while work per edge rises poly(K).
"""

from __future__ import annotations

import statistics

from repro.baselines import core_numbers
from repro.config import Constants
from repro.core import DuplicatedBalanced
from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import CostModel, render_table

from common import Experiment

KS = [1, 2, 3, 5]
H_HINT = 10  # inner height per copy


def build():
    n, edges = gen.planted_dense(30, block=9, p_in=1.0, out_edges=25, seed=25)
    return n, edges


def measure(K: int):
    n, edges = build()
    g = DynamicGraph(n, edges)
    exact = core_numbers(g)
    cm = CostModel()
    dup = DuplicatedBalanced(
        inner_H=H_HINT * K, K=K, cm=cm, constants=Constants(duplication_cap=16)
    )
    for i in range(0, len(edges), 30):
        dup.insert_batch(edges[i : i + 30])
    errors = []
    for v in g.touched_vertices():
        c = exact.get(v, 0)
        if c >= 2:
            # fractional out-degree approximates core within [1/2, 2]-ish;
            # measure deviation of the ratio from 1 (normalized to core)
            ratio = dup.fractional_outdegree(v) / c
            errors.append(abs(ratio - 0.75))  # 0.75 = band midpoint-ish
    spread = statistics.pstdev(
        [dup.fractional_outdegree(v) / max(1, exact.get(v, 0))
         for v in range(9)]  # the uniform block: same core => spread = noise
    )
    return spread, cm.work / len(edges), statistics.mean(errors)


def run_experiment() -> Experiment:
    rows = []
    stats = {}
    for K in KS:
        spread, wpe, err = measure(K)
        stats[K] = (spread, wpe)
        rows.append((K, f"{spread:.3f}", f"{err:.3f}", f"{wpe:.0f}"))
    table = render_table(
        ["K", "block estimate spread", "mean |ratio - 0.75|", "work/edge"], rows
    )
    return Experiment(
        exp_id="E16",
        title="duplication-factor ablation (Lemma 5.3 / Corollary 5.4)",
        claim=(
            "duplicating edges K times scales coreness exactly by K, so the "
            "O(log n / eps) additive error shrinks by K relative to the "
            "measure — at a poly(K) work cost (Corollary 5.4)"
        ),
        table=table,
        conclusion=(
            "the spread of estimates across the uniform-coreness block "
            "(pure estimator noise) shrinks as K grows while work per edge "
            "rises — the exact tradeoff Theorem 5.1's choice of K ~ B/H "
            "balances."
        ),
    )


def test_e16_noise_shrinks_with_k():
    spread1 = measure(1)[0]
    spread5 = measure(5)[0]
    assert spread5 <= spread1 + 0.05


def test_e16_work_grows_with_k():
    w1 = measure(1)[1]
    w5 = measure(5)[1]
    assert w5 > 1.5 * w1


def test_e16_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(2), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
