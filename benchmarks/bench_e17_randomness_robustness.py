"""E17 — robustness of the randomized estimates across seeds.

Theorems 1.1/1.2 hold w.h.p. over the structures' randomness (sampling
coins, bucket hashes).  We rerun the same workload under many seeds and
report the distribution of the resulting estimates: the w.h.p. claim at
laptop constants should translate into tight cross-seed agreement and
zero band violations.
"""

from __future__ import annotations

import statistics

from repro.baselines import core_numbers, exact_density
from repro.core import CorenessDecomposition, DensityEstimator
from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import render_table

from common import CONSTANTS, EPS, Experiment

SEEDS = list(range(8))


def build():
    n, edges = gen.planted_dense(40, block=11, p_in=0.95, out_edges=35, seed=26)
    return n, edges


def core_estimates(seed: int) -> float:
    n, edges = build()
    cd = CorenessDecomposition(n, eps=EPS, constants=CONSTANTS, seed=seed)
    cd.insert_batch(edges)
    return max(cd.estimate(v) for v in range(11))  # block estimate


def density_estimates(seed: int) -> float:
    n, edges = build()
    de = DensityEstimator(n, eps=EPS, constants=CONSTANTS, seed=seed)
    de.insert_batch(edges)
    return de.density_estimate()


def run_experiment() -> Experiment:
    n, edges = build()
    g = DynamicGraph(n, edges)
    true_core = max(core_numbers(g).values())
    true_rho = exact_density(g)
    cores = [core_estimates(s) for s in SEEDS]
    rhos = [density_estimates(s) for s in SEEDS]
    rows = [
        ("exact value", true_core, f"{true_rho:.2f}"),
        ("estimate min", min(cores), min(rhos)),
        ("estimate median", statistics.median(cores), statistics.median(rhos)),
        ("estimate max", max(cores), max(rhos)),
        (
            "cross-seed spread (max/min)",
            f"{max(cores) / min(cores):.2f}",
            f"{max(rhos) / min(rhos):.2f}",
        ),
        (
            "band violations",
            sum(1 for c in cores if not 0.15 * true_core <= c <= 5 * true_core),
            sum(1 for r in rhos if not 0.4 * true_rho <= r <= 2.5 * true_rho),
        ),
    ]
    table = render_table(["metric", "max core_alg (block)", "rho_alg"], rows)
    return Experiment(
        exp_id="E17",
        title="cross-seed robustness of the randomized estimates",
        claim="the approximation guarantees hold with high probability",
        table=table,
        conclusion=(
            f"across {len(SEEDS)} independent seeds the estimates agree "
            f"within {max(max(cores) / min(cores), max(rhos) / min(rhos)):.2f}x "
            "and none leaves its band — the w.h.p. statements are not "
            "fragile to the structures' internal randomness even at "
            "scaled-down constants."
        ),
    )


def test_e17_no_band_violations():
    n, edges = build()
    g = DynamicGraph(n, edges)
    true_core = max(core_numbers(g).values())
    for s in SEEDS[:5]:
        c = core_estimates(s)
        assert 0.15 * true_core <= c <= 5 * true_core


def test_e17_cross_seed_spread_small():
    vals = [density_estimates(s) for s in SEEDS[:5]]
    assert max(vals) / min(vals) <= 2.5


def test_e17_wallclock(benchmark):
    benchmark.pedantic(lambda: density_estimates(0), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
