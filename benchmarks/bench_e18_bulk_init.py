"""E18 — bulk initialisation vs incremental insertion (library extension).

The paper initialises from an empty graph; loading a pre-existing graph
through the incremental path pays the full token-game machinery per
batch.  The static builder (peeling seed + repair flips,
``repro.core.bulk``) produces the same H-balanced state directly.  We
compare model work and wall-clock across graph sizes.
"""

from __future__ import annotations

from repro.instrument import wallclock

from repro.core import BalancedOrientation
from repro.core.bulk import from_graph
from repro.graphs import generators as gen
from repro.instrument import CostModel, render_table

from common import Experiment

SIZES = [(40, 160), (80, 400), (160, 900)]
H = 5


def measure(n: int, m: int):
    _, edges = gen.erdos_renyi(n, m, seed=27)
    t0 = wallclock.monotonic()
    cm_bulk = CostModel()
    st = from_graph(edges, H=H, cm=cm_bulk)
    bulk_wall = wallclock.monotonic() - t0
    t0 = wallclock.monotonic()
    cm_inc = CostModel()
    inc = BalancedOrientation(H=H, cm=cm_inc)
    inc.insert_batch(edges)
    inc_wall = wallclock.monotonic() - t0
    return cm_bulk.work, bulk_wall, cm_inc.work, inc_wall


def run_experiment() -> Experiment:
    rows = []
    for n, m in SIZES:
        bw, bwall, iw, iwall = measure(n, m)
        rows.append(
            (
                f"{n}/{m}",
                f"{bw:.0f}",
                f"{iw:.0f}",
                f"{iw / bw:.1f}x",
                f"{bwall * 1e3:.0f}ms",
                f"{iwall * 1e3:.0f}ms",
                f"{iwall / bwall:.1f}x",
            )
        )
    table = render_table(
        ["n/m", "bulk work", "incremental work", "work ratio",
         "bulk wall", "incr wall", "wall ratio"],
        rows,
    )
    return Experiment(
        exp_id="E18",
        title="bulk initialisation vs incremental insertion (extension)",
        claim=(
            "(library extension, not a paper claim) a static peeling-seeded "
            "build reaches the same H-balanced state without the token games"
        ),
        table=table,
        conclusion=(
            "bulk construction wins by a growing factor in both model work "
            "and wall-clock; the resulting structure passes the same "
            "invariant audit and continues to accept dynamic batches — the "
            "right way to load a pre-existing graph before going dynamic."
        ),
    )


def test_e18_bulk_cheaper():
    bw, bwall, iw, iwall = measure(80, 400)
    assert bw < iw
    assert bwall < iwall


def test_e18_bulk_state_valid_and_dynamic():
    _, edges = gen.erdos_renyi(60, 240, seed=28)
    st = from_graph(edges, H=H)
    st.check_invariants()
    st.delete_batch(edges[:40])
    st.check_invariants()


def test_e18_wallclock(benchmark):
    _, edges = gen.erdos_renyi(80, 400, seed=27)
    benchmark.pedantic(lambda: from_graph(edges, H=H), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
