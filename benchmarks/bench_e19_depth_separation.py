"""E19 — depth separation vs static parallel peeling.

The deep reason batch-dynamic structures exist in the *parallel* world:
static parallel k-core peeling has depth proportional to its peeling
round count, which is Theta(n) on long-diameter graphs (a path peels two
vertices per round).  Our structure's per-batch depth is polylog
regardless of the graph's shape.  We sweep path lengths and report both
depths; the separation grows linearly while ours stays flat.
"""

from __future__ import annotations

from repro.baselines import parallel_core_numbers
from repro.core import BalancedOrientation
from repro.graphs import DynamicGraph, generators as gen, streams
from repro.instrument import CostModel, render_table

from common import Experiment, drive, drive_traced, write_bench

LENGTHS = [64, 256, 1024]


def measure(n: int):
    _, edges = gen.path(n)
    # static: one parallel peeling of the final graph
    cm_static = CostModel()
    _cores, rounds = parallel_core_numbers(DynamicGraph(n, edges), cm_static)
    # ours: insert the same edges in batches, take the max batch depth
    cm = CostModel()
    st = BalancedOrientation(H=3, cm=cm)
    series = drive(st, streams.insert_only(edges, 64), cm)
    return rounds, cm_static.depth, series.max_depth()


def run_experiment() -> Experiment:
    rows = []
    stats = {}
    for n in LENGTHS:
        rounds, static_depth, ours_depth = measure(n)
        stats[n] = (static_depth, ours_depth)
        rows.append((n, rounds, static_depth, ours_depth))
    table = render_table(
        ["path length n", "peel rounds", "static peel depth", "ours max batch depth"],
        rows,
    )
    grow_static = stats[LENGTHS[-1]][0] / stats[LENGTHS[0]][0]
    grow_ours = stats[LENGTHS[-1]][1] / stats[LENGTHS[0]][1]
    n = LENGTHS[1]
    _, edges = gen.path(n)
    cm = CostModel()
    series, tree = drive_traced(
        BalancedOrientation(H=3, cm=cm), streams.insert_only(edges, 64), cm
    )
    write_bench("e19_depth_separation", series, tree, extra={"n": n, "H": 3})
    return Experiment(
        exp_id="E19",
        title="depth separation vs static parallel peeling",
        claim=(
            "per-batch depth is poly(log n); static parallel peeling's depth "
            "is its round count, Theta(n) on long-diameter graphs — the "
            "reason a *parallel* dynamic structure is needed at all"
        ),
        table=table,
        conclusion=(
            f"over a 16x longer path, peeling depth grows {grow_static:.0f}x "
            f"(linearly, two peeled vertices per round) while our max batch "
            f"depth grows {grow_ours:.1f}x (log factors only) — the depth "
            "separation that motivates Theorem 4.1."
        ),
    )


def test_e19_peeling_depth_linear():
    r_small, d_small, _ = measure(64)
    r_big, d_big, _ = measure(1024)
    assert r_big > 8 * r_small


def test_e19_our_depth_flat():
    _, _, ours_small = measure(64)
    _, _, ours_big = measure(1024)
    assert ours_big < 4 * ours_small


def test_e19_separation_at_scale():
    _, static_depth, ours_depth = measure(1024)
    assert static_depth > 2 * ours_depth


def test_e19_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(256), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
