"""E1 — Theorem 1.1 approximation band for coreness.

Reproduces: ``core_ALG(v) in [(1/2 - eps) core(v), (2 + eps) core(v)]``.
We report the distribution of ``core_ALG / core`` over three graph
families and assert every vertex with core >= 2 lands inside a slack band
(the additive O(eps H) terms of Theorem 5.1 dominate core-1 vertices at
laptop constants, exactly as the theorem's wording allows).
"""

from __future__ import annotations

import statistics

from repro.baselines import core_numbers
from repro.core import CorenessDecomposition
from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import CostModel, render_table

from common import CONSTANTS, EPS, Experiment

FAMILIES = [
    ("erdos-renyi", lambda: gen.erdos_renyi(48, 190, seed=1)),
    ("barabasi-albert", lambda: gen.barabasi_albert(48, 3, seed=2)),
    ("planted-dense", lambda: gen.planted_dense(48, block=12, p_in=0.95, out_edges=50, seed=3)),
]

# generous slack around the theoretical [1/2 - eps, 2 + eps] band: the
# constants B, c are scaled down ~100x from the w.h.p. regime
LOWER, UPPER = 0.15, 5.0


def ratios_for(make_graph) -> list[float]:
    n, edges = make_graph()
    g = DynamicGraph(n, edges)
    cd = CorenessDecomposition(n, eps=EPS, cm=CostModel(), constants=CONSTANTS, seed=7)
    for i in range(0, len(edges), 48):
        cd.insert_batch(edges[i : i + 48])
    exact = core_numbers(g)
    return [
        cd.estimate(v) / exact[v]
        for v in g.touched_vertices()
        if exact.get(v, 0) >= 2
    ]


def run_experiment() -> Experiment:
    rows = []
    all_ok = True
    for name, make in FAMILIES:
        rs = ratios_for(make)
        ok = all(LOWER <= r <= UPPER for r in rs)
        all_ok &= ok
        rows.append(
            (
                name,
                len(rs),
                f"{min(rs):.2f}",
                f"{statistics.median(rs):.2f}",
                f"{max(rs):.2f}",
                "yes" if ok else "NO",
            )
        )
    table = render_table(
        ["family", "vertices (core>=2)", "min ratio", "median", "max", "in band"],
        rows,
    )
    return Experiment(
        exp_id="E1",
        title="coreness approximation quality (Theorem 1.1)",
        claim="core_ALG(v) in [(1/2 - eps) core(v), (2 + eps) core(v)] w.h.p.",
        table=table,
        conclusion=(
            "Every measured ratio falls inside the slack band "
            f"[{LOWER}, {UPPER}] (theory band [~0.15, ~2.35] at eps={EPS}); "
            "medians sit near 1, i.e. the ladder usually answers within one "
            "geometric rung of the truth."
            if all_ok
            else "BAND VIOLATED — regression!"
        ),
    )


def test_e1_band_holds():
    for name, make in FAMILIES:
        rs = ratios_for(make)
        assert rs, f"{name}: no core>=2 vertices"
        assert all(LOWER <= r <= UPPER for r in rs), f"{name}: band violated"


def test_e1_median_near_one():
    rs = ratios_for(FAMILIES[2][1])  # planted dense: strong signal
    assert 0.4 <= statistics.median(rs) <= 2.5


def test_e1_wallclock(benchmark):
    benchmark.pedantic(lambda: ratios_for(FAMILIES[0][1]), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
