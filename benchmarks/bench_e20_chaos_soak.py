"""E20 — chaos soak: recovery under randomized fault injection.

The worst-case guarantees of the paper only matter if the structures
survive the failures a long-running deployment actually sees.  This
experiment replays seeded update streams against all three dynamic
structures while a deterministic fault injector raises, delays, and
corrupts inside the token games, bundle extraction, and batch
substrates.  Every injected fault must be absorbed by the tiered
recovery manager (rollback -> checkpoint replay -> rebuild) and every
post-recovery audit — including a full replay audit of the balanced
history — must come back green.
"""

from __future__ import annotations

from repro.instrument import render_table
from repro.resilience.chaos import chaos_soak

from common import CONSTANTS, Experiment

# (structure, trials, faults_per_trial): balanced carries the volume,
# the ladders confirm the same machinery holds one level up.
PLAN = [
    ("balanced", 24, 6),
    ("coreness", 8, 5),
    ("density", 8, 5),
]

_CACHE: dict[str, object] = {}


def soak(structure: str):
    if structure not in _CACHE:
        trials, faults = next(
            (t, f) for s, t, f in PLAN if s == structure
        )
        _CACHE[structure] = chaos_soak(
            structure,
            trials=trials,
            seed=20,
            faults_per_trial=faults,
            batches=12,
            batch_size=5,
            n=20,
            constants=CONSTANTS,
            deep_audit=(structure == "balanced"),
        )
    return _CACHE[structure]


def run_experiment() -> Experiment:
    reports = [soak(s) for s, _, _ in PLAN]
    rows = []
    for r in reports:
        c = r.stats.counts
        rows.append(
            (
                r.structure,
                r.trials,
                r.faults_planned,
                r.faults_fired,
                c.get("rollback", 0),
                c.get("checkpoint", 0),
                c.get("rebuild", 0),
                "GREEN" if r.ok else "RED",
            )
        )
    table = render_table(
        [
            "structure",
            "trials",
            "faults planned",
            "fired",
            "t1 rollback",
            "t2 checkpoint",
            "t3 rebuild",
            "verdict",
        ],
        rows,
    )
    planned = sum(r.faults_planned for r in reports)
    fired = sum(r.faults_fired for r in reports)
    recovered = sum(r.stats.recoveries for r in reports)
    return Experiment(
        exp_id="E20",
        title="chaos soak — recovery under randomized fault injection",
        claim=(
            "the batch-dynamic structures give strong exception safety: "
            "any fault injected mid-batch is absorbed by tiered recovery "
            "and the post-recovery state is indistinguishable from a "
            "fault-free run"
        ),
        table=table,
        conclusion=(
            f"{planned} faults planned across the three structures, "
            f"{fired} fired mid-batch and forced {recovered} recoveries; "
            "every trial ended with green audits (balanced trials include "
            "a full replay audit of the committed history), so no injected "
            "fault ever left observable damage — most were handled by "
            "tier-1 rollback, with checkpoint replay and rebuild covering "
            "the corruption and burst cases."
        ),
    )


def test_e20_fault_volume_and_all_green():
    reports = [soak(s) for s, _, _ in PLAN]
    assert sum(r.faults_planned for r in reports) >= 200
    assert sum(r.faults_fired for r in reports) >= 50
    for r in reports:
        assert r.ok, r.render()


def test_e20_every_tier_exercised():
    reports = [soak(s) for s, _, _ in PLAN]
    merged: dict[str, int] = {}
    for r in reports:
        for tier, count in r.stats.counts.items():
            merged[tier] = merged.get(tier, 0) + count
    assert merged.get("rollback", 0) >= 1
    assert merged.get("ok", 0) > merged.get("rollback", 0)
    assert sum(r.stats.recoveries for r in reports) >= 1


def test_e20_wallclock(benchmark):
    benchmark.pedantic(
        lambda: chaos_soak(
            "balanced",
            trials=2,
            seed=9,
            faults_per_trial=2,
            batches=8,
            batch_size=4,
            n=16,
            constants=CONSTANTS,
        ),
        rounds=2,
        iterations=1,
    )


if __name__ == "__main__":
    print(run_experiment().render())
