"""E21 — where the work goes: phase-tree breakdown of a mixed stream.

The telemetry subsystem (docs/OBSERVABILITY.md) attributes every unit of
cost-model work to a phase of the span taxonomy — ladder rung, token
game, settlement — with an exactness guarantee: the per-phase self-work
column sums to the cost model's total, and arming the tracer changes no
charge (work/depth are bit-identical with telemetry on or off).  This
experiment profiles a mixed insert/delete stream through the full
coreness ladder and reports the top phases by work share.

``REPRO_E21_TINY=1`` shrinks the stream for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.core import CorenessDecomposition
from repro.graphs import generators as gen, streams
from repro.instrument import CostModel, render_table
from repro.instrument.export import phase_shares

from common import CONSTANTS, EPS, drive_traced, Experiment, write_bench

if os.environ.get("REPRO_E21_TINY"):
    N, M, BATCH = 24, 80, 12
else:
    N, M, BATCH = 48, 240, 24
TOP_ROWS = 10


def measure(substrate: str = "treap"):
    """(series, phase-tree root, cost model, wall) for the canonical stream.

    The substrate is a pure wall-clock knob (docs/PERFORMANCE.md): the
    phase tree, every charge, and every answer are bit-identical between
    ``treap`` and ``flat`` — only the wall column moves.
    """
    from repro.instrument import wallclock

    _, edges = gen.erdos_renyi(N, M, seed=21)
    cm = CostModel()
    cd = CorenessDecomposition(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=21, substrate=substrate
    )
    ops = streams.insert_then_delete(edges, BATCH, seed=21)
    t0 = wallclock.monotonic()
    series, tree = drive_traced(cd, ops, cm)
    wall = wallclock.monotonic() - t0
    return series, tree, cm, wall


def measure_disarmed(substrate: str = "treap"):
    """The identical stream with telemetry off (the bit-identity control)."""
    _, edges = gen.erdos_renyi(N, M, seed=21)
    cm = CostModel()
    cd = CorenessDecomposition(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=21, substrate=substrate
    )
    for op in streams.insert_then_delete(edges, BATCH, seed=21):
        if op.kind == "insert":
            cd.insert_batch(op.edges)
        else:
            cd.delete_batch(op.edges)
    return cm


def _aggregate_by_name(tree) -> dict[str, tuple[int, int]]:
    """Span name -> (self work summed over all instances, count)."""
    out: dict[str, tuple[int, int]] = {}
    for _path, node in tree.walk():
        w, c = out.get(node.name, (0, 0))
        out[node.name] = (w + node.self_work(), c + node.count)
    return out


def run_experiment() -> Experiment:
    series, tree, cm, wall_treap = measure()
    _fs, flat_tree, flat_cm, wall_flat = measure("flat")
    assert (flat_cm.work, flat_cm.depth, flat_tree.work) == (
        cm.work,
        cm.depth,
        tree.work,
    ), "the flat substrate must keep the phase tree and accounting bit-identical"
    by_name = _aggregate_by_name(tree)
    total = tree.work
    rows = [
        (name, work, f"{100.0 * work / total:.1f}%", count)
        for name, (work, count) in sorted(by_name.items(), key=lambda kv: -kv[1][0])
        if work > 0
    ][:TOP_ROWS]
    table = render_table(["phase (self work)", "work", "share", "spans"], rows)
    write_bench(
        "e21_phase_breakdown", series, tree,
        extra={
            "n": N, "m": M, "batch_size": BATCH, "eps": EPS,
            "substrate_wall": {"treap": wall_treap, "flat": wall_flat},
            "flat_speedup": wall_treap / max(wall_flat, 1e-9),
        },
    )
    games = sum(w for n_, (w, _c) in by_name.items() if n_.startswith("game."))
    return Experiment(
        exp_id="E21",
        title="phase-tree work breakdown (telemetry subsystem)",
        claim=(
            "phase-scoped spans attribute every unit of work exactly: "
            "per-phase self work sums to the cost model's total, and arming "
            "the tracer perturbs no charge"
        ),
        table=table,
        conclusion=(
            f"the {len(by_name)} distinct phases account for every one of the "
            f"{total} work units (sum check exact); the token games take "
            f"{100.0 * games / total:.0f}% of the stream — the inner "
            "drop/push machinery of Sections 4.1-4.2 is where the paper's "
            "H-degree polynomials live, which is what E5/E6 probe."
        ),
    )


def test_e21_phase_work_sums_to_total():
    _series, tree, cm, _wall = measure()
    assert tree.work == cm.work
    assert tree.total_self_work() == tree.work
    shares = phase_shares(tree)
    assert abs(sum(s["self_share"] for s in shares.values()) - 1.0) < 1e-9


def test_e21_bit_identical_when_armed():
    _series, _tree, cm_armed, _wall = measure()
    cm_bare = measure_disarmed()
    assert cm_armed.work == cm_bare.work
    assert cm_armed.depth == cm_bare.depth
    assert dict(cm_armed.counters) == dict(cm_bare.counters)


def test_e21_flat_substrate_bit_identical():
    cm_treap = measure_disarmed()
    cm_flat = measure_disarmed("flat")
    assert cm_treap.work == cm_flat.work
    assert cm_treap.depth == cm_flat.depth
    assert dict(cm_treap.counters) == dict(cm_flat.counters)


def test_e21_games_dominate_dispatch():
    _series, tree, _cm, _wall = measure()
    by_name = _aggregate_by_name(tree)
    games = sum(w for n, (w, _c) in by_name.items() if n.startswith("game."))
    assert games > 0.2 * tree.work


def test_e21_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
