"""E22 — ladder sharding: executor backends, substrates, rung-skip filtering.

The ladder's rungs are independent (that independence *is* Theorems
1.1/1.2's parallelism), so rung sweeps route through a pluggable executor
(docs/PERFORMANCE.md).  This experiment drives a skewed stream — a planted
dense block that saturates the low rungs plus a sparse periphery that
leaves the tall rungs untouched — through six configurations:

* **serial** — the default backend on the treap substrate; the baseline.
* **process x2** — real process parallelism with merged worker deltas;
  the delta-merge contract makes its work/depth/counters *bit-identical*
  to serial (asserted below), so the win is wall-clock + the Brent bound.
* **flat** — the contiguous-slab substrate; a pure wall-clock knob whose
  accounting and answers are asserted bit-identical to serial.
* **flat + shm x2** — the flat substrate under the resident-state
  executor: rung state is seeded into persistent workers once over
  shared memory and every later batch ships only ops + scalar deltas.
* **skip** — rung-skip filtering; tall rungs whose hint sits above the
  degree bound defer updates, cutting *model work* without changing any
  answer (asserted below).
* **process x2 + skip** — both classic knobs.

Absolute wall-clock numbers are hardware-noisy; the reproduction targets
are the invariants (bit-identity, answer-preservation) and the work/skip
shapes — plus the flat-substrate wall-clock ratio that
docs/PERFORMANCE.md quotes.  ``REPRO_E22_TINY=1`` shrinks the trace for
CI smoke runs.
"""

from __future__ import annotations

import os

from repro.config import ExecConfig
from repro.core import CorenessDecomposition, DensityEstimator
from repro.graphs import generators as gen, streams
from repro.instrument import (
    BatchTimer,
    CostModel,
    Tracer,
    parallelism,
    project,
    render_table,
    trace,
    wallclock,
)

from common import CONSTANTS, EPS, Experiment, write_bench

TINY = bool(os.environ.get("REPRO_E22_TINY"))
if TINY:
    N, BLOCK, PERIPHERY, BATCH = 24, 6, 40, 12
else:
    N, BLOCK, PERIPHERY, BATCH = 56, 12, 150, 24
P = 16  # Brent projection processor count


def _trace():
    _, edges = gen.planted_dense(N, BLOCK, p_in=0.8, out_edges=PERIPHERY, seed=22)
    return streams.insert_then_delete(edges, BATCH, seed=22)


def measure(
    workers: int = 1,
    rung_skip: bool = False,
    substrate: str = "treap",
    shared_state: bool = False,
    traced: bool = False,
):
    """Drive both ladders through one configuration; return the observables.

    ``traced=True`` arms a phase tracer (telemetry never perturbs the
    cost model, so a traced run stays bit-comparable) and returns the
    aggregated span tree for the BENCH phase-share block.
    """
    ops = _trace()
    cm = CostModel()
    executor = ExecConfig(
        workers=workers, substrate=substrate, shared_state=shared_state
    ).make_executor()
    core = CorenessDecomposition(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=22,
        executor=executor, rung_skip=rung_skip, substrate=substrate,
    )
    dens = DensityEstimator(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=22,
        executor=executor, rung_skip=rung_skip, substrate=substrate,
    )
    timer = BatchTimer(cm)
    tracer = Tracer(cm) if traced else None
    ctx = trace.tracing(tracer) if traced else _null()
    t0 = wallclock.monotonic()
    try:
        with ctx:
            for i, op in enumerate(ops):
                with trace.span("batch", detail={"index": i, "kind": op.kind}):
                    with timer.batch(op.kind, op.size):
                        for st in (core, dens):
                            if op.kind == "insert":
                                st.insert_batch(op.edges)
                            else:
                                st.delete_batch(op.edges)
        wall = wallclock.monotonic() - t0
        answers = (core.estimates(), core.max_estimate(), dens.density_estimate())
    finally:
        executor.close()
    return {
        "work": cm.work,
        "depth": cm.depth,
        "counters": dict(cm.counters),
        "skipped": cm.counters.get("ladder_rungs_skipped", 0),
        "wall": wall,
        "answers": answers,
        "series": timer.series,
        "tree": tracer.root if tracer is not None else None,
    }


def _null():
    import contextlib

    return contextlib.nullcontext()


CONFIGS = [
    ("serial", dict(workers=1, rung_skip=False, traced=True)),
    ("process x2", dict(workers=2, rung_skip=False)),
    ("flat", dict(workers=1, substrate="flat")),
    ("flat + shm x2", dict(workers=2, substrate="flat", shared_state=True)),
    ("skip", dict(workers=1, rung_skip=True)),
    ("process x2 + skip", dict(workers=2, rung_skip=True)),
]


def run_experiment() -> Experiment:
    runs = {name: measure(**kw) for name, kw in CONFIGS}
    base = runs["serial"]
    rows = []
    for name, _ in CONFIGS:
        r = runs[name]
        t16 = project(r["work"], r["depth"], [P])[0].time_upper
        rows.append(
            (
                name,
                r["work"],
                f"{r['work'] / base['work']:.2f}x",
                r["depth"],
                r["skipped"],
                f"{parallelism(r['work'], r['depth']):.1f}",
                f"{t16:.0f}",
                f"{r['wall']:.2f}s",
            )
        )
    table = render_table(
        ["config", "model work", "vs serial", "depth", "rungs skipped",
         "W/D", f"Brent T_{P} (<=)", "wall"],
        rows,
    )
    # the contracts this subsystem is built on
    for other in ("process x2", "flat", "flat + shm x2"):
        assert (base["work"], base["depth"], base["counters"]) == (
            runs[other]["work"],
            runs[other]["depth"],
            runs[other]["counters"],
        ), f"{other!r} accounting must be bit-identical to serial"
        assert base["answers"] == runs[other]["answers"], (
            f"{other!r} must not change any query answer"
        )
    assert base["answers"] == runs["skip"]["answers"], (
        "rung-skip must not change any query answer"
    )
    write_bench(
        "e22_ladder_scaling",
        base["series"],
        tree=base["tree"],
        extra={
            "configs": {
                name: {
                    "work": runs[name]["work"],
                    "depth": runs[name]["depth"],
                    "rungs_skipped": runs[name]["skipped"],
                    "wall_seconds": runs[name]["wall"],
                }
                for name, _ in CONFIGS
            },
            "flat_speedup": base["wall"] / max(runs["flat"]["wall"], 1e-9),
        },
    )
    saved = 1.0 - runs["skip"]["work"] / base["work"]
    flat_x = base["wall"] / max(runs["flat"]["wall"], 1e-9)
    return Experiment(
        exp_id="E22",
        title="ladder sharding — executor backends, substrates, rung-skip",
        claim=(
            "the ladder's rungs are independent, so rung sweeps parallelise "
            "across processes with merged cost accounting (bit-identical "
            "work/depth/counters to serial), the storage substrate is a "
            "pure wall-clock knob, and provably-unaffected rungs can be "
            "skipped without changing any answer"
        ),
        table=table,
        conclusion=(
            f"the process backend reproduces serial accounting exactly "
            f"(asserted, bit-for-bit) while the Brent bound projects the "
            f"sweep's W/D parallelism; the flat substrate keeps the same "
            f"contract and runs {flat_x:.1f}x faster wall-clock on this "
            f"trace, and the resident-state backend (flat + shm x2) keeps "
            f"bit-identity while shipping only per-rung ops after the "
            f"one-time shared-memory seed.  Rung-skip filtering removes "
            f"{100 * saved:.0f}% of the model work on this skewed trace "
            f"({runs['skip']['skipped']} rung-batches deferred) with "
            f"byte-identical query answers (asserted) — the filtering is "
            f"pure savings, not approximation.  The classic process pool "
            f"still loses wall-clock to whole-structure pickling (honest "
            f"mismatch, quantified in E24); the flat and resident-state "
            f"rows are the fix."
        ),
    )


def test_e22_backends_agree():
    serial = measure(workers=1)
    proc = measure(workers=2)
    assert (serial["work"], serial["depth"], serial["counters"]) == (
        proc["work"],
        proc["depth"],
        proc["counters"],
    )
    assert serial["answers"] == proc["answers"]


def test_e22_flat_substrate_bit_identical():
    serial = measure(workers=1)
    flat = measure(workers=1, substrate="flat")
    assert (serial["work"], serial["depth"], serial["counters"]) == (
        flat["work"],
        flat["depth"],
        flat["counters"],
    )
    assert serial["answers"] == flat["answers"]


def test_e22_shared_state_bit_identical():
    serial = measure(workers=1, substrate="flat")
    shm = measure(workers=2, substrate="flat", shared_state=True)
    assert (serial["work"], serial["depth"], serial["counters"]) == (
        shm["work"],
        shm["depth"],
        shm["counters"],
    )
    assert serial["answers"] == shm["answers"]


def test_e22_skip_reduces_work_and_preserves_answers():
    plain = measure(workers=1)
    skip = measure(workers=1, rung_skip=True)
    assert skip["work"] < plain["work"]
    assert skip["skipped"] > 0
    assert skip["answers"] == plain["answers"]


def test_e22_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(workers=1), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
