"""E22 — ladder sharding: executor backends and rung-skip filtering.

The ladder's rungs are independent (that independence *is* Theorems
1.1/1.2's parallelism), so rung sweeps route through a pluggable executor
(docs/PERFORMANCE.md).  This experiment drives a skewed stream — a planted
dense block that saturates the low rungs plus a sparse periphery that
leaves the tall rungs untouched — through four configurations:

* **serial** — the default backend; the cost-model baseline.
* **process x2** — real process parallelism with merged worker deltas;
  the delta-merge contract makes its work/depth/counters *bit-identical*
  to serial (asserted below), so the win is wall-clock + the Brent bound.
* **skip** — rung-skip filtering; tall rungs whose hint sits above the
  degree bound defer updates, cutting *model work* without changing any
  answer (asserted below).
* **process x2 + skip** — both.

Absolute wall-clock numbers include pool startup and pickling and are
hardware-noisy; the reproduction targets are the invariants (bit-identity,
answer-preservation) and the work/skip shapes.  ``REPRO_E22_TINY=1``
shrinks the trace for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.core import CorenessDecomposition, DensityEstimator
from repro.graphs import generators as gen, streams
from repro.instrument import BatchTimer, CostModel, parallelism, project, render_table, wallclock
from repro.pram import ProcessExecutor, SerialExecutor

from common import CONSTANTS, EPS, Experiment, write_bench

TINY = bool(os.environ.get("REPRO_E22_TINY"))
if TINY:
    N, BLOCK, PERIPHERY, BATCH = 24, 6, 40, 12
else:
    N, BLOCK, PERIPHERY, BATCH = 56, 12, 150, 24
P = 16  # Brent projection processor count


def _trace():
    _, edges = gen.planted_dense(N, BLOCK, p_in=0.8, out_edges=PERIPHERY, seed=22)
    return streams.insert_then_delete(edges, BATCH, seed=22)


def measure(workers: int = 1, rung_skip: bool = False):
    """Drive both ladders through one configuration; return the observables."""
    ops = _trace()
    cm = CostModel()
    executor = (
        ProcessExecutor(max_workers=workers) if workers > 1 else SerialExecutor()
    )
    core = CorenessDecomposition(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=22,
        executor=executor, rung_skip=rung_skip,
    )
    dens = DensityEstimator(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=22,
        executor=executor, rung_skip=rung_skip,
    )
    timer = BatchTimer(cm)
    t0 = wallclock.monotonic()
    try:
        for op in ops:
            with timer.batch(op.kind, op.size):
                for st in (core, dens):
                    if op.kind == "insert":
                        st.insert_batch(op.edges)
                    else:
                        st.delete_batch(op.edges)
        wall = wallclock.monotonic() - t0
        answers = (core.estimates(), core.max_estimate(), dens.density_estimate())
    finally:
        executor.close()
    return {
        "work": cm.work,
        "depth": cm.depth,
        "counters": dict(cm.counters),
        "skipped": cm.counters.get("ladder_rungs_skipped", 0),
        "wall": wall,
        "answers": answers,
        "series": timer.series,
    }


CONFIGS = [
    ("serial", dict(workers=1, rung_skip=False)),
    ("process x2", dict(workers=2, rung_skip=False)),
    ("skip", dict(workers=1, rung_skip=True)),
    ("process x2 + skip", dict(workers=2, rung_skip=True)),
]


def run_experiment() -> Experiment:
    runs = {name: measure(**kw) for name, kw in CONFIGS}
    base = runs["serial"]
    rows = []
    for name, _ in CONFIGS:
        r = runs[name]
        t16 = project(r["work"], r["depth"], [P])[0].time_upper
        rows.append(
            (
                name,
                r["work"],
                f"{r['work'] / base['work']:.2f}x",
                r["depth"],
                r["skipped"],
                f"{parallelism(r['work'], r['depth']):.1f}",
                f"{t16:.0f}",
                f"{r['wall']:.2f}s",
            )
        )
    table = render_table(
        ["config", "model work", "vs serial", "depth", "rungs skipped",
         "W/D", f"Brent T_{P} (<=)", "wall"],
        rows,
    )
    # the two contracts this subsystem is built on
    assert (base["work"], base["depth"], base["counters"]) == (
        runs["process x2"]["work"],
        runs["process x2"]["depth"],
        runs["process x2"]["counters"],
    ), "delta merge must keep process accounting bit-identical to serial"
    assert base["answers"] == runs["skip"]["answers"], (
        "rung-skip must not change any query answer"
    )
    write_bench(
        "e22_ladder_scaling",
        base["series"],
        extra={
            "configs": {
                name: {
                    "work": runs[name]["work"],
                    "depth": runs[name]["depth"],
                    "rungs_skipped": runs[name]["skipped"],
                    "wall_seconds": runs[name]["wall"],
                }
                for name, _ in CONFIGS
            }
        },
    )
    saved = 1.0 - runs["skip"]["work"] / base["work"]
    return Experiment(
        exp_id="E22",
        title="ladder sharding — executor backends and rung-skip filtering",
        claim=(
            "the ladder's rungs are independent, so rung sweeps parallelise "
            "across processes with merged cost accounting (bit-identical "
            "work/depth/counters to serial) and provably-unaffected rungs "
            "can be skipped without changing any answer"
        ),
        table=table,
        conclusion=(
            f"the process backend reproduces serial accounting exactly "
            f"(asserted, bit-for-bit) while the Brent bound projects the "
            f"sweep's W/D parallelism; rung-skip filtering removes "
            f"{100 * saved:.0f}% of the model work on this skewed trace "
            f"({runs['skip']['skipped']} rung-batches deferred) with "
            f"byte-identical query answers (asserted) — the filtering is "
            f"pure savings, not approximation.  At laptop scale the pool's "
            f"pickling overhead outweighs real parallelism (honest mismatch: "
            f"the wall column shows process > serial), so the speedup story "
            f"rests on the Brent projection of the measured W/D, which is "
            f"what a shared-memory backend would realise."
        ),
    )


def test_e22_backends_agree():
    serial = measure(workers=1)
    proc = measure(workers=2)
    assert (serial["work"], serial["depth"], serial["counters"]) == (
        proc["work"],
        proc["depth"],
        proc["counters"],
    )
    assert serial["answers"] == proc["answers"]


def test_e22_skip_reduces_work_and_preserves_answers():
    plain = measure(workers=1)
    skip = measure(workers=1, rung_skip=True)
    assert skip["work"] < plain["work"]
    assert skip["skipped"] > 0
    assert skip["answers"] == plain["answers"]


def test_e22_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(workers=1), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
