"""E23 — adversarial scenarios at scale: soak verdicts and out-of-core memory.

Two halves, one claim: the worst-case machinery survives the workloads
the hardness literature says are hard, at scales that do not fit the
comfortable in-memory path.

* **Soak table** — every catalog adversary (docs/SCENARIOS.md) runs
  through fault-injected chaos trials *and* the five-config differential
  panel at CI scale; the verdict must be GREEN across the board, with
  the recovery-tier usage and per-scenario peak traced memory recorded.
* **Out-of-core table** — the ``sliding-window-churn`` adversary at the
  ``large`` preset (10^6 edge updates over n=4096) is spilled to a
  sealed trace file without ever materialising, validated by a
  bounded-memory scan, and replayed through the tiered recovery manager
  from the chunked ``iter_trace`` reader while a seeded fault injector
  fires mid-stream.  Peak traced memory must stay roughly flat as the
  stream grows 10x — live state, not stream length, is what costs.

``REPRO_E23_TINY=1`` shrinks both halves for the CI gate.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import resource
import tempfile
import tracemalloc

from repro.core.balanced import BalancedOrientation
from repro.graphs.tracefile import iter_trace, scan_trace, write_stream
from repro.instrument import BatchTimer, CostModel, render_table, wallclock
from repro.instrument.metrics import RECOVERY_TIERS
from repro.resilience.faults import SITES, FaultInjector, injecting
from repro.resilience.recovery import RecoveryManager
from repro.scenarios import (
    SCALES,
    scenario_names,
    scenario_stream,
    soak_scenario,
    suggested_height,
)
from repro.verify.audits import audit_orientation

from common import CONSTANTS, Experiment, write_bench

TINY = bool(os.environ.get("REPRO_E23_TINY"))
#: soak half: scenario soak preset + chaos volume
SOAK_SCALE = "tiny" if TINY else "ci"
TRIALS, FAULTS_PER_TRIAL = (1, 1) if TINY else (2, 2)
#: out-of-core half: batch counts of the small/large sliding-window runs
#: (the large one is the ``large`` preset's full 10^6 edge updates)
OOC_SMALL, OOC_LARGE = (150, 1500) if TINY else (2000, 20_000)
OOC_FAULTS = 2 if TINY else 6

_CACHE: dict[str, object] = {}


def soak(name: str) -> dict:
    """One scenario's soak verdict plus its peak traced memory (cached)."""
    key = f"soak:{name}"
    if key not in _CACHE:
        tracemalloc.start()
        report = soak_scenario(
            name,
            scale=SOAK_SCALE,
            seed=23,
            trials=TRIALS,
            faults_per_trial=FAULTS_PER_TRIAL,
            constants=CONSTANTS,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        _CACHE[key] = {"report": report, "peak_kb": peak // 1024}
    return _CACHE[key]


def out_of_core(batches: int) -> dict:
    """Spill, scan, and fault-injected-replay one windowed stream (cached).

    The stream is the ``large`` preset's sliding window truncated to
    ``batches``; at ``OOC_LARGE`` (non-tiny) that is the full 10^6
    edge-update instance.  Each stage runs under ``tracemalloc`` so the
    table reports what the *algorithmic* path holds live — the op list
    never exists, so the peaks must track the window, not the stream.
    """
    key = f"ooc:{batches}"
    if key in _CACHE:
        return _CACHE[key]
    params = dataclasses.replace(SCALES["large"], batches=batches, seed=23)
    H = suggested_height("sliding-window-churn", params)
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "window.trace"
        tracemalloc.start()
        write_stream(scenario_stream("sliding-window-churn", params), path)
        _, spill_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        info = scan_trace(path, strict=True)
        _, scan_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        cm = CostModel()
        manager = RecoveryManager(
            BalancedOrientation(H, cm=cm, constants=CONSTANTS),
            checkpoint_every=100,
            audit_every=25,
            bounded_history=True,
        )
        injector = FaultInjector.plan(
            seed=23,
            count=OOC_FAULTS,
            sites=tuple(sorted(SITES)),
            actions=("raise", "corrupt"),
        )
        timer = BatchTimer(cm)
        t0 = wallclock.monotonic()
        tracemalloc.start()
        with injecting(injector):
            for op in iter_trace(path, strict=True):
                with timer.batch(op.kind, op.size):
                    manager.apply(op)
        _, replay_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        wall = wallclock.monotonic() - t0
    audit = audit_orientation(manager.structure, manager.graph)
    _CACHE[key] = {
        "batches": info.batches,
        "edge_updates": info.edge_updates,
        "max_live": info.max_live_edges,
        "spill_peak_kb": spill_peak // 1024,
        "scan_peak_kb": scan_peak // 1024,
        "replay_peak_kb": replay_peak // 1024,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "faults_fired": len(injector.fired),
        "tiers": dict(manager.stats.counts),
        "audit_ok": audit.ok,
        "wall": wall,
        "series": timer.series,
    }
    return _CACHE[key]


def run_experiment() -> Experiment:
    soaks = {name: soak(name) for name in scenario_names()}
    soak_rows = []
    for name, s in soaks.items():
        r = s["report"]
        tiers = r.chaos.stats.counts
        soak_rows.append(
            (
                name,
                r.stats.batches,
                r.stats.edge_updates,
                r.stats.max_live_edges,
                r.suggested_H,
                r.chaos.faults_fired,
                tiers.get("rollback", 0),
                tiers.get("checkpoint", 0),
                tiers.get("rebuild", 0),
                s["peak_kb"],
                "GREEN" if r.ok else "RED",
            )
        )
    soak_table = render_table(
        ["scenario", "batches", "edges", "max live", "H hint", "faults",
         "t1", "t2", "t3", "peak KB", "verdict"],
        soak_rows,
    )

    small, large = out_of_core(OOC_SMALL), out_of_core(OOC_LARGE)
    ooc_rows = []
    for r in (small, large):
        ooc_rows.append(
            (
                r["edge_updates"],
                r["batches"],
                r["max_live"],
                r["spill_peak_kb"],
                r["scan_peak_kb"],
                r["replay_peak_kb"],
                r["ru_maxrss_kb"],
                r["faults_fired"],
                r["tiers"].get("rollback", 0) + r["tiers"].get("checkpoint", 0)
                + r["tiers"].get("rebuild", 0),
                "GREEN" if r["audit_ok"] else "RED",
                f"{r['wall']:.1f}s",
            )
        )
    ooc_table = render_table(
        ["edge updates", "batches", "max live", "spill KB", "scan KB",
         "replay KB", "ru_maxrss KB", "faults", "recoveries", "audit", "wall"],
        ooc_rows,
    )

    growth = large["edge_updates"] / small["edge_updates"]
    mem_ratio = large["replay_peak_kb"] / max(1, small["replay_peak_kb"])
    write_bench(
        "e23_adversarial_scale",
        large["series"],
        extra={
            "soak_scale": SOAK_SCALE,
            "scenarios": {
                name: {
                    "verdict": "GREEN" if s["report"].ok else "RED",
                    "peak_rss_kb": s["peak_kb"],
                    "faults_fired": s["report"].chaos.faults_fired,
                    "recovery_tiers": {
                        tier: s["report"].chaos.stats.counts.get(tier, 0)
                        for tier in RECOVERY_TIERS
                    },
                }
                for name, s in soaks.items()
            },
            "out_of_core": {
                str(r["edge_updates"]): {
                    "max_live_edges": r["max_live"],
                    "replay_peak_kb": r["replay_peak_kb"],
                    "ru_maxrss_kb": r["ru_maxrss_kb"],
                    "faults_fired": r["faults_fired"],
                    "recovery_tiers": r["tiers"],
                    "wall_seconds": r["wall"],
                }
                for r in (small, large)
            },
        },
    )
    return Experiment(
        exp_id="E23",
        title="adversarial scenarios at scale — soak verdicts and out-of-core memory",
        claim=(
            "the worst-case structures survive hardness-informed adversaries "
            "(wrong height hints, coreness-threshold oscillation, skew flips, "
            "sliding-window churn) under fault injection and differential "
            "replay, and a 10^6-edge-update windowed stream processes "
            "out-of-core in memory bounded by the live window, not the "
            "stream length"
        ),
        table=soak_table + "\n\n" + ooc_table,
        conclusion=(
            f"every catalog adversary comes back GREEN through both the "
            f"chaos trials and the five-config differential panel at "
            f"{SOAK_SCALE} scale (top table) — including hint-misestimation, "
            f"whose BALANCED(H) runs at a deliberately wrong hint and "
            f"degrades in cost, never correctness.  Out-of-core (bottom "
            f"table), the sliding window's live set stays at "
            f"{large['max_live']} edges while the stream grows to "
            f"{large['edge_updates']} updates: a {growth:.0f}x longer "
            f"stream costs only {mem_ratio:.2f}x the replay's peak traced "
            f"memory, all {large['faults_fired']} injected faults were "
            f"absorbed by tiered recovery, and the final orientation audit "
            f"is green against the ground-truth graph."
        ),
    )


# -- CI gates -----------------------------------------------------------------


def test_e23_all_scenarios_green():
    for name in scenario_names():
        report = soak(name)["report"]
        assert report.ok, report.render()


def test_e23_chaos_faults_actually_fired():
    assert sum(soak(n)["report"].chaos.faults_fired for n in scenario_names()) > 0


def test_e23_out_of_core_window_bound():
    r = out_of_core(OOC_SMALL)
    params = SCALES["large"]
    assert r["max_live"] <= params.window * params.batch_size


def test_e23_out_of_core_sublinear_memory():
    small, large = out_of_core(OOC_SMALL), out_of_core(OOC_LARGE)
    growth = large["edge_updates"] / small["edge_updates"]
    assert growth >= 10
    # 10x the stream must cost well under 10x the memory (roughly flat)
    assert large["replay_peak_kb"] < 3 * max(1, small["replay_peak_kb"])
    assert large["scan_peak_kb"] < 3 * max(1, small["scan_peak_kb"])


def test_e23_out_of_core_faults_recovered():
    r = out_of_core(OOC_LARGE)
    assert r["faults_fired"] > 0
    assert r["audit_ok"]


if __name__ == "__main__":
    print(run_experiment().render())
