"""E24 — executor overhead attribution: where the seconds go.

E22 established the *model* contract of the executor subsystem (process
accounting bit-identical to serial, Brent-projected speedup); this
experiment measures the *wall-clock* side the ROADMAP's perf items need:
for every ``run_structures`` round the executor records payload bytes,
coordinator pickle time, submit→start queue latency, worker compute, and
coordinator merge time into its overhead ledger
(:class:`repro.instrument.wallclock.ExecutorStats` — the ``repro profile
--overhead`` report).

Two claims are gated here, not just displayed:

* **Attribution honesty** — the named components (pickle + queue-wait +
  compute + merge) must explain >= 90% of the measured executor
  wall-clock on *both* backends.  The components come from independent
  clocks (worker processes vs the coordinator timeline), so this is a
  real check, not an identity.
* **Bit-identity under instrumentation** — with the full ledger armed,
  process work/depth/counters still equal serial exactly (the ledger
  never touches a cost model).

The dominant-cost line is the actionable output: at laptop scale it
names task pickling / queue latency as what eats the parallel win,
which is the honest mismatch E22's conclusion describes.

``REPRO_E24_TINY=1`` shrinks the trace for CI smoke runs.
"""

from __future__ import annotations

import os

from repro.core import CorenessDecomposition, DensityEstimator
from repro.graphs import generators as gen, streams
from repro.instrument import BatchTimer, CostModel, render_table
from repro.pram import ProcessExecutor, SerialExecutor

from common import CONSTANTS, EPS, Experiment, write_bench

TINY = bool(os.environ.get("REPRO_E24_TINY"))
if TINY:
    N, BLOCK, PERIPHERY, BATCH = 24, 6, 40, 12
else:
    N, BLOCK, PERIPHERY, BATCH = 56, 12, 150, 24

#: the honesty gate: components must explain this share of executor wall.
COVERAGE_GATE = 0.9


def _trace():
    _, edges = gen.planted_dense(N, BLOCK, p_in=0.8, out_edges=PERIPHERY, seed=24)
    return streams.insert_then_delete(edges, BATCH, seed=24)


def measure(workers: int = 1):
    """Drive both ladders through one backend; return cost + the ledger."""
    ops = _trace()
    cm = CostModel()
    executor = (
        ProcessExecutor(max_workers=workers) if workers > 1 else SerialExecutor()
    )
    core = CorenessDecomposition(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=24, executor=executor
    )
    dens = DensityEstimator(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=24, executor=executor
    )
    timer = BatchTimer(cm)
    try:
        for op in ops:
            with timer.batch(op.kind, op.size):
                for st in (core, dens):
                    if op.kind == "insert":
                        st.insert_batch(op.edges)
                    else:
                        st.delete_batch(op.edges)
    finally:
        executor.close()
    return {
        "work": cm.work,
        "depth": cm.depth,
        "counters": dict(cm.counters),
        "stats": executor.stats,
        "series": timer.series,
    }


CONFIGS = [
    ("serial", dict(workers=1)),
    ("process x2", dict(workers=2)),
]


def _overhead_row(name: str, stats) -> list:
    c = stats.components()
    phrase, share = stats.dominant()
    return [
        name,
        stats.rounds,
        stats.task_count,
        f"{stats.totals['payload_bytes'] / 1024.0:.1f}",
        f"{c['pickle']:.3f}",
        f"{c['queue']:.3f}",
        f"{c['compute']:.3f}",
        f"{c['merge']:.3f}",
        f"{100.0 * stats.coverage():.0f}%",
        f"{phrase} ({100.0 * share:.0f}%)",
    ]


def run_experiment() -> Experiment:
    runs = {name: measure(**kw) for name, kw in CONFIGS}
    base = runs["serial"]
    rows = [_overhead_row(name, runs[name]["stats"]) for name, _ in CONFIGS]
    table = render_table(
        ["config", "rounds", "tasks", "payload KiB", "pickle s", "queue s",
         "compute s", "merge s", "coverage", "dominant cost"],
        rows,
    )
    # gate 1: attribution honesty on both backends
    for name, _ in CONFIGS:
        cov = runs[name]["stats"].coverage()
        assert cov >= COVERAGE_GATE, (
            f"{name}: components explain only {100 * cov:.0f}% of executor "
            f"wall-clock — the ledger is lying by omission"
        )
    # gate 2: the ledger never perturbs the accounting
    assert (base["work"], base["depth"], base["counters"]) == (
        runs["process x2"]["work"],
        runs["process x2"]["depth"],
        runs["process x2"]["counters"],
    ), "overhead instrumentation must keep process accounting bit-identical"
    write_bench(
        "e24_executor_overhead",
        base["series"],
        extra={
            "overhead": {
                name: {
                    "rounds": runs[name]["stats"].rounds,
                    "tasks": runs[name]["stats"].task_count,
                    "payload_kb": (
                        runs[name]["stats"].totals["payload_bytes"] / 1024.0
                    ),
                    "wall_seconds": runs[name]["stats"].totals["wall_s"],
                    "pickle_seconds": runs[name]["stats"].components()["pickle"],
                    "queue_seconds": runs[name]["stats"].components()["queue"],
                    "compute_seconds": runs[name]["stats"].components()["compute"],
                    "merge_seconds": runs[name]["stats"].components()["merge"],
                    "coverage": runs[name]["stats"].coverage(),
                    "dominant": runs[name]["stats"].dominant()[0],
                }
                for name, _ in CONFIGS
            }
        },
    )
    proc = runs["process x2"]["stats"]
    phrase, share = proc.dominant()
    pc = proc.components()
    overhead_share = (pc["pickle"] + pc["queue"] + pc["merge"]) / (
        proc.totals["wall_s"] or 1.0
    )
    return Experiment(
        exp_id="E24",
        title="executor overhead attribution — where the seconds go",
        claim=(
            "the executor's wall-clock decomposes into named components "
            "(task pickling, queue/dispatch wait, worker compute, "
            "coordinator merge) that explain >= 90% of the measured wall "
            "on both backends, without perturbing the bit-identical "
            "work/depth accounting"
        ),
        table=table,
        conclusion=(
            f"the ledger accounts for "
            f"{100 * runs['serial']['stats'].coverage():.0f}% (serial) and "
            f"{100 * proc.coverage():.0f}% (process x2) of executor "
            f"wall-clock from independent coordinator/worker clocks — the "
            f"attribution is honest, not defined into being true "
            f"(asserted at {100 * COVERAGE_GATE:.0f}%).  On the process "
            f"backend the dominant cost is {phrase} at "
            f"{100 * share:.0f}% of the wall, with pickling + dispatch + "
            f"merge overhead taking {100 * overhead_share:.0f}% — the "
            f"per-rung numbers behind E22's 'pickling overhead outweighs "
            f"real parallelism' caveat (`repro profile --overhead` "
            f"reproduces the table on any trace) instead of a hand-wave."
        ),
    )


def test_e24_coverage_gate_serial():
    stats = measure(workers=1)["stats"]
    assert stats.rounds > 0 and stats.task_count > 0
    assert stats.coverage() >= COVERAGE_GATE
    # a serial round has no pickling, queueing, or merging to pay for
    assert stats.totals["serialize_s"] == 0.0
    assert stats.dominant()[0] == "worker compute"


def test_e24_coverage_gate_process():
    stats = measure(workers=2)["stats"]
    assert stats.coverage() >= COVERAGE_GATE
    # the process backend really does ship payloads both ways
    assert stats.totals["payload_bytes"] > 0
    assert stats.totals["result_bytes"] > 0


def test_e24_ledger_keeps_bit_identity():
    serial = measure(workers=1)
    proc = measure(workers=2)
    assert (serial["work"], serial["depth"], serial["counters"]) == (
        proc["work"],
        proc["depth"],
        proc["counters"],
    )


if __name__ == "__main__":
    print(run_experiment().render())
