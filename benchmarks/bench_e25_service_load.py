"""E25 — coreness-as-a-service under concurrent load.

The service (``repro serve``, docs/SERVICE.md) promises asynchronous
reads in the sense of Liu–Shun–Zablotchi (arXiv 2401.08015) at batch
granularity: queries are served from an immutable published epoch
snapshot and never block on in-flight updates.  This experiment loads
that promise instead of trusting it — one ingest stream commits churn
batches while a fleet of concurrent query clients hammers the snapshot
surface over real TCP connections, and every single answer is checked
against a serial-replay oracle *at the epoch the answer claims*.

Three claims are gated here, not just displayed:

* **zero failed reads** — under >= 100 concurrent clients racing a live
  update stream, every query returns an answer (no errors, no timeouts,
  no blocking on the writer);
* **epoch consistency** — each answer equals the serial oracle's answer
  for exactly the epoch it reports (bit-identical dicts, not "close"),
  and epochs never move backwards on a connection;
* **liveness under load** — the ingest stream finishes and the final
  epoch equals the batch count (readers cannot starve the writer).

The recorded p50/p99 query latencies are wall-clock milliseconds over
loopback TCP — they include JSON framing and the asyncio event loop, and
are the service's honest serving cost, not a model quantity.

``REPRO_E25_TINY=1`` shrinks the fleet for CI smoke runs.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from dataclasses import asdict

from repro.core import CorenessDecomposition, DensityEstimator
from repro.instrument import BatchTimer, CostModel, render_table
from repro.instrument import wallclock
from repro.service import CorenessService, ServiceClient
from repro.service.state import TenantConfig

from common import CONSTANTS, EPS, Experiment, write_bench

TINY = bool(os.environ.get("REPRO_E25_TINY"))
if TINY:
    N, BATCHES, BATCH, CLIENTS = 24, 10, 5, 12
else:
    N, BATCHES, BATCH, CLIENTS = 64, 40, 8, 120

SEED = 25
SHARDS = 2

#: the load gate: every read answers, every answer matches its epoch.
FAILED_READS_GATE = 0
MISMATCH_GATE = 0


def _batches():
    """Deterministic churn over ``[0, N)`` (same shape as the scenarios)."""
    import random

    rng = random.Random(SEED)
    live: set[tuple[int, int]] = set()
    out = []
    for _ in range(BATCHES):
        if live and (rng.random() < 0.3 or len(live) > 4 * N):
            batch = rng.sample(sorted(live), min(BATCH, len(live)))
            live.difference_update(batch)
            out.append(("delete", tuple(batch)))
        else:
            batch = []
            while len(batch) < BATCH:
                u, v = rng.randrange(N), rng.randrange(N)
                e = (min(u, v), max(u, v))
                if u == v or e in live or e in batch:
                    continue
                batch.append(e)
            live.update(batch)
            out.append(("insert", tuple(batch)))
    return out


def _oracle(batches):
    """Serial replay: per-epoch ground truth + the work/depth series."""
    cm = CostModel()
    core = CorenessDecomposition(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=SEED
    )
    dens = DensityEstimator(
        N, eps=EPS, cm=cm, constants=CONSTANTS, seed=SEED
    )
    per_epoch = {0: (dict(core.estimates()), dens.density_estimate())}
    timer = BatchTimer(cm)
    for epoch, (kind, edges) in enumerate(batches, 1):
        with timer.batch(kind, len(edges)):
            for st in (core, dens):
                if kind == "insert":
                    st.insert_batch(edges)
                else:
                    st.delete_batch(edges)
        per_epoch[epoch] = (dict(core.estimates()), dens.density_estimate())
    return per_epoch, timer.series


async def _drive(batches, oracle):
    """The load: one ingest stream vs CLIENTS concurrent query clients."""
    tmp = tempfile.mkdtemp(prefix="repro-e25-")
    service = CorenessService(tmp, shards=SHARDS, checkpoint_every=10_000)
    await service.start()
    cfg = TenantConfig(n=N, eps=EPS, seed=SEED, constants=CONSTANTS)
    writer = await ServiceClient.open(*service.address)
    await writer.create(
        "load", n=cfg.n, eps=cfg.eps, seed=cfg.seed,
        constants=asdict(CONSTANTS),
    )

    stop = asyncio.Event()
    latencies: list[float] = []
    failed = 0
    mismatches = 0
    epochs_seen: set[int] = set()

    async def reader(idx: int) -> None:
        nonlocal failed, mismatches
        client = await ServiceClient.open(*service.address)
        last = -1
        what = "coreness" if idx % 2 == 0 else "density"
        while not stop.is_set():
            t0 = wallclock.monotonic()
            try:
                resp = await client.query("load", what)
            except Exception:
                failed += 1
                continue
            latencies.append(wallclock.monotonic() - t0)
            epoch = resp["epoch"]
            if epoch < last:
                mismatches += 1
            last = epoch
            epochs_seen.add(epoch)
            want_core, want_density = oracle[epoch]
            if what == "coreness":
                got = {int(v): c for v, c in resp["coreness"].items()}
                if got != want_core:
                    mismatches += 1
            elif resp["density"] != want_density:
                mismatches += 1
            await asyncio.sleep(0)
        await client.close()

    readers = [asyncio.create_task(reader(i)) for i in range(CLIENTS)]
    t_ingest = wallclock.monotonic()
    for kind, edges in batches:
        await writer.ingest("load", kind, edges)
    await writer.drain()
    ingest_seconds = wallclock.monotonic() - t_ingest
    stop.set()
    await asyncio.gather(*readers)
    final = await writer.query("load", "stats")
    await writer.close()
    await service.stop()

    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        k = min(len(latencies) - 1, int(round(p / 100.0 * (len(latencies) - 1))))
        return latencies[k]

    wall = max(ingest_seconds, 1e-9)
    return {
        "clients": CLIENTS,
        "queries": len(latencies),
        "failed_reads": failed,
        "mismatches": mismatches,
        "epochs_observed": len(epochs_seen),
        "final_epoch": final["epoch"],
        "ingest_batches": len(batches),
        "ingest_seconds": ingest_seconds,
        "queries_per_second": len(latencies) / wall,
        "p50_ms": 1e3 * pct(50),
        "p99_ms": 1e3 * pct(99),
        "max_ms": 1e3 * (latencies[-1] if latencies else 0.0),
    }


def run_load():
    batches = _batches()
    oracle, series = _oracle(batches)
    result = asyncio.run(_drive(batches, oracle))
    return result, series


def run_experiment() -> Experiment:
    result, series = run_load()
    rows = [
        ("concurrent query clients", result["clients"]),
        ("queries answered", result["queries"]),
        ("failed reads", result["failed_reads"]),
        ("epoch-consistency mismatches", result["mismatches"]),
        ("distinct epochs observed", result["epochs_observed"]),
        ("ingest batches committed", result["ingest_batches"]),
        ("query p50", f"{result['p50_ms']:.2f} ms"),
        ("query p99", f"{result['p99_ms']:.2f} ms"),
        ("query throughput", f"{result['queries_per_second']:.0f}/s"),
    ]
    table = render_table(["metric", "value"], rows)
    assert result["failed_reads"] <= FAILED_READS_GATE, (
        f"{result['failed_reads']} reads failed under load"
    )
    assert result["mismatches"] <= MISMATCH_GATE, (
        f"{result['mismatches']} answers diverged from their epoch's oracle"
    )
    assert result["final_epoch"] == result["ingest_batches"], (
        "readers starved the writer: the ingest stream never finished"
    )
    write_bench("e25_service_load", series, extra={"service_load": result})
    return Experiment(
        exp_id="E25",
        title="coreness-as-a-service under concurrent load",
        claim=(
            "queries served from published epoch snapshots never block on "
            "in-flight updates and never observe a half-applied batch "
            "(asynchronous batch-snapshot reads, arXiv 2401.08015)"
        ),
        table=table,
        conclusion=(
            f"{result['clients']} concurrent TCP clients issued "
            f"{result['queries']} queries while the full churn stream "
            f"committed: {result['failed_reads']} failed reads and "
            f"{result['mismatches']} oracle mismatches (both asserted at "
            f"zero) across {result['epochs_observed']} distinct observed "
            f"epochs — every answer was bit-identical to a serial replay "
            f"of exactly the epoch it reported, and epochs never moved "
            f"backwards.  Query p50/p99 was "
            f"{result['p50_ms']:.1f}/{result['p99_ms']:.1f} ms over "
            f"loopback at {result['queries_per_second']:.0f} queries/s "
            f"sustained while the writer committed "
            f"{result['ingest_batches']} batches in "
            f"{result['ingest_seconds']:.1f}s — reads scale with snapshot "
            f"size, not with update work, which is the service's whole "
            f"point."
        ),
    )


def test_e25_load_zero_failed_reads_and_epoch_consistency():
    result, _ = run_load()
    assert result["clients"] >= (12 if TINY else 100)
    assert result["queries"] > 0
    assert result["failed_reads"] == 0
    assert result["mismatches"] == 0
    assert result["final_epoch"] == result["ingest_batches"]


if __name__ == "__main__":
    print(run_experiment().render())
