"""E2 — worst-case vs amortized per-batch cost (the paper's raison d'etre).

Reproduces the qualitative separation of Section 1.1 with two adversaries:

* **sawtooth** (vs the coreness maintainers): build a clique in one batch,
  tear it down edge by edge, repeat.  Amortized coreness structures
  (lazy rebuild, level data structure) pay for the build during the tiny
  teardown batches — their per-batch work spikes far above the median.
* **loaded path** (vs the orientation maintainers): orient a long path
  forward with Brodal–Fagerberg's cap at 1, then insert a single trigger
  edge at the head — one update cascades flips down the whole path.  Our
  structure and the worst-case sequential comparator stay flat.

Metric: ``spike = max / median`` of per-batch work-per-edge.
"""

from __future__ import annotations

from repro.baselines import (
    BrodalFagerbergOrientation,
    LazyRebuildCoreness,
    LevelDataStructure,
    SawlaniWangOrientation,
)
from repro.core import BalancedOrientation
from repro.graphs import streams
from repro.graphs.streams import BatchOp
from repro.instrument import CostModel, render_table

from common import Experiment, drive, spike_ratio

K = 10  # clique size of the sawtooth
REPEATS = 3
PATH_LEN = 60


def sawtooth_stream():
    return streams.sawtooth_clique(K, repeats=REPEATS, small_batch=1)


def loaded_path_stream():
    """Forward path inserted edge-by-edge, then trigger edges at the head."""
    ops = [BatchOp("insert", ((i, i + 1),)) for i in range(PATH_LEN)]
    trigger = PATH_LEN + 1
    for r in range(6):
        ops.append(BatchOp("insert", ((0, trigger + r),)))
        ops.append(BatchOp("delete", ((0, trigger + r),)))
    return ops


def measure(make_structure, stream) -> tuple[float, float, float]:
    cm = CostModel()
    structure = make_structure(cm)
    series = drive(structure, stream(), cm)
    return (
        series.mean_work_per_edge(),
        series.max_work_per_edge(),
        spike_ratio(series),
    )


SAWTOOTH = [
    ("ours: BALANCED(5), worst-case", lambda cm: BalancedOrientation(H=5, cm=cm)),
    ("lazy rebuild (amortized)", lambda cm: LazyRebuildCoreness(tau=0.25, cm=cm)),
    ("level DS (amortized, LSY+22-style)", lambda cm: LevelDataStructure(64, delta=0.5, cm=cm)),
]

LOADED_PATH = [
    ("ours: BALANCED(4), worst-case", lambda cm: BalancedOrientation(H=4, cm=cm)),
    ("Sawlani-Wang (sequential worst-case)", lambda cm: SawlaniWangOrientation(cm=cm)),
    ("Brodal-Fagerberg cap=1 (amortized)", lambda cm: BrodalFagerbergOrientation(cap=1, cm=cm)),
]


def run_experiment() -> Experiment:
    rows = []
    spikes: dict[str, float] = {}
    for name, make in SAWTOOTH:
        mean, mx, spike = measure(make, sawtooth_stream)
        spikes[name] = spike
        rows.append(("sawtooth", name, f"{mean:.0f}", f"{mx:.0f}", f"{spike:.1f}x"))
    for name, make in LOADED_PATH:
        mean, mx, spike = measure(make, loaded_path_stream)
        spikes[name] = spike
        rows.append(("loaded path", name, f"{mean:.0f}", f"{mx:.0f}", f"{spike:.1f}x"))
    table = render_table(
        ["adversary", "structure", "mean work/edge", "max work/edge", "spike"], rows
    )
    ours_st = spikes[SAWTOOTH[0][0]]
    ours_lp = spikes[LOADED_PATH[0][0]]
    amortized = max(
        spikes[SAWTOOTH[1][0]], spikes[SAWTOOTH[2][0]], spikes[LOADED_PATH[2][0]]
    )
    return Experiment(
        exp_id="E2",
        title="worst-case vs amortized per-batch work",
        claim=(
            "worst-case work bound: every batch costs O(b polylog n), "
            "unlike amortized structures whose individual batches can cost "
            "far more than their size (Section 1.1)"
        ),
        table=table,
        conclusion=(
            f"our spike ratios ({ours_st:.1f}x / {ours_lp:.1f}x) stay small on "
            f"both adversaries while the amortized contenders reach up to "
            f"{amortized:.0f}x: rebuild storms (lazy), level cascades (LDS) "
            "and flip cascades (BF) all concentrate an amortized budget into "
            "single tiny batches — exactly the short-term burstiness the "
            "paper's worst-case bound eliminates."
        ),
    )


def test_e2_ours_least_bursty_on_sawtooth():
    spikes = {name: measure(make, sawtooth_stream)[2] for name, make in SAWTOOTH}
    ours = spikes[SAWTOOTH[0][0]]
    assert all(ours <= s + 1e-9 for s in spikes.values())


def test_e2_lazy_rebuild_spikes():
    ours = measure(SAWTOOTH[0][1], sawtooth_stream)[2]
    lazy = measure(SAWTOOTH[1][1], sawtooth_stream)[2]
    assert lazy > 5 * ours


def test_e2_bf_cascades_on_loaded_path():
    ours = measure(LOADED_PATH[0][1], loaded_path_stream)[2]
    bf = measure(LOADED_PATH[2][1], loaded_path_stream)[2]
    assert bf > 3 * ours


def test_e2_wallclock(benchmark):
    benchmark.pedantic(
        lambda: measure(SAWTOOTH[0][1], sawtooth_stream), rounds=2, iterations=1
    )


if __name__ == "__main__":
    print(run_experiment().render())
