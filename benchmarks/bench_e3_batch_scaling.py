"""E3 — Theorem 4.1: work per edge is flat in batch size; depth is polylog.

The same 512 edges are inserted in batches of 1, 4, 16, 64, 256.  The
worst-case guarantee says per-edge work is O(H^6 log n) *independent of
the batch size*, while the whole-stream depth shrinks as batches grow
(that is where parallelism pays).
"""

from __future__ import annotations

from repro.core import BalancedOrientation
from repro.graphs import generators as gen, streams
from repro.instrument import CostModel, render_table

from common import Experiment, drive, drive_traced, write_bench

N, M, H = 80, 512, 5
BATCH_SIZES = [1, 4, 16, 64, 256]


def measure(batch_size: int):
    _, edges = gen.erdos_renyi(N, M, seed=6)
    cm = CostModel()
    st = BalancedOrientation(H=H, cm=cm)
    series = drive(st, streams.insert_only(edges, batch_size), cm)
    mean_depth = series.mean_depth()
    total_depth = sum(r.depth for r in series.records)
    return series.mean_work_per_edge(), mean_depth, total_depth


def measure_traced(batch_size: int):
    """One traced replay: (series, phase tree) for the BENCH artefact."""
    _, edges = gen.erdos_renyi(N, M, seed=6)
    cm = CostModel()
    st = BalancedOrientation(H=H, cm=cm)
    return drive_traced(st, streams.insert_only(edges, batch_size), cm)


def run_experiment() -> Experiment:
    rows = []
    stats = {}
    for b in BATCH_SIZES:
        wpe, mean_depth, total_depth = measure(b)
        stats[b] = (wpe, mean_depth, total_depth)
        rows.append((b, f"{wpe:.0f}", f"{mean_depth:.0f}", total_depth))
    table = render_table(
        ["batch size b", "work / edge", "mean batch depth", "stream total depth"],
        rows,
    )
    flat = stats[BATCH_SIZES[-1]][0] / stats[BATCH_SIZES[0]][0]
    depth_gain = stats[BATCH_SIZES[0]][2] / stats[BATCH_SIZES[-1]][2]
    series, tree = measure_traced(64)
    write_bench(
        "e3_batch_scaling", series, tree,
        extra={"n": N, "m": M, "H": H, "batch_size": 64},
    )
    return Experiment(
        exp_id="E3",
        title="batch-size scaling (Theorem 4.1)",
        claim=(
            "insertions cost O(H^6 log n) work per edge regardless of batch "
            "size, with poly(log n) depth for the entire batch"
        ),
        table=table,
        conclusion=(
            f"work/edge varies only {flat:.2f}x across a 256x change in batch "
            f"size (flat, as claimed), while total stream depth drops "
            f"{depth_gain:.0f}x with large batches — the parallelism the "
            "batch-dynamic model buys."
        ),
    )


def test_e3_work_per_edge_flat():
    small = measure(1)[0]
    large = measure(256)[0]
    assert 0.25 <= large / small <= 4.0


def test_e3_total_depth_shrinks_with_batching():
    assert measure(1)[2] > 3 * measure(256)[2]


def test_e3_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(64), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
