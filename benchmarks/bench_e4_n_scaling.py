"""E4 — Theorem 4.1: per-edge cost grows polylogarithmically with n.

Fixed batch size and average degree; n doubles from 32 to 256.  A
polylog-in-n bound means work/edge on a log-x axis grows at most
polynomially in log n — in particular, far slower than linearly in n.
"""

from __future__ import annotations

import math

from repro.core import BalancedOrientation
from repro.graphs import generators as gen, streams
from repro.instrument import CostModel, render_table

from common import Experiment, drive

SIZES = [32, 64, 128, 256]
H = 5


def measure(n: int):
    _, edges = gen.erdos_renyi(n, 4 * n, seed=8)
    cm = CostModel()
    st = BalancedOrientation(H=H, cm=cm)
    series = drive(st, streams.insert_only(edges, 32), cm)
    return series.mean_work_per_edge(), series.max_depth()


def run_experiment() -> Experiment:
    rows = []
    stats = {}
    for n in SIZES:
        wpe, max_depth = measure(n)
        stats[n] = (wpe, max_depth)
        rows.append((n, 4 * n, f"{wpe:.0f}", max_depth, f"{wpe / math.log2(n) ** 2:.1f}"))
    table = render_table(
        ["n", "m", "work / edge", "max batch depth", "work / (edge log^2 n)"],
        rows,
    )
    growth = stats[SIZES[-1]][0] / stats[SIZES[0]][0]
    n_growth = SIZES[-1] / SIZES[0]
    return Experiment(
        exp_id="E4",
        title="n-scaling of per-edge cost (Theorem 4.1)",
        claim="work per edge and per-batch depth are poly(log n), not poly(n)",
        table=table,
        conclusion=(
            f"an {n_growth:.0f}x increase in n raises work/edge only "
            f"{growth:.2f}x — consistent with the polylog bound (a linear "
            "dependence would give 8x); the normalized last column stays "
            "near-constant."
        ),
    )


def test_e4_growth_is_sublinear():
    small = measure(SIZES[0])[0]
    large = measure(SIZES[-1])[0]
    assert large / small < (SIZES[-1] / SIZES[0]) / 2


def test_e4_depth_polylog():
    _, depth = measure(256)
    # a generous polylog envelope: H^6 log^2 n would be ~10^6; peeling-style
    # linear depth would be ~1024. we check the batch depth is far below n*m
    assert depth < 256 * 64


def test_e4_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(64), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
