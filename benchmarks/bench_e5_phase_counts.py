"""E5 — Lemmas 4.8 / 4.18: the token games halt within O(H^3) phases.

For each height H we run dense insert and delete batches and record the
average number of phases per game.  The proven bound is cubic in H; the
measured counts should sit far below it (the lemmas are worst-case) and
grow slowly with H.
"""

from __future__ import annotations

from repro.core import BalancedOrientation
from repro.graphs import generators as gen
from repro.instrument import CostModel, render_table

from common import Experiment

HEIGHTS = [2, 3, 4, 6, 8]


def measure(H: int):
    n, edges = gen.erdos_renyi(48, 60 * H, seed=H)
    cm = CostModel()
    st = BalancedOrientation(H=H, cm=cm)
    for i in range(0, len(edges), 64):
        st.insert_batch(edges[i : i + 64])
    st.delete_batch(edges[: len(edges) // 2])
    c = cm.counters
    drop = c.get("drop_phases", 0) / max(1, c.get("drop_games", 1))
    push = c.get("push_phases", 0) / max(1, c.get("push_games", 1))
    return drop, push


def run_experiment() -> Experiment:
    rows = []
    for H in HEIGHTS:
        drop, push = measure(H)
        bound = (H + 1) ** 3
        rows.append(
            (H, f"{drop:.1f}", f"{push:.1f}", bound, f"{max(drop, push) / bound:.3f}")
        )
    table = render_table(
        ["H", "mean drop phases/game", "mean push phases/game", "(H+1)^3 bound", "ratio"],
        rows,
    )
    return Experiment(
        exp_id="E5",
        title="token-game phase counts vs the cubic bound (Lemmas 4.8/4.18)",
        claim="both games halt after O(H^3) phases",
        table=table,
        conclusion=(
            "measured phase counts stay 2-3 orders of magnitude below the "
            "cubic bound and grow sublinearly in H on random inputs — the "
            "bound is a worst-case envelope, and the safety guard "
            "(phase_safety x bound) never fires."
        ),
    )


def test_e5_within_cubic_bound():
    for H in HEIGHTS:
        drop, push = measure(H)
        assert drop <= (H + 1) ** 3
        assert push <= (H + 1) ** 3


def test_e5_far_below_bound_on_random_inputs():
    drop, push = measure(6)
    assert max(drop, push) < 0.2 * 7 ** 3


def test_e5_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(4), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
