"""E6 — Lemma 4.15: ExtractTokenBundle needs only O(H^2) rounds per batch.

Adversarially concentrated insertions (clique batches, which funnel many
proposals into few vertices) maximize the number of extraction rounds.
The measured per-batch round count must stay below the quadratic bound.
"""

from __future__ import annotations

from repro.core import BalancedOrientation
from repro.graphs import generators as gen
from repro.instrument import CostModel, render_table

from common import Experiment

HEIGHTS = [2, 3, 4, 6, 8]


def measure(H: int) -> tuple[float, int]:
    cm = CostModel()
    st = BalancedOrientation(H=H, cm=cm)
    batches = 0
    for offset in range(0, 4):
        _, edges = gen.clique(2 * H + 3, offset=offset * (2 * H + 4))
        st.insert_batch(edges)
        batches += 1
    rounds = cm.counters.get("insert_bundle_rounds", 0)
    return rounds / batches, batches


def run_experiment() -> Experiment:
    rows = []
    for H in HEIGHTS:
        mean_rounds, _ = measure(H)
        bound = 2 * (H + 1) ** 2 + 3
        rows.append((H, f"{mean_rounds:.1f}", bound, f"{mean_rounds / bound:.2f}"))
    table = render_table(
        ["H", "mean extraction rounds/batch", "2(H+1)^2+3 bound", "ratio"], rows
    )
    return Experiment(
        exp_id="E6",
        title="bundle-extraction rounds vs the quadratic bound (Lemma 4.15)",
        claim=(
            "after O(H^2) ExtractTokenBundle rounds every remaining edge has "
            "both endpoints saturated and inserts freely"
        ),
        table=table,
        conclusion=(
            "even clique batches — the most contended proposals possible — "
            "finish extraction well below the quadratic bound; measured "
            "rounds grow roughly linearly in H."
        ),
    )


def test_e6_within_quadratic_bound():
    for H in HEIGHTS:
        mean_rounds, _ = measure(H)
        assert mean_rounds <= 2 * (H + 1) ** 2 + 3


def test_e6_rounds_grow_with_h():
    small, _ = measure(2)
    large, _ = measure(8)
    assert large >= small  # monotone-ish: taller structures take more rounds


def test_e6_wallclock(benchmark):
    benchmark.pedantic(lambda: measure(3), rounds=2, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
