"""E7 — Theorem 1.2: density, arboricity and orientation quality.

A planted block densifies in stages; after each stage we compare:

* rho_ALG against exact rho (Goldberg's flow oracle) — claim (1 +/- eps)
  up to ladder granularity;
* lambda_ALG against exact arboricity (matroid partition) — claim
  [(1 - eps) lambda, (2 + eps) lambda];
* the exported orientation's max out-degree against (2 + eps) rho.
"""

from __future__ import annotations

from repro.baselines import arboricity, exact_density, min_max_outdegree
from repro.core import DensityEstimator
from repro.graphs import DynamicGraph, streams
from repro.instrument import CostModel, render_table

from common import CONSTANTS, EPS, Experiment

N = 40


def run_stages():
    de = DensityEstimator(N, eps=EPS, cm=CostModel(), constants=CONSTANTS, seed=11)
    mirror = DynamicGraph(N)
    stages = []
    for op in streams.density_ramp(N, block=12, levels=5, per_level=13, seed=12):
        de.insert_batch(op.edges)
        mirror.insert_batch(op.edges)
        rho = exact_density(mirror)
        lam = arboricity(mirror)
        dstar, _witness = min_max_outdegree(mirror)
        stages.append(
            dict(
                m=mirror.m,
                rho=rho,
                rho_alg=de.density_estimate(),
                lam=lam,
                lam_alg=de.arboricity_estimate(),
                outdeg=de.max_outdegree(),
                dstar=dstar,
            )
        )
    return stages


def run_experiment() -> Experiment:
    stages = run_stages()
    rows = [
        (
            s["m"],
            f"{s['rho']:.2f}",
            f"{s['rho_alg']:.1f}",
            f"{s['rho_alg'] / s['rho']:.2f}",
            s["lam"],
            f"{s['lam_alg']:.1f}",
            s["outdeg"],
            s["dstar"],
            f"{2.5 * s['rho']:.1f}",
        )
        for s in stages
    ]
    table = render_table(
        ["m", "rho", "rho_alg", "ratio", "lambda", "lambda_alg", "max d+", "opt d*", "(2+eps)rho"],
        rows,
    )
    worst = max(abs(s["rho_alg"] / s["rho"] - 1) for s in stages)
    return Experiment(
        exp_id="E7",
        title="density / arboricity / orientation quality (Theorem 1.2)",
        claim=(
            "rho_ALG in (1 +/- eps) rho; lambda_ALG in [(1-eps) lambda, "
            "(2+eps) lambda]; orientation out-degrees <= (2+eps) rho"
        ),
        table=table,
        conclusion=(
            f"rho_alg tracks the exact density within {worst:.0%} across the "
            "whole ramp (ladder rungs quantize the estimate to powers of "
            "1+eps); lambda_alg = 2 rho_alg stays inside its two-sided band; "
            "the exported orientation respects the (2+eps) rho out-degree "
            "bound at every stage."
        ),
    )


def test_e7_density_band():
    for s in run_stages():
        assert 0.4 * s["rho"] <= s["rho_alg"] <= max(2.0, 2.2 * s["rho"])


def test_e7_arboricity_band():
    for s in run_stages():
        if s["lam"] >= 2:
            assert 0.4 * s["lam"] <= s["lam_alg"] <= 4.0 * s["lam"]


def test_e7_orientation_bound():
    for s in run_stages():
        assert s["outdeg"] <= max(3.0, 3.0 * s["rho"])


def test_e7_orientation_near_flow_optimum():
    # the maintained orientation stays within a small constant of the
    # exact flow-based optimum d*
    for s in run_stages():
        assert s["outdeg"] <= 3 * s["dstar"] + 1


def test_e7_wallclock(benchmark):
    benchmark.pedantic(run_stages, rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
