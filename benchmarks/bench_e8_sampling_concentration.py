"""E8 — Appendix A: denseness measures concentrate under edge sampling.

For a planted instance with known coreness/density, we sample at several
rates p and compare the sampled measures against the Lemma A.1–A.4 band
``(1 +/- eps) p x +/- O(log n / eps)``.
"""

from __future__ import annotations

from repro.baselines import core_numbers, exact_density
from repro.core import expected_band, sample_graph
from repro.graphs import DynamicGraph, generators as gen
from repro.instrument import render_table

from common import Experiment

PS = [0.25, 0.5, 0.75]
SEEDS = [0, 1, 2]


def build():
    n, edges = gen.planted_dense(70, block=26, p_in=0.95, out_edges=40, seed=13)
    return DynamicGraph(n, edges)


def run_experiment() -> Experiment:
    g = build()
    core = max(core_numbers(g).values())
    rho = exact_density(g)
    rows = []
    violations = 0
    for p in PS:
        for seed in SEEDS:
            gp = sample_graph(g, p, seed=seed)
            score = max(core_numbers(gp).values(), default=0)
            srho = exact_density(gp)
            cband = expected_band(core, p, eps=0.5, n=g.n, c=2.0)
            dband = expected_band(rho, p, eps=0.5, n=g.n, c=2.0)
            ok = cband.contains(score) and dband.contains(srho)
            violations += 0 if ok else 1
            rows.append(
                (
                    p,
                    seed,
                    f"{p * core:.1f}",
                    score,
                    f"{p * rho:.1f}",
                    f"{srho:.2f}",
                    "yes" if ok else "NO",
                )
            )
    table = render_table(
        ["p", "seed", "p*core", "core(G_p)", "p*rho", "rho(G_p)", "in band"], rows
    )
    return Experiment(
        exp_id="E8",
        title="sampling concentration of coreness and density (Appendix A)",
        claim=(
            "sampling each edge with probability p scales coreness/density/"
            "arboricity by p up to (1 +/- eps) and an additive O(log n / eps)"
        ),
        table=table,
        conclusion=(
            "all sampled measures land inside the Lemma A.1-A.4 band "
            f"({violations} violations out of {len(rows)} draws); the sampled "
            "values hug p times the original, which is what makes the "
            "H > B sampling regime of Theorem 5.1 sound."
        ),
    )


def test_e8_coreness_concentrates():
    g = build()
    core = max(core_numbers(g).values())
    for p in PS:
        for seed in SEEDS:
            gp = sample_graph(g, p, seed=seed)
            band = expected_band(core, p, eps=0.5, n=g.n, c=2.0)
            assert band.contains(max(core_numbers(gp).values(), default=0))


def test_e8_density_concentrates():
    g = build()
    rho = exact_density(g)
    for p in PS:
        gp = sample_graph(g, p, seed=0)
        band = expected_band(rho, p, eps=0.5, n=g.n, c=2.0)
        assert band.contains(exact_density(gp))


def test_e8_wallclock(benchmark):
    g = build()
    benchmark.pedantic(lambda: sample_graph(g, 0.5, seed=0), rounds=3, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
