"""E9 — Brent-projected runtimes: dynamic vs static vs sequential.

Two questions, answered from measured (work, depth) via Brent's principle
``T_p <= W/p + D``:

1. **When does batch-dynamic beat static re-computation?**  Static
   re-peeling pays Theta(n + m) work per batch regardless of batch size;
   our structure pays O(polylog) per *edge*.  Sweeping the batch size at
   fixed stream length exposes the crossover: tiny batches (the regime
   dynamic algorithms exist for) favour us by orders of magnitude, huge
   batches amortize the static recompute and favour re-peeling at
   laptop-scale polylog constants.
2. **How much parallelism does one batch hold?**  The sequential
   worst-case comparator (Sawlani–Wang) has depth == work (ceiling 1x);
   our per-batch parallelism W/D grows with the batch size.
"""

from __future__ import annotations

from repro.baselines import SawlaniWangOrientation, StaticRecompute
from repro.core import BalancedOrientation
from repro.graphs import generators as gen, streams
from repro.instrument import CostModel, parallelism, project, render_table

from common import Experiment, drive

N, M = 150, 600
BATCHES = [1, 4, 16, 64, 300]
P = 64  # projection processor count for the headline column


def edges_():
    return gen.erdos_renyi(N, M, seed=14)[1]


def measure_ours(batch: int):
    cm = CostModel()
    st = BalancedOrientation(H=5, cm=cm)
    drive(st, streams.insert_only(edges_(), batch), cm)
    return cm.work, cm.depth


def measure_static(batch: int):
    cm = CostModel()
    sr = StaticRecompute(cm=cm)
    for op in streams.insert_only(edges_(), batch):
        sr.insert_batch(op.edges)
    return cm.work, cm.depth


def measure_sw():
    cm = CostModel()
    sw = SawlaniWangOrientation(cm=cm)
    for op in streams.insert_only(edges_(), 16):
        sw.insert_batch(op.edges)
    return cm.work, cm.work  # sequential: depth == work


def run_experiment() -> Experiment:
    rows = []
    for b in BATCHES:
        ow, od = measure_ours(b)
        sw_, sd = measure_static(b)
        (o,) = project(ow, od, [P])
        (s,) = project(sw_, sd, [P])
        rows.append(
            (
                b,
                f"{ow:.0f}",
                f"{sw_:.0f}",
                f"{o.time_upper:.0f}",
                f"{s.time_upper:.0f}",
                f"{parallelism(ow, od):.1f}",
                "ours" if o.time_upper < s.time_upper else "re-peel",
            )
        )
    table = render_table(
        [
            "batch b",
            "ours total W",
            "re-peel total W",
            f"ours T_{P}",
            f"re-peel T_{P}",
            "ours W/D",
            "winner",
        ],
        rows,
    )
    seq_w, seq_d = measure_sw()
    (sp,) = project(seq_w, seq_d, [1024])
    return Experiment(
        exp_id="E9",
        title="Brent-projected runtimes and the dynamic/static crossover",
        claim=(
            "each batch is processed in ~O(b/p + polylog) time; static "
            "recomputation pays Theta(n + m) per batch and loses whenever "
            "batches are small relative to the graph; sequential dynamic "
            "algorithms cannot use p > 1 at all"
        ),
        table=table,
        conclusion=(
            "our total work is flat in the batch split while re-peeling's "
            "grows as (stream length / b) * (n + m): at b = 1 — the regime "
            "worst-case dynamic structures exist for — we do ~6x less work "
            "and win the projected runtime.  At this laptop scale the "
            "crossover to re-peeling sits near b ~ (n + m)/polylog ~ 10 "
            "because our per-edge polylog constant (~130 units) is "
            "comparable to n + m = 750; on paper-scale graphs (n in the "
            "millions) the same formula pushes the crossover out by orders "
            "of magnitude.  Our per-batch parallelism W/D grows with b, "
            "while the Sawlani–Wang sequential comparator is pinned at "
            f"{sp.speedup_upper:.0f}x for any p.  (Projections, not "
            "wall-clock: this box has 1 core — DESIGN.md §2.)"
        ),
    )


def test_e9_dynamic_wins_small_batches():
    ow, od = measure_ours(1)
    sw_, sd = measure_static(1)
    assert ow < sw_ / 3  # total work: ours far below re-peeling
    (o,) = project(ow, od, [P])
    (s,) = project(sw_, sd, [P])
    assert o.time_upper < s.time_upper  # and projected time still wins


def test_e9_static_work_explodes_with_small_batches():
    small = measure_static(1)[0]
    big = measure_static(300)[0]
    assert small > 20 * big


def test_e9_our_work_flat_in_batch_split():
    w1 = measure_ours(1)[0]
    w2 = measure_ours(300)[0]
    assert 0.25 < w1 / w2 < 4

def test_e9_parallelism_grows_with_batch():
    p_small = parallelism(*measure_ours(4))
    p_big = parallelism(*measure_ours(300))
    assert p_big > 1.5 * p_small


def test_e9_sequential_pinned_at_one():
    w, d = measure_sw()
    (pt,) = project(w, d, [1024])
    assert pt.speedup_upper == 1.0


def test_e9_wallclock(benchmark):
    benchmark.pedantic(lambda: measure_ours(16), rounds=1, iterations=1)


if __name__ == "__main__":
    print(run_experiment().render())
