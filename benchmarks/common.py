"""Shared machinery for the experiment benchmarks.

Every ``bench_e*.py`` module exposes ``run_experiment() -> Experiment``;
``run_all.py`` collects them into EXPERIMENTS.md.  The pytest entry points
in each module assert the *shape* claims (who wins, what stays flat, what
stays inside a band) so a regression in any reproduced result fails CI,
and additionally register a pytest-benchmark kernel for wall-clock
tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.config import Constants
from repro.instrument import BatchTimer, CostModel, Series

# Laptop-scale constants used across all experiments (DESIGN.md §2 item 5).
CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)
EPS = 0.35


@dataclass
class Experiment:
    """One reproduced table/figure."""

    exp_id: str
    title: str
    claim: str  # the paper statement being reproduced
    table: str  # rendered fixed-width table
    conclusion: str  # one-paragraph reading of the numbers

    def render(self) -> str:
        return (
            f"### {self.exp_id} — {self.title}\n\n"
            f"**Claim (paper).** {self.claim}\n\n"
            f"```\n{self.table}\n```\n\n"
            f"**Measured.** {self.conclusion}\n"
        )


def drive(structure, ops, cm: CostModel) -> Series:
    """Apply a stream, recording one BatchRecord per batch."""
    timer = BatchTimer(cm)
    for op in ops:
        with timer.batch(op.kind, op.size):
            if op.kind == "insert":
                structure.insert_batch(op.edges)
            else:
                structure.delete_batch(op.edges)
    return timer.series


def spike_ratio(series: Series) -> float:
    """max / median per-batch work-per-edge — the burstiness measure.

    Worst-case structures keep this small; amortized ones let it blow up.
    """
    med = series.percentile_work_per_edge(50)
    return series.max_work_per_edge() / med if med > 0 else 0.0
