"""Shared machinery for the experiment benchmarks.

Every ``bench_e*.py`` module exposes ``run_experiment() -> Experiment``;
``run_all.py`` collects them into EXPERIMENTS.md.  The pytest entry points
in each module assert the *shape* claims (who wins, what stays flat, what
stays inside a band) so a regression in any reproduced result fails CI,
and additionally register a pytest-benchmark kernel for wall-clock
tracking.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.config import Constants
from repro.instrument import BatchTimer, CostModel, Series
from repro.instrument import trace
from repro.instrument.export import bench_payload, write_bench_json
from repro.instrument.telemetry import SpanNode, Tracer

# Laptop-scale constants used across all experiments (DESIGN.md §2 item 5).
CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)
EPS = 0.35

#: where write_bench() drops BENCH_<name>.json (repo root by default;
#: override with REPRO_BENCH_DIR, e.g. in CI).
HERE = pathlib.Path(__file__).resolve().parent


@dataclass
class Experiment:
    """One reproduced table/figure."""

    exp_id: str
    title: str
    claim: str  # the paper statement being reproduced
    table: str  # rendered fixed-width table
    conclusion: str  # one-paragraph reading of the numbers

    def render(self) -> str:
        return (
            f"### {self.exp_id} — {self.title}\n\n"
            f"**Claim (paper).** {self.claim}\n\n"
            f"```\n{self.table}\n```\n\n"
            f"**Measured.** {self.conclusion}\n"
        )


def drive(structure, ops, cm: CostModel) -> Series:
    """Apply a stream, recording one BatchRecord per batch."""
    timer = BatchTimer(cm)
    for op in ops:
        with timer.batch(op.kind, op.size):
            if op.kind == "insert":
                structure.insert_batch(op.edges)
            else:
                structure.delete_batch(op.edges)
    return timer.series


def drive_traced(structure, ops, cm: CostModel) -> tuple[Series, SpanNode]:
    """Like :func:`drive`, but with a phase-scoped tracer armed.

    Returns ``(series, root)`` where ``root`` is the aggregated phase
    tree (its work equals the cost model's total — telemetry only reads
    the model, it never charges it).
    """
    timer = BatchTimer(cm)
    tracer = Tracer(cm)
    with trace.tracing(tracer):
        for i, op in enumerate(ops):
            with trace.span("batch", detail={"index": i, "kind": op.kind}):
                with timer.batch(op.kind, op.size):
                    if op.kind == "insert":
                        structure.insert_batch(op.edges)
                    else:
                        structure.delete_batch(op.edges)
    return timer.series, tracer.root


def bench_dir() -> pathlib.Path:
    """Output directory for BENCH files (REPRO_BENCH_DIR or repo root)."""
    return pathlib.Path(os.environ.get("REPRO_BENCH_DIR", HERE.parent))


def write_bench(
    name: str,
    series: Series,
    tree: Optional[SpanNode] = None,
    extra: Optional[dict[str, Any]] = None,
) -> pathlib.Path:
    """Write the machine-readable ``BENCH_<name>.json`` perf summary."""
    return write_bench_json(bench_dir(), bench_payload(name, series, tree=tree, extra=extra))


def spike_ratio(series: Series) -> float:
    """max / median per-batch work-per-edge — the burstiness measure.

    Worst-case structures keep this small; amortized ones let it blow up.
    """
    med = series.percentile_work_per_edge(50)
    return series.max_work_per_edge() / med if med > 0 else 0.0
