"""Pytest configuration for the benchmark suite.

No __init__.py here on purpose: rootdir insertion puts this directory on
sys.path so the bench modules can `from common import ...` both under
pytest and when executed directly.
"""
