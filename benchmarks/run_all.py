"""Regenerate EXPERIMENTS.md from every bench module's run_experiment().

Usage:  python benchmarks/run_all.py [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import importlib.util
import pathlib
import sys

from repro.instrument import wallclock

HERE = pathlib.Path(__file__).resolve().parent

HEADER = """# EXPERIMENTS — paper vs measured

Reproduction of the quantitative claims of Ghaffari & Koo, *Parallel
Batch-Dynamic Coreness Decomposition with Worst-Case Guarantees* (SPAA
2025).  The paper is a theory paper with no empirical section, so the
"tables and figures" reproduced here are its theorem/lemma claims; see
DESIGN.md §4 for the experiment index and §2 for the substitutions
(simulated CRCW PRAM with work/depth accounting, laptop-scale theory
constants, synthetic traces).

Absolute numbers are model work units, not seconds, and constants are
scaled ~100x below the w.h.p. regime; the *shapes* — who wins, what stays
flat, what stays inside which band — are the reproduction targets.  Each
table regenerates with `python benchmarks/bench_<id>_*.py` and is guarded
by pytest assertions in the same file (`pytest benchmarks/`).

Honest mismatches are reported inline (see E13: the H^6-vs-H^5 insert/
delete gap is a worst-case statement that random workloads do not
saturate).

---
"""


def load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    sys.path.insert(0, str(HERE))
    try:
        spec.loader.exec_module(mod)
    finally:
        sys.path.pop(0)
    return mod


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=str(HERE.parent / "EXPERIMENTS.md"))
    parser.add_argument("--only", default=None, help="comma-separated ids, e.g. e1,e5")
    args = parser.parse_args()

    benches = sorted(
        HERE.glob("bench_e*.py"),
        key=lambda p: int("".join(ch for ch in p.stem.split("_")[1] if ch.isdigit())),
    )
    if args.only:
        wanted = {w.strip().lower() for w in args.only.split(",")}
        benches = [b for b in benches if b.stem.split("_")[1].lower() in wanted]

    sections = []
    summary_rows = []
    for path in benches:
        t0 = wallclock.monotonic()
        mod = load(path)
        exp = mod.run_experiment()
        elapsed = wallclock.monotonic() - t0
        print(f"{exp.exp_id}: {exp.title}  ({elapsed:.1f}s)")
        sections.append(exp.render())
        summary_rows.append(f"| {exp.exp_id} | {exp.title} |")

    summary = (
        "## Index\n\n| id | reproduced claim |\n|---|---|\n"
        + "\n".join(summary_rows)
        + "\n\n---\n"
    )
    out = pathlib.Path(args.out)
    out.write_text("\n".join([HEADER, summary] + sections))
    print(f"\nwrote {out} ({len(benches)} experiments)")


if __name__ == "__main__":
    main()
