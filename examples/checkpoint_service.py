"""Scenario: a long-running orientation service with checkpoint/restore.

A dynamic-graph service that maintains a low out-degree orientation must
survive restarts without replaying weeks of updates.  This example runs a
churn workload, checkpoints the BALANCED(H) structure to JSON mid-stream,
"crashes", restores from the checkpoint, replays only the tail of the
trace, and proves the recovered structure is byte-for-byte equivalent to
one that never crashed — then audits both with the deep verifier.

Run:  python examples/checkpoint_service.py
"""

import tempfile
import pathlib

from repro.core import BalancedOrientation, audit_orientation
from repro.core.snapshot import from_json, to_json
from repro.core.stats import orientation_stats
from repro.graphs import DynamicGraph, streams


def apply(st, graph, op):
    if op.kind == "insert":
        st.insert_batch(op.edges)
        graph.insert_batch(op.edges)
    else:
        st.delete_batch(op.edges)
        graph.delete_batch(op.edges)


def main() -> None:
    H = 5
    ops = streams.churn(50, steps=60, batch_size=10, seed=23)
    half = len(ops) // 2

    # --- the service runs... -------------------------------------------------
    service = BalancedOrientation(H=H)
    graph = DynamicGraph(0)
    for op in ops[:half]:
        apply(service, graph, op)

    checkpoint = to_json(service)
    ckpt_path = pathlib.Path(tempfile.gettempdir()) / "balanced_checkpoint.json"
    ckpt_path.write_text(checkpoint)
    print(f"checkpoint after {half} batches: {len(checkpoint)} bytes -> {ckpt_path}")
    print(orientation_stats(service).render())

    # --- ...crashes, and a fresh process restores ------------------------------
    recovered = from_json(ckpt_path.read_text())
    print("\nrestored from checkpoint; invariants verified on load")

    # --- both worlds replay the tail ------------------------------------------
    graph2 = graph.copy()
    for op in ops[half:]:
        apply(service, graph, op)      # the world without a crash
        recovered_graph = graph2       # alias for clarity
        if op.kind == "insert":
            recovered.insert_batch(op.edges)
            recovered_graph.insert_batch(op.edges)
        else:
            recovered.delete_batch(op.edges)
            recovered_graph.delete_batch(op.edges)

    same_edges = sorted(service.arcs()) == sorted(recovered.arcs())
    print(f"\nafter replaying the tail: identical arc sets: {same_edges}")

    for name, st, g in (("uninterrupted", service, graph), ("recovered", recovered, graph2)):
        report = audit_orientation(st, g)
        print(f"{name:>14}: {report.render()}")

    print("\n" + orientation_stats(recovered).render())


if __name__ == "__main__":
    main()
