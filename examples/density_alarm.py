"""Scenario: dense-subgraph alarms on a transaction graph.

Sudden dense subgraphs in interaction/transaction graphs are a classic
fraud / spam signal (dense blocks of colluding accounts).  This example
ramps up a hidden dense block inside background noise and uses the
batch-dynamic density estimator (Theorem 1.2) to raise an alarm the
moment rho(G) crosses a threshold — with a worst-case per-batch cost, so
the alarm latency is predictable.

Run:  python examples/density_alarm.py
"""

from repro.baselines import exact_density
from repro.config import Constants
from repro.core import DensityEstimator
from repro.graphs import DynamicGraph, generators, streams
from repro.instrument import render_table

CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)
THRESHOLD = 3.0


def main() -> None:
    n = 50
    de = DensityEstimator(n, eps=0.35, constants=CONSTANTS, seed=4)
    mirror = DynamicGraph(n)

    # background noise first (kept out of the block interior so the ramp
    # below never collides with an existing edge)
    _, noise = generators.planted_dense(n, block=12, p_in=0.0, out_edges=60, seed=5)
    de.insert_batch(noise)
    mirror.insert_batch(noise)

    # then a fraud ring densifies block 0..11 step by step
    ramp = streams.density_ramp(n, block=12, levels=6, per_level=11, seed=6)
    rows = []
    alarmed_at = None
    for step, op in enumerate(ramp):
        de.insert_batch(op.edges)
        mirror.insert_batch(op.edges)
        est = de.density_estimate()
        rho = exact_density(mirror)
        alarm = est > THRESHOLD
        if alarm and alarmed_at is None:
            alarmed_at = step
        rows.append((step, mirror.m, f"{rho:.2f}", f"{est:.1f}", "ALARM" if alarm else ""))

    print(render_table(["step", "edges", "exact rho", "rho_alg", "alarm"], rows))
    if alarmed_at is None:
        print("\nno alarm raised — increase ramp length")
    else:
        print(f"\nalarm raised at ramp step {alarmed_at} "
              f"(threshold {THRESHOLD}, estimate within (1 +/- eps) of exact)")
    print(f"low out-degree orientation: max d+ = {de.max_outdegree()} "
          f"<= (2+eps) rho — usable for downstream matching/coloring")


if __name__ == "__main__":
    main()
