"""Scenario: dynamic frequency assignment + link scheduling in a mesh.

A wireless mesh changes as nodes move: links appear and disappear in
batches.  Two classic subproblems ride on a low out-degree orientation:

* *frequency assignment* — a proper vertex coloring (Corollary 1.4) so
  that neighbouring nodes never share a frequency;
* *link scheduling* — a maximal matching (Corollary 1.3) picks a set of
  non-interfering links to activate each round.

Both are maintained batch-dynamically here over a churning random
geometric-ish topology, with validity re-verified after every batch.

Run:  python examples/frequency_assignment.py
"""

from repro.apps import ExplicitColoring, MaximalMatching
from repro.config import Constants
from repro.graphs import streams
from repro.instrument import render_table

CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def main() -> None:
    n = 36
    rho_max = 5
    coloring = ExplicitColoring(rho_max, n, eps=0.4, constants=CONSTANTS, seed=8)
    schedule = MaximalMatching(rho_max, n, eps=0.4, constants=CONSTANTS, seed=9)

    live: set = set()
    rows = []
    for step, op in enumerate(streams.churn(n, steps=24, batch_size=6, seed=10)):
        if op.kind == "insert":
            coloring.insert_batch(op.edges)
            schedule.insert_batch(op.edges)
            live |= set(op.edges)
        else:
            coloring.delete_batch(op.edges)
            schedule.delete_batch(op.edges)
            live -= set(op.edges)

        coloring.check_proper(live)   # raises if any link shares a frequency
        schedule.check_matching()     # raises if the schedule is not maximal

        if step % 4 == 0:
            used = {coloring.color_of(v) for v in range(n)}
            rows.append(
                (step, op.kind, len(live), len(used), len(schedule.matching()))
            )

    print(render_table(
        ["step", "op", "links", "frequencies in use", "links scheduled"], rows
    ))
    print(f"\npalette size C = {coloring.C} (bound: O(rho_max log n)); "
          f"fallbacks: {coloring.fallbacks}")
    print("every batch re-verified: coloring proper, matching maximal")


if __name__ == "__main__":
    main()
