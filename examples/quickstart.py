"""Quickstart: batch-dynamic coreness and density in ten minutes.

Builds a random graph, feeds it to the library in batches, and compares
the maintained (4+eps)-approximate coreness and (1+eps)-approximate
density against exact offline recomputation.

Run:  python examples/quickstart.py
"""

from repro.baselines import core_numbers, exact_density
from repro.config import Constants
from repro.core import CorenessDecomposition, DensityEstimator
from repro.graphs import DynamicGraph, generators
from repro.instrument import render_table

# Laptop-scale theory constants (see DESIGN.md §2 item 5).
CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def main() -> None:
    n = 48
    _, edges = generators.planted_dense(n, block=12, p_in=0.9, out_edges=60, seed=7)
    print(f"graph: {n} vertices, {len(edges)} edges (dense block of 12 planted)\n")

    coreness = CorenessDecomposition(n, eps=0.35, constants=CONSTANTS, seed=1)
    density = DensityEstimator(n, eps=0.35, constants=CONSTANTS, seed=2)
    mirror = DynamicGraph(n)

    batch_size = 40
    for i in range(0, len(edges), batch_size):
        batch = edges[i : i + batch_size]
        coreness.insert_batch(batch)   # poly(log) depth per batch
        density.insert_batch(batch)
        mirror.insert_batch(batch)
        print(
            f"after batch {i // batch_size + 1}: "
            f"rho_alg = {density.density_estimate():.1f}, "
            f"max core_alg = {coreness.max_estimate():.1f}"
        )

    # --- compare against exact offline algorithms -------------------------
    exact_core = core_numbers(mirror)
    rho = exact_density(mirror)
    print(f"\nexact: rho = {rho:.2f}, max coreness = {max(exact_core.values())}")
    print(f"density estimate  : {density.density_estimate():.2f}  (paper: within 1 +/- eps)")
    print(f"arboricity est.   : {density.arboricity_estimate():.2f}")
    print(f"orientation max d+: {density.max_outdegree()}  (paper: <= (2+eps) rho)")

    rows = []
    for v in sorted(mirror.touched_vertices())[:12]:
        rows.append((v, exact_core.get(v, 0), f"{coreness.estimate(v):.1f}"))
    print("\nper-vertex coreness (first 12 touched vertices):")
    print(render_table(["vertex", "exact core", "core_alg"], rows))

    # --- now delete the dense block and watch the estimates drop -----------
    block_edges = [e for e in edges if e[0] < 12 and e[1] < 12]
    coreness.delete_batch(block_edges)
    density.delete_batch(block_edges)
    mirror.delete_batch(block_edges)
    print(
        f"\nafter deleting the planted block: "
        f"rho_alg = {density.density_estimate():.1f} "
        f"(exact {exact_density(mirror):.2f}), "
        f"max core_alg = {coreness.max_estimate():.1f} "
        f"(exact {max(core_numbers(mirror).values())})"
    )


if __name__ == "__main__":
    main()
