"""Scenario: tracking influential users in a streaming social network.

k-core decomposition is the standard tool for finding influential
spreaders in social networks [KGH+10]: high-coreness users sit in densely
interconnected regions.  This example simulates an interaction stream
(preferential attachment + a sliding expiry window, as in a "last-N-hours"
interaction graph) and maintains the influencer set *dynamically* —
exactly the workload the paper's worst-case guarantee targets, since a
monitoring dashboard cannot tolerate occasional multi-second batches.

Run:  python examples/social_influencers.py
"""

from repro.baselines import core_numbers
from repro.config import Constants
from repro.core import CorenessDecomposition
from repro.graphs import DynamicGraph, generators, streams
from repro.instrument import BatchTimer, CostModel, render_table

CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def influencers(estimates: dict[int, float], top: int = 5) -> list[int]:
    return [v for v, _ in sorted(estimates.items(), key=lambda kv: (-kv[1], kv[0]))[:top]]


def main() -> None:
    n = 60
    _, edges = generators.barabasi_albert(n, 3, seed=11)
    window_ops = streams.sliding_window(edges, window=4, batch_size=20)
    print(f"simulated interaction stream: {len(edges)} interactions, "
          f"window of 4 batches x 20 edges\n")

    cm = CostModel()
    cd = CorenessDecomposition(n, eps=0.4, cm=cm, constants=CONSTANTS, seed=3)
    mirror = DynamicGraph(n)
    timer = BatchTimer(cm)

    rows = []
    for step, op in enumerate(window_ops):
        with timer.batch(op.kind, op.size):
            if op.kind == "insert":
                cd.insert_batch(op.edges)
                mirror.insert_batch(op.edges)
            else:
                cd.delete_batch(op.edges)
                mirror.delete_batch(op.edges)
        if step % 3 == 0:
            ests = cd.estimates(sorted(mirror.touched_vertices()))
            exact = core_numbers(mirror)
            top = influencers(ests)
            exact_top = influencers({v: float(c) for v, c in exact.items()})
            overlap = len(set(top) & set(exact_top))
            rows.append((step, op.kind, mirror.m, " ".join(map(str, top)), f"{overlap}/5"))

    print(render_table(
        ["step", "op", "live edges", "top-5 by core_alg", "overlap w/ exact"], rows
    ))

    series = timer.series
    print(
        f"\nper-batch work: mean {series.mean_work_per_edge():.0f}/edge, "
        f"p99 {series.percentile_work_per_edge(99):.0f}/edge, "
        f"max {series.max_work_per_edge():.0f}/edge"
    )
    print(f"max batch depth: {series.max_depth()} (polylog — the dashboard never stalls)")


if __name__ == "__main__":
    main()
