"""Legacy shim: lets ``pip install -e .`` work offline without the wheel
package (the environment has setuptools but no wheel/bdist_wheel)."""

from setuptools import setup

setup()
