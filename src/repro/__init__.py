"""repro — Parallel Batch-Dynamic Coreness Decomposition (SPAA 2025).

A from-scratch Python reproduction of Ghaffari & Koo's worst-case parallel
batch-dynamic algorithms for coreness, density, arboricity, low out-degree
orientation, maximal matching and coloring.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the reproduced evaluation.
"""

from .config import Constants, DEFAULT_CONSTANTS
from .errors import (
    BatchError,
    CapacityError,
    ConvergenceError,
    InvariantViolation,
    ParameterError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "BatchError",
    "CapacityError",
    "Constants",
    "ConvergenceError",
    "DEFAULT_CONSTANTS",
    "InvariantViolation",
    "ParameterError",
    "ReproError",
    "__version__",
]
