"""reprolint: AST-based invariant linter for this repository.

Statically enforces the three disciplines the reproduction depends on —
cost-model accounting in the structure layer (DESIGN.md §6), seed-driven
determinism, and simulated-PRAM race safety in ``parallel()`` regions —
plus API hygiene on the exported surface.  See docs/STATIC_ANALYSIS.md
for the rule catalogue and suppression syntax.
"""

from __future__ import annotations

from .checkers import ALL_CHECKERS
from .engine import all_rules, lint_paths, lint_source
from .findings import Finding, LintReport
from .walker import Checker, ModuleContext

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleContext",
    "all_rules",
    "lint_paths",
    "lint_source",
]
