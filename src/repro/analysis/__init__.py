"""reprolint: AST-based invariant linter for this repository.

Statically enforces the disciplines the reproduction depends on — cost
model accounting in the structure layer (DESIGN.md §6), seed-driven
determinism, and simulated-PRAM race safety in ``parallel()`` regions —
plus API hygiene on the exported surface.  On top of the per-file rules,
a whole-program phase (symbol table, call graph, per-function CFGs)
checks the interprocedural families: all-paths charge reachability
(REP-CF), ``guarded()`` exception safety (REP-X), determinism taint
(REP-DT), and cross-process state flow (REP-PX).  See
docs/STATIC_ANALYSIS.md for the rule catalogue, suppression syntax, and
the baseline/SARIF/autofix workflow.
"""

from __future__ import annotations

from .baseline import Baseline
from .checkers import ALL_CHECKERS, ALL_PROJECT_CHECKERS
from .engine import all_rules, lint_paths, lint_source
from .findings import Finding, LintReport
from .project import ProjectChecker, ProjectContext, summarize_module
from .sarif import render_sarif
from .walker import Checker, ModuleContext

__all__ = [
    "ALL_CHECKERS",
    "ALL_PROJECT_CHECKERS",
    "Baseline",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ProjectChecker",
    "ProjectContext",
    "all_rules",
    "lint_paths",
    "lint_source",
    "render_sarif",
    "summarize_module",
]
