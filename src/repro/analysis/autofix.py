"""Mechanical autofixes for ``repro lint --fix``.

A :class:`~repro.analysis.findings.Finding` may carry a ``fix`` span
``(start_line, start_col, end_line, end_col)`` — AST coordinates of the
expression to wrap in ``sorted(...)`` (the REP-DT001 remedy: canonical
iteration order).  Applying a fix is pure text surgery:

* spans are applied per file in reverse source order so earlier spans'
  coordinates stay valid,
* overlapping spans keep only the first (outermost after sorting) —
  the next run fixes the survivor,
* a span already wrapped in ``sorted(`` is skipped, which is what makes
  ``--fix`` idempotent: the second run rewrites nothing, and the taint
  analysis treats ``sorted`` as a sanitizer so the finding is gone too.

Fixers return the number of edits; the CLI re-lints after fixing so the
report reflects the post-fix tree.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .findings import Finding


def _span_to_offsets(
    line_starts: Sequence[int], span: tuple
) -> tuple[int, int]:
    start_line, start_col, end_line, end_col = span
    return line_starts[start_line - 1] + start_col, line_starts[end_line - 1] + end_col


def _line_starts(source: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(source):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def apply_fixes_to_source(source: str, spans: Iterable[tuple]) -> tuple[str, int]:
    """Wrap each span in ``sorted(...)``; returns (new source, edit count)."""
    starts = _line_starts(source)
    resolved: list[tuple[int, int]] = []
    for span in spans:
        try:
            begin, end = _span_to_offsets(starts, span)
        except (IndexError, TypeError):
            continue
        if not (0 <= begin < end <= len(source)):
            continue
        resolved.append((begin, end))
    resolved = sorted(set(resolved))
    chosen: list[tuple[int, int]] = []
    last_end = -1
    for begin, end in resolved:
        if begin < last_end:
            continue  # overlapping span: leave for the next run
        chosen.append((begin, end))
        last_end = end
    edits = 0
    for begin, end in reversed(chosen):
        text = source[begin:end]
        if text.startswith("sorted(") and text.endswith(")"):
            continue  # already canonicalized — idempotence
        source = source[:begin] + "sorted(" + text + ")" + source[end:]
        edits += 1
    return source, edits


def apply_fixes(findings: Iterable[Finding]) -> dict[str, int]:
    """Apply every carried fix, grouped per file.

    Returns ``{path: edit count}`` for files actually rewritten.
    """
    by_file: dict[str, list[tuple]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_file.setdefault(finding.file, []).append(finding.fix)
    edited: dict[str, int] = {}
    for path, spans in sorted(by_file.items()):
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            continue
        new_source, edits = apply_fixes_to_source(source, spans)
        if edits:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(new_source)
            edited[path] = edits
    return edited


__all__ = ["apply_fixes", "apply_fixes_to_source"]
