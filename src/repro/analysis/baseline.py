"""Committed baseline: land new rules without a big-bang fixup.

A baseline file records findings that are *known and accepted* — either
legacy debt to be burned down, or intentional violations with a recorded
justification (e.g. the per-worker tracer global in ``pram/executor``'s
worker path, which is by design: its results are folded into the
``WorkerDelta``).  ``lint_paths`` subtracts baselined findings from the
report, so ``repro lint src`` exits 0 on a tree whose only findings are
baselined, while every *new* violation still fails CI.

Matching is on ``(file, rule, message)`` with paths normalized to
``/``-separated relpaths — deliberately **not** on line numbers, so
unrelated edits above a baselined site don't un-baseline it.  Each entry
may carry a ``justification`` string; ``--update-baseline`` rewrites the
file from the current findings while preserving justifications of
entries that survive.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

from .findings import Finding

#: the default committed baseline, resolved relative to the CWD.
DEFAULT_BASELINE = ".reprolint-baseline.json"

_FORMAT_VERSION = 1


def _norm(path: str) -> str:
    """Stable, OS-independent relpath for baseline matching."""
    if os.path.isabs(path):
        try:
            path = os.path.relpath(path)
        except ValueError:
            pass  # different drive on Windows: keep absolute
    return os.path.normpath(path).replace(os.sep, "/")


class Baseline:
    """In-memory view of one baseline file."""

    def __init__(self, entries: Optional[list[dict]] = None, path: str = ""):
        self.path = path
        #: (file, rule, message) -> justification (may be "")
        self.entries: dict[tuple[str, str, str], str] = {}
        for entry in entries or []:
            key = (
                _norm(str(entry.get("file", ""))),
                str(entry.get("rule", "")),
                str(entry.get("message", "")),
            )
            self.entries[key] = str(entry.get("justification", ""))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls(path=path)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable baseline {path!r}: {exc}") from exc
        return cls(payload.get("entries", []), path=path)

    def _key(self, finding: Finding) -> tuple[str, str, str]:
        return (_norm(finding.file), finding.rule, finding.message)

    def matches(self, finding: Finding) -> bool:
        return self._key(finding) in self.entries

    def filter(self, findings: Iterable[Finding]) -> tuple[list[Finding], int]:
        """(surviving findings, how many the baseline absorbed)."""
        kept: list[Finding] = []
        absorbed = 0
        for finding in findings:
            if self.matches(finding):
                absorbed += 1
            else:
                kept.append(finding)
        return kept, absorbed

    def write(self, path: str, findings: Iterable[Finding]) -> int:
        """Rewrite the baseline from current findings.

        Justifications of entries that still occur are preserved; stale
        entries drop out.  Returns the number of entries written.
        """
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for finding in sorted(findings):
            key = self._key(finding)
            if key in seen:
                continue
            seen.add(key)
            entry = {
                "file": key[0],
                "rule": key[1],
                "message": key[2],
                "justification": self.entries.get(key, ""),
            }
            entries.append(entry)
        payload = {
            "format": _FORMAT_VERSION,
            "comment": (
                "Accepted reprolint findings. Matching is on (file, rule, "
                "message), not line numbers. Regenerate with: repro lint "
                "src --update-baseline. Keep 'justification' non-empty for "
                "intentional, by-design sites."
            ),
            "entries": entries,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return len(entries)


__all__ = ["Baseline", "DEFAULT_BASELINE"]
