"""Content-hash-keyed incremental cache for whole-program summaries.

Re-summarizing every module on every lint is the expensive half of the
whole-program phase (full AST walks per function).  The summaries
themselves are deliberately picklable plain data
(:class:`~repro.analysis.project.ModuleSummary`), so they cache cleanly:
the key is ``sha256(engine-version || source bytes)``, which makes the
cache immune to both file edits and checker upgrades —
:data:`~repro.analysis.project.SUMMARY_VERSION` must be bumped whenever
summary extraction changes meaning.

Entries are one pickle file per module under the cache directory
(default ``.reprolint-cache/``, overridable via ``--cache-dir``).  Any
load problem — corrupt pickle, version skew, changed dataclass shape —
is treated as a miss, never an error; the cache is an accelerator, not a
source of truth.  ``prune`` drops entries not touched by the current run
so the directory tracks the live tree (and stays small enough to be a
CI cache artifact).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Optional

from .project import SUMMARY_VERSION

_PICKLE_PROTOCOL = 4


def source_key(source: str) -> str:
    """Cache key of one module's source under the current engine version."""
    digest = hashlib.sha256()
    digest.update(f"reprolint-summary-v{SUMMARY_VERSION}\0".encode())
    digest.update(source.encode("utf-8", errors="replace"))
    return digest.hexdigest()


class SummaryCache:
    """Pickle-per-module cache keyed by content hash."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self._touched: set[str] = set()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".pickle")

    def get(self, source: str) -> Optional[Any]:
        key = source_key(source)
        self._touched.add(key)
        try:
            with open(self._entry_path(key), "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, source: str, value: Any) -> None:
        key = source_key(source)
        self._touched.add(key)
        path = self._entry_path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            pass  # read-only checkout / full disk: run uncached

    def prune(self) -> int:
        """Remove entries this run never touched; returns how many."""
        removed = 0
        if not os.path.isdir(self.directory):
            return 0
        for dirpath, _dirnames, filenames in os.walk(self.directory):
            for filename in filenames:
                if not filename.endswith(".pickle"):
                    continue
                if filename[: -len(".pickle")] in self._touched:
                    continue
                try:
                    os.unlink(os.path.join(dirpath, filename))
                    removed += 1
                except OSError:
                    pass
        return removed


__all__ = ["SummaryCache", "source_key"]
