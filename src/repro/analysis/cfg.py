"""Per-function control-flow graphs for the interprocedural checkers.

A :class:`ControlFlowGraph` lowers one function body into basic blocks of
*simple* statements (control expressions — ``if``/``while`` tests, ``for``
iterables, ``with`` context managers, ``return`` values — are kept as
entries of the block that evaluates them, so facts inside them count).

Two distinguished sinks keep path queries honest:

* ``exit`` — normal completion (fall-through or ``return``).  The REP-CF
  charge-reachability rule quantifies over entry→exit paths only: a path
  that *raises* is allowed to skip the charge (validation guards bail out
  before mutating; ``guarded()`` rolls the mutation back).
* ``raise_exit`` — paths that leave the function exceptionally.

Approximations, chosen to over-approximate the path set (more paths can
only produce *more* findings, never hide one):

* every block lowered inside a ``try`` body gets an edge to each handler
  (an exception can occur at any point);
* a ``finally`` suite is lowered once and shared — ``return``/``break``/
  ``continue`` are routed *through* it, so its exit block fans out to
  every continuation that can follow it;
* loop heads always get an exit edge, even for ``while True``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class BasicBlock:
    """A straight-line run of simple statements."""

    index: int
    stmts: list[ast.AST] = field(default_factory=list)
    succs: set[int] = field(default_factory=set)

    def lines(self) -> list[int]:
        """Source lines of the block's statements (for anchoring findings)."""
        return [getattr(s, "lineno", 0) for s in self.stmts]


class ControlFlowGraph:
    """CFG of one function: ``blocks``, ``entry``, ``exit``, ``raise_exit``."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry = self._new().index
        self.exit = self._new().index
        self.raise_exit = self._new().index

    # -- construction --------------------------------------------------------

    def _new(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.add(dst)

    # -- queries -------------------------------------------------------------

    def reachable(
        self, start: int, *, blocked: Optional[set[int]] = None, forward: bool = True
    ) -> set[int]:
        """Blocks reachable from ``start`` without passing *through* a
        blocked block (``start`` itself is excluded when blocked)."""
        blocked = blocked or set()
        if start in blocked:
            return set()
        preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
        for b in self.blocks:
            for s in b.succs:
                preds[s].append(b.index)
        seen = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            nbrs: Iterable[int] = (
                self.blocks[cur].succs if forward else preds[cur]
            )
            for nxt in nbrs:
                if nxt in seen or nxt in blocked:
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return seen


def build_cfg(fn: ast.AST) -> ControlFlowGraph:
    """Lower ``fn`` (a FunctionDef/AsyncFunctionDef) into a CFG."""
    cfg = ControlFlowGraph()
    builder = _Builder(cfg)
    last = builder.lower_body(fn.body, cfg.entry)
    if last is not None:
        cfg.add_edge(last, cfg.exit)
    return cfg


class _Builder:
    """Statement-list lowering with loop and ``finally`` context stacks."""

    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        #: (continue_target, break_target) per enclosing loop, innermost last.
        self.loops: list[tuple[int, int]] = []
        #: (finally_entry, finally_exit) per enclosing try-finally,
        #: innermost last; unwinding edges are routed through these.
        self.finallies: list[tuple[int, int]] = []
        #: handler entry blocks of the innermost enclosing ``try`` body.
        self.handlers: list[list[int]] = []
        #: finally-stack depth at each loop entry (for break/continue routing).
        self._loop_finally_depths: list[int] = []

    # -- plumbing ------------------------------------------------------------

    def _fresh(self) -> int:
        return self.cfg._new().index

    def _route_unwind(self, src: int, target: int, depth: int = 0) -> None:
        """Edge ``src`` → ``target`` through the finallies above ``depth``."""
        chain = self.finallies[depth:]
        cur = src
        for fin_entry, fin_exit in reversed(chain):
            self.cfg.add_edge(cur, fin_entry)
            cur = fin_exit
        self.cfg.add_edge(cur, target)

    # -- lowering ------------------------------------------------------------

    def lower_body(self, body: list[ast.stmt], current: int) -> Optional[int]:
        """Lower a statement list; return the live fall-through block
        (``None`` when control never falls off the end)."""
        cur: Optional[int] = current
        for stmt in body:
            if cur is None:
                # unreachable code after return/raise/break: keep lowering
                # into a fresh predecessor-less block so its facts exist.
                cur = self._fresh()
            cur = self._lower_stmt(stmt, cur)
        return cur

    def _lower_stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                cfg.blocks[cur].stmts.append(stmt)
            self._route_unwind(cur, cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cfg.blocks[cur].stmts.append(stmt)
            if self.handlers and self.handlers[-1]:
                for handler_entry in self.handlers[-1]:
                    cfg.add_edge(cur, handler_entry)
            else:
                self._route_unwind(cur, cfg.raise_exit)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                self._route_unwind(cur, self.loops[-1][1], self._loop_depth())
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self._route_unwind(cur, self.loops[-1][0], self._loop_depth())
            return None
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._lower_loop(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                cfg.blocks[cur].stmts.append(item.context_expr)
            return self.lower_body(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._lower_match(stmt, cur)
        # simple statement (incl. nested def/class, treated as opaque)
        cfg.blocks[cur].stmts.append(stmt)
        return cur

    def _loop_depth(self) -> int:
        """Index into ``self.finallies`` where the innermost loop began.

        ``break``/``continue`` must run finallies opened *inside* the loop,
        not ones enclosing it; loops record the finally depth at entry.
        """
        return self._loop_finally_depths[-1] if self._loop_finally_depths else 0

    def _lower_if(self, stmt: ast.If, cur: int) -> Optional[int]:
        cfg = self.cfg
        cfg.blocks[cur].stmts.append(stmt.test)
        then_entry = self._fresh()
        cfg.add_edge(cur, then_entry)
        then_exit = self.lower_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self._fresh()
            cfg.add_edge(cur, else_entry)
            else_exit = self.lower_body(stmt.orelse, else_entry)
        else:
            else_exit = cur
        if then_exit is None and stmt.orelse and else_exit is None:
            return None
        join = self._fresh()
        if then_exit is not None:
            cfg.add_edge(then_exit, join)
        if else_exit is not None:
            cfg.add_edge(else_exit, join)
        return join

    def _lower_loop(self, stmt, cur: int) -> int:
        cfg = self.cfg
        head = self._fresh()
        cfg.add_edge(cur, head)
        if isinstance(stmt, ast.While):
            cfg.blocks[head].stmts.append(stmt.test)
        else:
            cfg.blocks[head].stmts.append(stmt.iter)
            cfg.blocks[head].stmts.append(_LoopBind(stmt.target))
        after = self._fresh()
        body_entry = self._fresh()
        cfg.add_edge(head, body_entry)
        self.loops.append((head, after))
        self._loop_finally_depths.append(len(self.finallies))
        body_exit = self.lower_body(stmt.body, body_entry)
        if body_exit is not None:
            cfg.add_edge(body_exit, head)
        self.loops.pop()
        self._loop_finally_depths.pop()
        if stmt.orelse:
            # the else suite runs on normal loop exhaustion; break jumps
            # straight to ``after``, bypassing it.
            else_entry = self._fresh()
            cfg.add_edge(head, else_entry)
            else_exit = self.lower_body(stmt.orelse, else_entry)
            if else_exit is not None:
                cfg.add_edge(else_exit, after)
        else:
            cfg.add_edge(head, after)
        return after

    def _lower_try(self, stmt: ast.Try, cur: int) -> Optional[int]:
        cfg = self.cfg
        after = self._fresh()

        fin_entry = fin_exit = None
        if stmt.finalbody:
            fin_entry = self._fresh()
            fin_block_exit = self.lower_body(stmt.finalbody, fin_entry)
            # a finally whose body never completes (always raises) still
            # needs an exit node for routing; it simply has no normal succ.
            fin_exit = fin_block_exit if fin_block_exit is not None else self._fresh()

        handler_entries = [self._fresh() for _ in stmt.handlers]

        if stmt.finalbody:
            self.finallies.append((fin_entry, fin_exit))  # type: ignore[arg-type]
        self.handlers.append(handler_entries)
        body_start = len(cfg.blocks)
        body_entry = self._fresh()
        cfg.add_edge(cur, body_entry)
        body_exit = self.lower_body(stmt.body, body_entry)
        body_end = len(cfg.blocks)
        self.handlers.pop()

        # an exception can occur in any block lowered for the try body
        for idx in range(body_start, body_end):
            for handler_entry in handler_entries:
                cfg.add_edge(idx, handler_entry)
        if not handler_entries and stmt.finalbody:
            # exception with no handler: unwind through finally and leave
            for idx in range(body_start, body_end):
                cfg.add_edge(idx, fin_entry)  # type: ignore[arg-type]
            cfg.add_edge(fin_exit, cfg.raise_exit)  # type: ignore[arg-type]

        if stmt.orelse:
            if body_exit is not None:
                orelse_entry = self._fresh()
                cfg.add_edge(body_exit, orelse_entry)
                body_exit = self.lower_body(stmt.orelse, orelse_entry)

        handler_exits: list[Optional[int]] = []
        for handler, handler_entry in zip(stmt.handlers, handler_entries):
            if handler.type is not None:
                cfg.blocks[handler_entry].stmts.append(handler.type)
            handler_exits.append(self.lower_body(handler.body, handler_entry))

        if stmt.finalbody:
            self.finallies.pop()
            live = [x for x in [body_exit, *handler_exits] if x is not None]
            for block in live:
                cfg.add_edge(block, fin_entry)  # type: ignore[arg-type]
            if live:
                cfg.add_edge(fin_exit, after)  # type: ignore[arg-type]
                return after
            # nothing completes normally; ``after`` is unreachable
            return None
        live = [x for x in [body_exit, *handler_exits] if x is not None]
        for block in live:
            cfg.add_edge(block, after)
        return after if live else None

    def _lower_match(self, stmt: ast.Match, cur: int) -> Optional[int]:
        cfg = self.cfg
        cfg.blocks[cur].stmts.append(stmt.subject)
        join = self._fresh()
        for case in stmt.cases:
            case_entry = self._fresh()
            cfg.add_edge(cur, case_entry)
            if case.guard is not None:
                cfg.blocks[case_entry].stmts.append(case.guard)
            case_exit = self.lower_body(case.body, case_entry)
            if case_exit is not None:
                cfg.add_edge(case_exit, join)
        # no case may match: fall through
        cfg.add_edge(cur, join)
        return join


class _LoopBind(ast.AST):
    """Marker wrapping a ``for`` target so facts collectors see the bind."""

    _fields = ("target",)

    def __init__(self, target: ast.expr) -> None:
        super().__init__()
        self.target = target
        self.lineno = getattr(target, "lineno", 0)


__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]
