"""reprolint checker plugins.

Two suites: per-file checkers (:class:`~repro.analysis.walker.Checker`
subclasses, instantiated per module over the shared AST) in
:data:`ALL_CHECKERS`, and whole-program checkers
(:class:`~repro.analysis.project.ProjectChecker` subclasses, run once
over the :class:`~repro.analysis.project.ProjectContext`) in
:data:`ALL_PROJECT_CHECKERS`.
"""

from __future__ import annotations

from .chargepath import ChargePathChecker
from .cost import CostAccountingChecker
from .crossproc import CrossProcessChecker
from .determinism import DeterminismChecker
from .exceptions import ExceptionSafetyChecker
from .hygiene import ApiHygieneChecker
from .observability import ObservabilityChecker
from .parallelism import ParallelismChecker
from .races import RaceChecker
from .taint import DeterminismTaintChecker

#: the default per-file checker suite, in report order.
ALL_CHECKERS = [
    CostAccountingChecker,
    DeterminismChecker,
    RaceChecker,
    ObservabilityChecker,
    ParallelismChecker,
    ApiHygieneChecker,
]

#: the whole-program (interprocedural) checker suite.
ALL_PROJECT_CHECKERS = [
    ChargePathChecker,
    ExceptionSafetyChecker,
    DeterminismTaintChecker,
    CrossProcessChecker,
]

__all__ = [
    "ALL_CHECKERS",
    "ALL_PROJECT_CHECKERS",
    "ApiHygieneChecker",
    "ChargePathChecker",
    "CostAccountingChecker",
    "CrossProcessChecker",
    "DeterminismChecker",
    "DeterminismTaintChecker",
    "ExceptionSafetyChecker",
    "ObservabilityChecker",
    "ParallelismChecker",
    "RaceChecker",
]
