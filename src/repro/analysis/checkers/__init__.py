"""reprolint checker plugins.

Each checker is an :class:`~repro.analysis.walker.Checker` subclass; the
engine instantiates every entry in :data:`ALL_CHECKERS` per module.
"""

from __future__ import annotations

from .cost import CostAccountingChecker
from .determinism import DeterminismChecker
from .hygiene import ApiHygieneChecker
from .observability import ObservabilityChecker
from .parallelism import ParallelismChecker
from .races import RaceChecker

#: the default checker suite, in report order.
ALL_CHECKERS = [
    CostAccountingChecker,
    DeterminismChecker,
    RaceChecker,
    ObservabilityChecker,
    ParallelismChecker,
    ApiHygieneChecker,
]

__all__ = [
    "ALL_CHECKERS",
    "ApiHygieneChecker",
    "CostAccountingChecker",
    "DeterminismChecker",
    "ObservabilityChecker",
    "ParallelismChecker",
    "RaceChecker",
]
