"""REP-CF: all-paths charge reachability over the interprocedural CFG.

The per-file REP-C001 asks "does this public mutating method charge the
cost model *at all*, possibly through an intra-module helper?".  This
family asks the strictly stronger whole-program question: does it charge
on **every** path from entry to normal return that mutates state?  A
method that charges on the common path but not in an early-out branch
passes REP-C001 yet silently under-counts work — exactly the shape of
accounting bug the differential audit harness only catches at runtime.

A violation is a path ``entry -> ... -> exit`` containing at least one
mutation block and zero charge blocks.  A block charges when it contains
a direct ``cm.*`` charge, forwards the cost model to a callee, or calls
a function whose whole-program ``may_charge`` fixpoint is true.
Exceptional paths (into ``raise``) are exempt: rollback via
``resilience.guard`` refunds their cost.  Only firing on functions whose
``may_charge`` is already true keeps REP-CF001 disjoint from REP-C001.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from ..project import FunctionSummary, ModuleSummary, ProjectChecker


def _charge_blocks(project, fs: FunctionSummary) -> set[int]:
    charging: set[int] = set()
    for idx, block in enumerate(fs.blocks):
        if block.direct_charge:
            charging.add(idx)
            continue
        for call_idx in block.call_idxs:
            callee = project.resolve_call(fs, fs.calls[call_idx])
            if callee is not None and callee.may_charge:
                charging.add(idx)
                break
    return charging


def _reach_avoiding(
    succs_of, start: int, blocked: set[int], n: int
) -> set[int]:
    """Blocks reachable from ``start`` without entering a blocked block."""
    if start in blocked:
        return set()
    seen = {start}
    stack = [start]
    while stack:
        cur = stack.pop()
        for nxt in succs_of(cur):
            if nxt in seen or nxt in blocked or not (0 <= nxt < n):
                continue
            seen.add(nxt)
            stack.append(nxt)
    return seen


class ChargePathChecker(ProjectChecker):
    """Every mutating entry->return path must include a CostModel charge."""

    rules = {
        "REP-CF001": (
            "public mutating batch method has an entry-to-return path that "
            "mutates structure state without charging the CostModel"
        ),
    }

    def run(self) -> Iterable[tuple[ModuleSummary, Finding]]:
        for summary, fs in self.project.all_functions():
            if not summary.in_cost_scope:
                continue
            if not (fs.is_public and fs.cls is not None):
                continue
            if not (fs.may_mutate and fs.may_charge):
                continue  # never-charging methods are REP-C001's business
            if not self.project.class_has_cm(summary.module_name, fs.cls):
                continue
            finding = self._check(summary, fs)
            if finding is not None:
                yield summary, finding

    def _check(self, summary: ModuleSummary, fs: FunctionSummary):
        n = len(fs.blocks)
        if not (0 <= fs.entry < n and 0 <= fs.exit < n):
            return None
        charging = _charge_blocks(self.project, fs)
        preds: list[list[int]] = [[] for _ in range(n)]
        for idx, block in enumerate(fs.blocks):
            for nxt in block.succs:
                if 0 <= nxt < n:
                    preds[nxt].append(idx)
        fwd = _reach_avoiding(
            lambda i: fs.blocks[i].succs, fs.entry, charging, n
        )
        bwd = _reach_avoiding(lambda i: preds[i], fs.exit, charging, n)
        uncharged_path = fwd & bwd
        for idx in sorted(uncharged_path):
            block = fs.blocks[idx]
            lines = list(block.mutation_lines)
            for call_idx in block.call_idxs:
                callee = self.project.resolve_call(fs, fs.calls[call_idx])
                if (
                    callee is not None
                    and callee.may_mutate
                    and not callee.may_charge
                ):
                    lines.append(fs.calls[call_idx].line)
            if not lines:
                continue
            line = min(lines)
            return Finding(
                summary.path,
                line,
                "REP-CF001",
                (
                    f"'{fs.qualname}' mutates state (line {line}) on a path "
                    "that returns without any CostModel charge — every "
                    "entry-to-return path through a mutation must tick/"
                    "charge/pfor (DESIGN.md §6)"
                ),
            )
        return None
