"""Cost-accounting checker (rules REP-C001..REP-C003).

The paper's worst-case work/depth theorems are only measurable because
every mutation in the structure layer threads the
:class:`~repro.instrument.work_depth.CostModel` (DESIGN.md §6).  This
checker enforces that discipline statically in the cost-scoped packages
(``core/``, ``pbst/``, ``hashtable/``):

* **REP-C001** — a public function that (transitively) mutates structure
  state, in a class or signature that carries a cost model, but whose call
  chain never charges it: the mutation path is invisible to the work/depth
  accounting.
* **REP-C002** — a ``cm``/``cost_model`` parameter that is accepted but
  never read, stored, or forwarded: dead accounting plumbing that makes
  callers *believe* the work is counted.
* **REP-C003** — a loop that mutates structure state with no charge inside
  the loop body, in a function that never charges outside the loop either:
  per-element work the model cannot see.  (Batch-granularity charges made
  before/after the loop — the [PP01]/[GMV91] idiom — silence this rule.)

Intra-module delegation is resolved through the call-graph fixpoint in
:class:`~repro.analysis.walker.ModuleAnalysis`, so ``insert_batch`` ->
``_insert_arcs`` -> ``_arc_add`` (which charges) is clean by construction.
"""

from __future__ import annotations

import ast

from ..walker import (
    CM_NAMES,
    Checker,
    FunctionInfo,
    forwards_cm,
    is_charge_call,
    is_state_mutation,
)


class CostAccountingChecker(Checker):
    """Every mutation path must charge the cost model."""

    rules = {
        "REP-C001": "public mutating function never charges the cost model",
        "REP-C002": "cost-model parameter accepted but never used",
        "REP-C003": "mutating loop with no cost-model charge in scope",
    }

    def run(self):
        if not getattr(self.ctx, "in_cost_scope", True):
            return self.findings
        analysis = self.ctx.analysis
        for info in analysis.functions.values():
            self._check_function(info)
        return self.findings

    # -- per-function rules ---------------------------------------------------

    def _check_function(self, info: FunctionInfo) -> None:
        cm_params = info.params & CM_NAMES
        has_cm = bool(cm_params) or self.ctx.analysis.class_has_cm(info.cls)

        if cm_params and not self._uses_cm_param(info, cm_params):
            self.emit(
                info.node,
                "REP-C002",
                f"'{info.qualname}' accepts {sorted(cm_params)[0]!r} but never "
                "charges, stores, or forwards it — callers believe this work "
                "is accounted",
            )

        if not has_cm:
            # classes without a cost model (OutSet, Treap, ...) are charged
            # by their enclosing structure at the paper's lemma granularity.
            return

        if info.is_public and info.mutates and not info.charges:
            self.emit(
                info.node,
                "REP-C001",
                f"'{info.qualname}' mutates structure state but its call "
                "chain never charges the cost model (tick/charge/count or "
                "cm= forwarding)",
            )

        self._check_loops(info)

    def _uses_cm_param(self, info: FunctionInfo, cm_params: set[str]) -> bool:
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Name) and sub.id in cm_params:
                return True
        return False

    # -- loop rule ------------------------------------------------------------

    def _check_loops(self, info: FunctionInfo) -> None:
        loops = [
            sub
            for sub in ast.walk(info.node)
            if isinstance(sub, (ast.For, ast.While))
        ]
        if not loops:
            return
        for loop in loops:
            if not self._body_mutates(loop, info):
                continue
            if self._body_charges(loop, info):
                continue
            if self._charges_outside(info, loop):
                continue
            self.emit(
                loop,
                "REP-C003",
                f"loop in '{info.qualname}' mutates structure state with no "
                "tick/charge inside and none elsewhere in the function — "
                "this work is invisible to the work/depth model",
            )

    def _body_mutates(self, loop: ast.AST, info: FunctionInfo) -> bool:
        analysis = self.ctx.analysis
        for sub in ast.walk(loop):
            if is_state_mutation(sub, info.params):
                return True
            if isinstance(sub, ast.Call):
                qual = self._resolve_call(sub, info)
                if qual is not None:
                    target = analysis.functions.get(qual)
                    if target is not None and target.mutates:
                        return True
        return False

    def _body_charges(self, loop: ast.AST, info: FunctionInfo) -> bool:
        analysis = self.ctx.analysis
        for sub in ast.walk(loop):
            if isinstance(sub, ast.Call):
                if is_charge_call(sub) or forwards_cm(sub):
                    return True
                qual = self._resolve_call(sub, info)
                if qual is not None and analysis.call_chain_charges(qual):
                    return True
        return False

    def _charges_outside(self, info: FunctionInfo, loop: ast.AST) -> bool:
        """A direct or delegated charge anywhere in the function outside
        the flagged loop (batch-granularity accounting)."""
        inside = {id(sub) for sub in ast.walk(loop)}
        analysis = self.ctx.analysis
        for sub in ast.walk(info.node):
            if id(sub) in inside or not isinstance(sub, ast.Call):
                continue
            if is_charge_call(sub) or forwards_cm(sub):
                return True
            qual = self._resolve_call(sub, info)
            if qual is not None and analysis.call_chain_charges(qual):
                return True
        return False

    def _resolve_call(self, call: ast.Call, info: FunctionInfo) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and info.cls is not None
        ):
            return f"{info.cls.name}.{func.attr}"
        return None


__all__ = ["CostAccountingChecker"]
