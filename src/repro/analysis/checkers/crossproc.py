"""REP-PX: cross-process state flow in worker-reachable code.

The process executor (``pram/executor.py``) runs :class:`RungTask`
payloads in ``multiprocessing`` workers.  Workers get *copies* of the
coordinator's state; the only channel back is the pickled
:class:`WorkerDelta` that ``merge_delta`` folds into the coordinator.
Any other write made in worker code — a module global, a mutated
argument that is not part of the return value — silently diverges the
process panel from the serial executor.

The checker seeds from every ``<pool-ish>.map(fn, ...)`` /
``.submit(fn, ...)`` call site, takes the call-graph closure of the
worker functions, and inside that closure flags:

* **REP-PX001** — writes to module-level globals (``global X`` or
  mutator calls on a module binding),
* **REP-PX002** — mutation of a parameter that the function never
  returns (the coordinator's copy is untouched; the worker's copy dies
  with the process).

By-design worker-local globals (e.g. a fresh per-worker tracer whose
results *are* folded into the delta) belong in the committed baseline
with a justification.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from ..project import FunctionSummary, ModuleSummary, ProjectChecker


class CrossProcessChecker(ProjectChecker):
    """Worker-side state must reach the coordinator via WorkerDelta."""

    rules = {
        "REP-PX001": (
            "module global written in worker-reachable code — worker "
            "processes do not share memory with the coordinator"
        ),
        "REP-PX002": (
            "parameter mutated in worker-reachable code but not returned "
            "— the mutation dies with the worker process"
        ),
    }

    def run(self) -> Iterable[tuple[ModuleSummary, Finding]]:
        closure = self._worker_closure()
        emitted: set = set()
        for summary, fs in closure:
            for name, line in fs.writes_globals:
                key = (summary.path, line, "REP-PX001", name)
                if key in emitted:
                    continue
                emitted.add(key)
                yield summary, Finding(
                    summary.path,
                    line,
                    "REP-PX001",
                    (
                        f"module global '{name}' is written in worker-"
                        f"reachable code ('{fs.qualname}') — workers do not "
                        "share memory with the coordinator; fold the state "
                        "into the WorkerDelta merge instead"
                    ),
                )
            returned = set(fs.returned_names)
            for name, line in fs.mutates_params:
                if name in returned:
                    continue
                key = (summary.path, line, "REP-PX002", name)
                if key in emitted:
                    continue
                emitted.add(key)
                yield summary, Finding(
                    summary.path,
                    line,
                    "REP-PX002",
                    (
                        f"parameter '{name}' is mutated in worker-reachable "
                        f"code ('{fs.qualname}') but never returned — the "
                        "coordinator's copy is untouched and the worker's "
                        "copy dies with the process; return it or route it "
                        "through the WorkerDelta"
                    ),
                )

    # -- closure -------------------------------------------------------------

    def _worker_closure(
        self,
    ) -> list[tuple[ModuleSummary, FunctionSummary]]:
        seen: set[int] = set()
        order: list[tuple[ModuleSummary, FunctionSummary]] = []
        stack: list[FunctionSummary] = []
        for _summary, fs in self.project.all_functions():
            for seed in fs.worker_seed_descs:
                worker = self.project.resolve_call(fs, seed)
                if worker is not None:
                    stack.append(worker)
        while stack:
            fs = stack.pop()
            if id(fs) in seen:
                continue
            seen.add(id(fs))
            summary = self.project.modules.get(fs.module)
            if summary is None:
                continue
            order.append((summary, fs))
            for site in fs.calls:
                callee = self.project.resolve_call(fs, site)
                if callee is not None and id(callee) not in seen:
                    stack.append(callee)
        return order
