"""Determinism checker (rules REP-D001..REP-D003).

The simulated PRAM must be reproducible under a seed: the paper's
w.h.p. statements are only testable when the "random" choices are a pure
function of the seed, and the CRCW arbitrary-write resolution
(:func:`repro.pram.primitives.arbitrary_winners`) is only deterministic
when its input arrives in canonical order (Lemma 4.14/4.16 sort first).

* **REP-D001** — a call through the *module-level* ``random`` generator
  (``random.random()``, ``random.shuffle`` ...) or the legacy global numpy
  generator (``np.random.*``): hidden global state that seeds cannot
  reach.  Plumb an explicit ``random.Random(seed)`` instead.
* **REP-D002** — ``random.Random()`` (or ``np.random.default_rng()``)
  constructed with no seed argument: a fresh OS-entropy generator.
* **REP-D003** — a set-typed iterable feeding order-sensitive parallel
  logic — a ``region.branch()`` loop, ``parallel_map``, ``semisort``,
  ``arbitrary_winners`` or ``pfor`` — without a canonical ``sorted(...)``
  / ``parallel_sort(...)`` wrapper.  Set iteration order is an
  implementation detail; branch order decides arbitrary-write winners.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..walker import Checker, attribute_chain

#: random-module functions that consume the hidden global generator.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: order-sensitive parallel consumers (bare-name form).
_PARALLEL_CONSUMERS = frozenset({"parallel_map", "semisort", "arbitrary_winners"})



class DeterminismChecker(Checker):
    """Seeded randomness and canonical orders only."""

    rules = {
        "REP-D001": "module-level random.* call (hidden global RNG state)",
        "REP-D002": "unseeded random.Random() / default_rng() construction",
        "REP-D003": "set iteration feeds order-sensitive parallel logic "
        "without a canonical sort",
    }

    # ------------------------------------------------------------- D001/D002

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain is not None:
            self._check_random_call(node, chain)
        self._check_parallel_consumer(node)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, chain: list[str]) -> None:
        # random.<fn>(...) on the module itself
        if chain[:1] == ["random"] and len(chain) == 2:
            if chain[1] in _GLOBAL_RANDOM_FNS:
                self.emit(
                    node,
                    "REP-D001",
                    f"'random.{chain[1]}()' uses the global RNG — plumb an "
                    "explicit random.Random(seed) through instead",
                )
            elif chain[1] == "Random" and not node.args and not node.keywords:
                self.emit(
                    node,
                    "REP-D002",
                    "'random.Random()' without a seed draws OS entropy — "
                    "pass an explicit seed",
                )
        # np.random.<fn>(...) — the legacy global numpy generator
        if len(chain) == 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            if chain[2] == "default_rng":
                if not node.args and not node.keywords:
                    self.emit(
                        node,
                        "REP-D002",
                        "'default_rng()' without a seed draws OS entropy — "
                        "pass an explicit seed",
                    )
            else:
                self.emit(
                    node,
                    "REP-D001",
                    f"'{chain[0]}.random.{chain[2]}()' uses numpy's global "
                    "RNG — use a seeded Generator instead",
                )

    # ------------------------------------------------------------------ D003

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_function(self, fn: ast.FunctionDef) -> None:
        set_vars = self._set_typed_locals(fn)
        for sub in ast.walk(fn):
            if isinstance(sub, ast.For) and self._loop_opens_branch(sub):
                if self._is_unordered_set(sub.iter, set_vars):
                    self.emit(
                        sub,
                        "REP-D003",
                        "parallel branches iterate a set in hash order — "
                        "wrap the iterable in sorted(...) so branch order "
                        "(and arbitrary-write winners) is canonical",
                    )

    def _check_parallel_consumer(self, node: ast.Call) -> None:
        name: Optional[str] = None
        func = node.func
        if isinstance(func, ast.Name) and func.id in _PARALLEL_CONSUMERS:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in (
            _PARALLEL_CONSUMERS | {"pfor"}
        ):
            name = func.attr
        if name is None or not node.args:
            return
        first = node.args[0]
        if self._is_syntactic_set(first):
            self.emit(
                node,
                "REP-D003",
                f"set passed to order-sensitive '{name}' — wrap it in "
                "sorted(...) for a canonical processing order",
            )

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _loop_opens_branch(loop: ast.For) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, ast.With):
                for item in sub.items:
                    call = item.context_expr
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "branch"
                    ):
                        return True
        return False

    @staticmethod
    def _is_syntactic_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        return False

    def _set_typed_locals(self, fn: ast.FunctionDef) -> set[str]:
        """Names that are only ever assigned set-typed expressions."""
        assigned: dict[str, bool] = {}
        for sub in ast.walk(fn):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                is_set = self._is_syntactic_set(value)
                prior = assigned.get(target.id)
                assigned[target.id] = is_set if prior is None else (prior and is_set)
        return {name for name, is_set in assigned.items() if is_set}

    def _is_unordered_set(self, expr: ast.AST, set_vars: set[str]) -> bool:
        """True when ``expr`` is syntactically a set (or a set-typed local)
        not wrapped in an ordering call like ``sorted``/``parallel_sort``."""
        if self._is_syntactic_set(expr):
            return True
        return isinstance(expr, ast.Name) and expr.id in set_vars


__all__ = ["DeterminismChecker"]
