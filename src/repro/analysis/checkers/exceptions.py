"""REP-X: exception-safety of ``guarded()`` regions.

``resilience/guard.py:guarded`` promises strong exception safety: on any
exception the target structure is rebuilt from its pre-batch snapshot.
That promise has two failure modes this family catches statically:

* **REP-X002** — the guarded target's class is one ``capture()`` cannot
  snapshot at all (no ``tail_of`` / ``inner`` / ``_buckets`` / ``bal`` /
  ``rungs`` / ``guard`` attribute fingerprint, directly or via a base).
  At runtime this raises ``ParameterError`` *before* the batch runs, so
  the bug only surfaces when the guarded call site is first exercised.

* **REP-X001** — state **other than the guarded target** is mutated
  inside the region.  The snapshot covers the target only; a rollback
  restores the target but leaves the sibling mutation applied, breaking
  the all-or-nothing contract the caller asked for.

Both rules stay lenient when the target cannot be resolved inside the
project (dynamic dispatch, externally-constructed structures).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..findings import Finding
from ..project import (
    FunctionSummary,
    GuardedRegion,
    ModuleSummary,
    ProjectChecker,
)


class ExceptionSafetyChecker(ProjectChecker):
    """Mutations under ``guarded()`` must be covered by the snapshot."""

    rules = {
        "REP-X001": (
            "state outside the guarded target is mutated inside a "
            "guarded() region — a rollback will not restore it"
        ),
        "REP-X002": (
            "guarded() target is not snapshot-capable: resilience.guard."
            "capture has no case for its attribute fingerprint"
        ),
    }

    def run(self) -> Iterable[tuple[ModuleSummary, Finding]]:
        for summary, fs in self.project.all_functions():
            for region in fs.guarded_regions:
                yield from self._check_region(summary, fs, region)

    def _check_region(
        self, summary: ModuleSummary, fs: FunctionSummary, region: GuardedRegion
    ) -> Iterable[tuple[ModuleSummary, Finding]]:
        cls_expr = self._target_class_expr(fs, region)
        if cls_expr is not None:
            capable = self.project.capture_capable(summary.module_name, cls_expr)
            if capable is False:
                target = region.target or cls_expr
                yield summary, Finding(
                    summary.path,
                    region.line,
                    "REP-X002",
                    (
                        f"guarded() target '{target}' resolves to class "
                        f"'{cls_expr}' which capture() cannot snapshot — it "
                        "binds none of the dispatch fingerprints (tail_of, "
                        "inner, _buckets, bal, rungs, guard); guarding it "
                        "raises ParameterError at runtime"
                    ),
                )
        for written, line in region.alien_writes:
            yield summary, Finding(
                summary.path,
                line,
                "REP-X001",
                (
                    f"'{written}' is mutated inside a guarded() region whose "
                    f"snapshot only covers "
                    f"'{region.target or region.target_kind}' (line "
                    f"{region.line}) — on rollback this mutation survives, "
                    "breaking strong exception safety"
                ),
            )

    def _target_class_expr(
        self, fs: FunctionSummary, region: GuardedRegion
    ) -> Optional[str]:
        if region.target_kind == "self":
            # a mixin's ``guarded(self)`` runs with a derived instance; judge
            # the class only when nothing in the project subclasses it.
            if fs.cls is not None and self._is_subclassed(fs.cls):
                return None
            return fs.cls
        if region.target_kind == "name":
            return region.type_hint
        if region.target_kind == "self_attr" and fs.cls is not None:
            summary = self.project.modules.get(fs.module)
            cls = summary.classes.get(fs.cls) if summary else None
            if cls is not None:
                return cls.attr_types.get(region.target)
        return None

    def _is_subclassed(self, cls_name: str) -> bool:
        for summary in self.project.modules.values():
            for cls in summary.classes.values():
                for base in cls.bases:
                    if base.split(".")[-1] == cls_name:
                        return True
        return False
