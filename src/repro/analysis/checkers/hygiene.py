"""API-hygiene checker (rules REP-H001..REP-H003).

The library's public surface is what the README and COOKBOOK promise;
``__all__`` is the contract.  Three consistency rules:

* **REP-H001** — a name listed in ``__all__`` that the module never binds
  (typo'd export: ``from module import name`` would raise at a distance).
* **REP-H002** — a public top-level ``def``/``class`` missing from an
  existing ``__all__``: either export it or underscore it.
* **REP-H003** — an exported function or class with no docstring.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..walker import Checker


class ApiHygieneChecker(Checker):
    """``__all__`` consistency and docstrings on the exported surface."""

    rules = {
        "REP-H001": "__all__ lists a name the module never binds",
        "REP-H002": "public top-level definition missing from __all__",
        "REP-H003": "exported definition has no docstring",
    }

    def run(self):
        tree = self.ctx.tree
        bound = self._module_bindings(tree)
        dunder_all = self._find_all(tree)

        if dunder_all is not None:
            names, node = dunder_all
            for name in sorted(set(names)):
                if name not in bound:
                    self.emit(
                        node,
                        "REP-H001",
                        f"__all__ exports {name!r} but the module never "
                        "binds it",
                    )

        exported = set(dunder_all[0]) if dunder_all is not None else None
        for stmt in tree.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            public = not stmt.name.startswith("_")
            if exported is not None and public and stmt.name not in exported:
                self.emit(
                    stmt,
                    "REP-H002",
                    f"public {'class' if isinstance(stmt, ast.ClassDef) else 'function'} "
                    f"'{stmt.name}' is not in __all__ — export it or prefix "
                    "it with an underscore",
                )
            is_exported = (
                stmt.name in exported if exported is not None else public
            )
            if is_exported and ast.get_docstring(stmt) is None:
                self.emit(
                    stmt,
                    "REP-H003",
                    f"exported {'class' if isinstance(stmt, ast.ClassDef) else 'function'} "
                    f"'{stmt.name}' has no docstring",
                )
        return self.findings

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _find_all(tree: ast.Module) -> Optional[tuple[list[str], ast.stmt]]:
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    names: list[str] = []
                    if isinstance(value, (ast.List, ast.Tuple)):
                        for elt in value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                names.append(elt.value)
                    return names, stmt
        return None

    @staticmethod
    def _module_bindings(tree: ast.Module) -> set[str]:
        """Names bound at module top level (defs, classes, imports, assigns)."""
        bound: set[str] = set()
        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                bound.add(stmt.target.id)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # conditional imports / TYPE_CHECKING blocks
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Import):
                        for alias in sub.names:
                            bound.add(alias.asname or alias.name.split(".")[0])
                    elif isinstance(sub, ast.ImportFrom):
                        for alias in sub.names:
                            bound.add(alias.asname or alias.name)
                    elif isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        bound.add(sub.name)
        return bound


__all__ = ["ApiHygieneChecker"]
