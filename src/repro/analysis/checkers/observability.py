"""Observability checker (rules REP-O001..REP-O003).

The phase-tree attribution of :mod:`repro.instrument.telemetry` only
aggregates if every instrumentation site spells its span name exactly as
registered in :data:`repro.instrument.trace.SPAN_TAXONOMY` — an armed
strict tracer rejects unknown names at runtime, but the hot paths are
disarmed by default, so a typo would ship silently and only explode (or
fragment the tree) the first time someone profiles.  This checker closes
that gap statically in the cost-scoped packages:

* **REP-O001** — a ``span(...)`` call whose literal name is not in the
  registered taxonomy: register it (``register_span``) or fix the typo.
* **REP-O002** — a ``span(...)`` call whose name is not a string literal:
  dynamic names defeat both this check and the aggregation-by-name
  design; thread the variability through ``attrs``/``detail`` instead.

One more rule guards the wall-clock observatory, *everywhere* (not just
the cost scope) except inside ``instrument/`` itself:

* **REP-O003** — a direct ``time.time()`` / ``time.monotonic()`` /
  ``time.perf_counter()`` (or the ``from time import ...`` spellings)
  outside ``repro/instrument/``.  All wall-clock reads must route
  through the Tracer clock — :func:`repro.instrument.wallclock.
  monotonic` — so ``FakeClock`` tests and frozen-time harnesses see
  every timing site, and so epoch-vs-monotonic mixups cannot creep into
  the overhead ledger.
"""

from __future__ import annotations

import ast
import re

from ...instrument.trace import SPAN_TAXONOMY
from ..walker import Checker, attribute_chain

#: receiver spellings that make an ``x.span(...)`` call a tracing span.
_SPAN_RECEIVERS = frozenset({"trace", "_trace", "tracer"})

#: ``time`` module functions that read a wall/CPU clock directly.
_CLOCK_FUNCS = frozenset(
    {
        "time",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "span"
    if isinstance(func, ast.Attribute) and func.attr == "span":
        chain = attribute_chain(func.value)
        return bool(chain) and chain[-1] in _SPAN_RECEIVERS
    return False


class ObservabilityChecker(Checker):
    """Span names from the taxonomy; wall-clock reads through the Tracer clock."""

    rules = {
        "REP-O001": "span name is not in the registered taxonomy",
        "REP-O002": "span name is not a string literal",
        "REP-O003": "direct time.* clock read outside instrument/ — use "
                    "repro.instrument.wallclock.monotonic (the Tracer clock)",
    }

    def run(self):
        self._check_spans = bool(getattr(self.ctx, "in_cost_scope", True))
        # the clock module itself (and its tests' fixtures) must read the
        # real clock; everything else routes through it.
        parts = re.split(r"[\\/]", self.ctx.path)
        self._check_clock = "instrument" not in parts
        #: local aliases bound by ``from time import monotonic [as m]``.
        self._time_aliases: dict[str, str] = {}
        self.visit(self.ctx.tree)
        return self.findings

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS:
                    self._time_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def _clock_read(self, node: ast.Call) -> str | None:
        """The ``time.<func>`` name this call reads, if it is one."""
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _CLOCK_FUNCS:
            chain = attribute_chain(func.value)
            if chain == ["time"]:
                return f"time.{func.attr}"
        if isinstance(func, ast.Name) and func.id in self._time_aliases:
            return f"time.{self._time_aliases[func.id]}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self._check_spans and _is_span_call(node) and node.args:
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                self.emit(
                    node,
                    "REP-O002",
                    "span name must be a string literal so the taxonomy can "
                    "be checked statically — put per-call variability in "
                    "attrs/detail, not the name",
                )
            elif name_arg.value not in SPAN_TAXONOMY:
                self.emit(
                    node,
                    "REP-O001",
                    f"span name {name_arg.value!r} is not in SPAN_TAXONOMY "
                    "(docs/OBSERVABILITY.md) — register_span() it or fix "
                    "the typo",
                )
        if self._check_clock:
            read = self._clock_read(node)
            if read is not None:
                self.emit(
                    node,
                    "REP-O003",
                    f"{read}() bypasses the Tracer clock — route the read "
                    "through repro.instrument.wallclock.monotonic so mocked "
                    "clocks and the overhead ledger see it",
                )
        self.generic_visit(node)


__all__ = ["ObservabilityChecker"]
