"""Observability checker (rules REP-O001..REP-O002).

The phase-tree attribution of :mod:`repro.instrument.telemetry` only
aggregates if every instrumentation site spells its span name exactly as
registered in :data:`repro.instrument.trace.SPAN_TAXONOMY` — an armed
strict tracer rejects unknown names at runtime, but the hot paths are
disarmed by default, so a typo would ship silently and only explode (or
fragment the tree) the first time someone profiles.  This checker closes
that gap statically in the cost-scoped packages:

* **REP-O001** — a ``span(...)`` call whose literal name is not in the
  registered taxonomy: register it (``register_span``) or fix the typo.
* **REP-O002** — a ``span(...)`` call whose name is not a string literal:
  dynamic names defeat both this check and the aggregation-by-name
  design; thread the variability through ``attrs``/``detail`` instead.
"""

from __future__ import annotations

import ast

from ...instrument.trace import SPAN_TAXONOMY
from ..walker import Checker, attribute_chain

#: receiver spellings that make an ``x.span(...)`` call a tracing span.
_SPAN_RECEIVERS = frozenset({"trace", "_trace", "tracer"})


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "span"
    if isinstance(func, ast.Attribute) and func.attr == "span":
        chain = attribute_chain(func.value)
        return bool(chain) and chain[-1] in _SPAN_RECEIVERS
    return False


class ObservabilityChecker(Checker):
    """Span names in instrumented code must come from the taxonomy."""

    rules = {
        "REP-O001": "span name is not in the registered taxonomy",
        "REP-O002": "span name is not a string literal",
    }

    def run(self):
        if not getattr(self.ctx, "in_cost_scope", True):
            return self.findings
        self.visit(self.ctx.tree)
        return self.findings

    def visit_Call(self, node: ast.Call) -> None:
        if _is_span_call(node) and node.args:
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                self.emit(
                    node,
                    "REP-O002",
                    "span name must be a string literal so the taxonomy can "
                    "be checked statically — put per-call variability in "
                    "attrs/detail, not the name",
                )
            elif name_arg.value not in SPAN_TAXONOMY:
                self.emit(
                    node,
                    "REP-O001",
                    f"span name {name_arg.value!r} is not in SPAN_TAXONOMY "
                    "(docs/OBSERVABILITY.md) — register_span() it or fix "
                    "the typo",
                )
        self.generic_visit(node)


__all__ = ["ObservabilityChecker"]
