"""Parallelism checker (rule REP-P001).

The ladder's rungs are *independent* structures — that independence is the
whole parallelism story of Theorems 1.1/1.2, and the executor protocol
(:mod:`repro.pram.executor`, docs/PERFORMANCE.md) is its single audited
funnel: rung updates become :class:`~repro.pram.executor.RungTask` items
handed to ``executor.run_structures``, which wraps each one in a cost-model
branch and (under the process backend) merges worker deltas back.  A bare

    for rung in self.rungs:
        rung.insert_batch(edges)

re-serialises the sweep, bypasses the backend switch, and records the wrong
depth (sequential sum instead of branch max).  This checker flags such
loops statically in the cost-scoped packages:

* **REP-P001** — a ``for`` loop iterating over a ``rungs`` collection whose
  body calls a batch-mutation method (``insert_batch`` / ``delete_batch``
  / ``update_batch`` / ``apply_ops``): route it through the executor.

Read-only sweeps (``check_invariants``, snapshot capture) and index loops
that merely *build* tasks are fine and not flagged.  The deliberate
sequential replay in ``RungLadder.flush_all_pending`` carries an inline
``# reprolint: disable=REP-P001`` with its justification.
"""

from __future__ import annotations

import ast

from ..walker import Checker, attribute_chain

#: batch-mutation methods that must flow through the executor protocol.
_BATCH_METHODS = frozenset(
    {"insert_batch", "delete_batch", "update_batch", "apply_ops"}
)


def _iterates_rungs(iter_node: ast.AST) -> bool:
    """Does the loop's iterable mention a ``rungs`` collection?

    Matches ``self.rungs``, ``st.rungs``, ``enumerate(self.rungs)``,
    ``zip(self.rungs, ...)``, ``range(len(self.rungs))`` — any expression
    with a ``rungs`` attribute or name anywhere inside it.
    """
    for sub in ast.walk(iter_node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rungs":
            return True
        if isinstance(sub, ast.Name) and sub.id == "rungs":
            return True
    return False


def _batch_call_in(body: list[ast.stmt]) -> ast.Call | None:
    """The first direct batch-mutation method call in the loop body."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _BATCH_METHODS
            ):
                return sub
    return None


class ParallelismChecker(Checker):
    """Ladder rung sweeps must route through the executor protocol."""

    rules = {
        "REP-P001": "rung update loop bypasses the executor protocol",
    }

    def run(self):
        if not getattr(self.ctx, "in_cost_scope", True):
            return self.findings
        self.visit(self.ctx.tree)
        return self.findings

    def visit_For(self, node: ast.For) -> None:
        if _iterates_rungs(node.iter):
            call = _batch_call_in(node.body)
            if call is not None:
                method = call.func.attr  # type: ignore[union-attr]
                self.emit(
                    node,
                    "REP-P001",
                    f"loop over rungs calls {method!r} directly — build "
                    "RungTask items and hand them to executor."
                    "run_structures so the sweep parallelises and the "
                    "depth accounting stays a branch max "
                    "(docs/PERFORMANCE.md)",
                )
        self.generic_visit(node)

    # async structures do not exist in this codebase, but the rule is the
    # same if one ever appears.
    visit_AsyncFor = visit_For


__all__ = ["ParallelismChecker"]
