"""Parallelism checker (rule REP-P001).

The ladder's rungs are *independent* structures — that independence is the
whole parallelism story of Theorems 1.1/1.2, and the executor protocol
(:mod:`repro.pram.executor`, docs/PERFORMANCE.md) is its single audited
funnel: rung updates become :class:`~repro.pram.executor.RungTask` items
handed to ``executor.run_structures``, which wraps each one in a cost-model
branch and (under the process backend) merges worker deltas back.  A bare

    for rung in self.rungs:
        rung.insert_batch(edges)

re-serialises the sweep, bypasses the backend switch, and records the wrong
depth (sequential sum instead of branch max).  This checker flags such
loops statically in the cost-scoped packages:

* **REP-P001** — a ``for`` loop iterating over a ``rungs`` collection whose
  body calls a batch-mutation method (``insert_batch`` / ``delete_batch``
  / ``update_batch`` / ``apply_ops``): route it through the executor.

Read-only sweeps (``check_invariants``, snapshot capture) and index loops
that merely *build* tasks are fine and not flagged.  The deliberate
sequential replay in ``RungLadder.flush_all_pending`` carries an inline
``# reprolint: disable=REP-P001`` with its justification.

A second rule polices the *per-iteration cost* of those same hot loops
(docs/PERFORMANCE.md, the flat-substrate story):

* **REP-P002** — a per-edge loop (iterating ``edges`` / ``arcs`` /
  per-edge journals, or unpacking ``for u, v in ...``) whose body
  allocates a fresh Python object per iteration: a class construction
  (``Treap()``, ``_Node(...)``), a bare ``set()`` / ``dict()`` /
  ``list()`` constructor, or ``d.setdefault(k, <constructor>)`` growth.
  One small object per edge is exactly the treap substrate's cost
  profile — at E21/E22 scale the allocator dominates the sweep, which is
  why the flat substrate keeps per-edge state in contiguous slabs.  The
  historical treap-substrate files carry these sites in
  ``.reprolint-baseline.json`` with justifications; *new* hot loops
  should batch their allocation outside the loop or use the flat layout.

Raising paths are exempt (an exception constructor in a ``raise`` is not
a steady-state allocation), as are loops that only *collect* results
into a pre-existing container.
"""

from __future__ import annotations

import ast
import re

from ..walker import Checker, attribute_chain

#: batch-mutation methods that must flow through the executor protocol.
_BATCH_METHODS = frozenset(
    {"insert_batch", "delete_batch", "update_batch", "apply_ops"}
)

#: iterable names that mark a loop as per-edge (REP-P002).
_EDGE_ITERABLES = frozenset(
    {"edges", "arcs", "insertions", "deletions", "last_reversed",
     "changed_edges", "batch"}
)

#: builtin constructors whose call in a per-edge loop allocates per item.
_CONTAINER_BUILTINS = frozenset({"set", "dict", "list"})

#: CamelCase (optionally underscore-private) class-construction pattern.
_CLASS_NAME = re.compile(r"^_?[A-Z][A-Za-z0-9]*$")

#: single-item mutation entry points — called once per edge by contract,
#: so an allocation in their body is a per-edge allocation even though
#: the edge loop lives in the caller.
_PER_ITEM_METHODS = frozenset({"add", "insert", "remove", "delete", "move"})


def _iterates_rungs(iter_node: ast.AST) -> bool:
    """Does the loop's iterable mention a ``rungs`` collection?

    Matches ``self.rungs``, ``st.rungs``, ``enumerate(self.rungs)``,
    ``zip(self.rungs, ...)``, ``range(len(self.rungs))`` — any expression
    with a ``rungs`` attribute or name anywhere inside it.
    """
    for sub in ast.walk(iter_node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rungs":
            return True
        if isinstance(sub, ast.Name) and sub.id == "rungs":
            return True
    return False


def _batch_call_in(body: list[ast.stmt]) -> ast.Call | None:
    """The first direct batch-mutation method call in the loop body."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _BATCH_METHODS
            ):
                return sub
    return None


def _is_edge_loop(node: ast.For) -> bool:
    """Is this a per-edge loop?  (The iterable names an edge collection.)"""
    for sub in ast.walk(node.iter):
        if isinstance(sub, ast.Attribute) and sub.attr in _EDGE_ITERABLES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _EDGE_ITERABLES:
            return True
    return False


def _raise_lines(body: list[ast.stmt]) -> set[int]:
    """Line spans of ``raise`` statements (error-path exemption)."""
    lines: set[int] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise):
                end = getattr(sub, "end_lineno", sub.lineno) or sub.lineno
                lines.update(range(sub.lineno, end + 1))
    return lines


def _is_fresh_container(node: ast.expr) -> bool:
    """Does evaluating this expression allocate a fresh container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and (
            node.func.id in _CONTAINER_BUILTINS
            or bool(_CLASS_NAME.match(node.func.id))
        )
    )


def _alloc_in(body: list[ast.stmt]) -> tuple[ast.AST, str] | None:
    """The first per-item allocation in a hot-path body."""
    skip = _raise_lines(body)
    for stmt in body:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call) or sub.lineno in skip:
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                if func.id in _CONTAINER_BUILTINS:
                    return sub, f"fresh {func.id}() per item"
                if _CLASS_NAME.match(func.id) and not func.id.endswith(
                    ("Error", "Violation", "Exception", "Warning")
                ):
                    return sub, f"constructs {func.id} per item"
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "setdefault"
                and len(sub.args) >= 2
                and _is_fresh_container(sub.args[1])
            ):
                return sub, "setdefault() grows a fresh container per item"
    return None


class ParallelismChecker(Checker):
    """Ladder rung sweeps must route through the executor protocol."""

    rules = {
        "REP-P001": "rung update loop bypasses the executor protocol",
        "REP-P002": "per-edge Python-object allocation in a hot loop",
    }

    def run(self):
        if not getattr(self.ctx, "in_cost_scope", True):
            return self.findings
        self.visit(self.ctx.tree)
        return self.findings

    def visit_For(self, node: ast.For) -> None:
        if _iterates_rungs(node.iter):
            call = _batch_call_in(node.body)
            if call is not None:
                method = call.func.attr  # type: ignore[union-attr]
                self.emit(
                    node,
                    "REP-P001",
                    f"loop over rungs calls {method!r} directly — build "
                    "RungTask items and hand them to executor."
                    "run_structures so the sweep parallelises and the "
                    "depth accounting stays a branch max "
                    "(docs/PERFORMANCE.md)",
                )
        elif _is_edge_loop(node):
            alloc = _alloc_in(node.body)
            if alloc is not None:
                call, what = alloc
                self.emit(
                    call,
                    "REP-P002",
                    f"per-edge loop {what} — one object per edge is the "
                    "treap substrate's allocator-bound cost profile; "
                    "hoist the allocation out of the loop or keep the "
                    "state on the flat substrate's contiguous slabs "
                    "(docs/PERFORMANCE.md)",
                )
        self.generic_visit(node)

    # async structures do not exist in this codebase, but the rule is the
    # same if one ever appears.
    visit_AsyncFor = visit_For

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name in _PER_ITEM_METHODS and node.args.args:
            # top-level statements only: loops inside the body are the
            # For visitor's job, and an allocation under a loop is not
            # necessarily once-per-call.
            flat = [s for s in node.body if not isinstance(s, (ast.For, ast.While))]
            alloc = _alloc_in(flat)
            if alloc is not None:
                call, what = alloc
                self.emit(
                    call,
                    "REP-P002",
                    f"per-item mutation {node.name}() {what} — this entry "
                    "point runs once per edge, so the allocation is "
                    "per-edge; hoist it or keep the state on the flat "
                    "substrate's contiguous slabs (docs/PERFORMANCE.md)",
                )
        self.generic_visit(node)


__all__ = ["ParallelismChecker"]
