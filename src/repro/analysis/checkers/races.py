"""Simulated-PRAM race checker (rules REP-R001..REP-R003).

``CostModel.parallel()`` regions *execute* sequentially, but they model a
CRCW PRAM phase: sibling ``region.branch()`` bodies are semantically
concurrent, reading the pre-phase state.  Code that works only because the
simulation happens to run branches in order is a latent bug — it will
diverge the moment a real backend (processes, sharding) replaces the
simulation, and it silently deviates from the paper's synchronous-phase
analysis.  Three write patterns are detected by static write-set analysis
of branch bodies:

* **REP-R001** — a plain/augmented assignment to a *shared scalar*: a name
  bound in the enclosing function before the parallel region.  Sibling
  branches race on it (last-writer-wins, or lost updates for ``+=``).
  Gather per-branch values and reduce after the region instead.
* **REP-R002** — a keyed write (``d[k] = v``) into a shared container
  where the key is not the branch's loop variable: two siblings can write
  the same key, which the paper resolves only through the CRCW
  arbitrary-write primitive.  Collect proposals and run them through
  :func:`repro.pram.primitives.arbitrary_winners`.
* **REP-R003** — an unordered gather: ``shared_list.append(...)`` from
  sibling branches, where the list is later consumed without a canonical
  ``sorted``/``parallel_sort`` or ``arbitrary_winners``/``semisort``
  mediation.  On a real machine the arrival order is arbitrary.

Writes keyed by the branch's own loop variable (``tokens[tail] += 1`` in a
``for tail in ...`` loop) are per-branch-private and allowed; mutating
*set* methods (``.add``/``.discard``) are commutative and exempt.
Callables handed to ``parallel_map``/``pfor`` get the same treatment: a
closure write inside the worker function is flagged at the write site.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..walker import Checker

#: list-mutators whose call order changes the result.
_ORDERED_MUTATORS = frozenset({"append", "extend", "insert", "appendleft"})

#: mediation sinks: feeding the gathered name through any of these makes
#: the arrival order irrelevant.
_MEDIATORS = frozenset({"sorted", "parallel_sort", "arbitrary_winners", "semisort"})


def _assigned_names(node: ast.AST) -> set[str]:
    """All names bound by statements inside ``node`` (incl. loop targets)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for t in sub.targets:
                out |= _target_names(t)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            out |= _target_names(sub.target)
        elif isinstance(sub, ast.For):
            out |= _target_names(sub.target)
        elif isinstance(sub, ast.With):
            for item in sub.items:
                if item.optional_vars is not None:
                    out |= _target_names(item.optional_vars)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(sub.name)
    return out


def _target_names(node: ast.AST) -> set[str]:
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in node.elts:
            out |= _target_names(elt)
        return out
    return set()


def _names_in(node: ast.AST) -> set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


class RaceChecker(Checker):
    """Write-set analysis of ``region.branch()`` bodies and PRAM callables."""

    rules = {
        "REP-R001": "sibling branches write a shared scalar",
        "REP-R002": "sibling branches write a shared container under a "
        "non-loop key without arbitrary-winner mediation",
        "REP-R003": "unordered gather: branch appends consumed without a "
        "canonical sort or CRCW mediation",
    }

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    # ------------------------------------------------------------------ core

    def _check_function(self, fn: ast.FunctionDef) -> None:
        params = {
            a.arg
            for a in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
        }
        for stmt_index, stmt in enumerate(fn.body):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.With) and self._parallel_region(sub):
                    shared = params | self._names_bound_before(fn, sub)
                    self._check_region(fn, sub, shared)
        self._check_pram_callables(fn)

    @staticmethod
    def _parallel_region(node: ast.With) -> bool:
        for item in node.items:
            call = item.context_expr
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "parallel"
            ):
                return True
        return False

    @staticmethod
    def _names_bound_before(fn: ast.FunctionDef, region: ast.With) -> set[str]:
        """Names assigned in the function on lines before the region opens."""
        out: set[str] = set()
        for sub in ast.walk(fn):
            if getattr(sub, "lineno", region.lineno) >= region.lineno:
                continue
            if isinstance(sub, ast.Assign):
                for t in sub.targets:
                    out |= _target_names(t)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                out |= _target_names(sub.target)
            elif isinstance(sub, ast.For):
                out |= _target_names(sub.target)
        return out

    def _check_region(
        self, fn: ast.FunctionDef, region: ast.With, shared: set[str]
    ) -> None:
        for loop in ast.walk(region):
            if not isinstance(loop, ast.For):
                continue
            loop_vars = _target_names(loop.target)
            for branch in self._branches(loop):
                local = _assigned_names(branch) - shared
                self._check_branch(fn, branch, shared, loop_vars | local, loop_vars)

    @staticmethod
    def _branches(loop: ast.For) -> list[ast.With]:
        out = []
        for sub in ast.walk(loop):
            if isinstance(sub, ast.With):
                for item in sub.items:
                    call = item.context_expr
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "branch"
                    ):
                        out.append(sub)
        return out

    # -- branch body rules ----------------------------------------------------

    def _check_branch(
        self,
        fn: ast.FunctionDef,
        branch: ast.With,
        shared: set[str],
        private: set[str],
        loop_vars: set[str],
    ) -> None:
        for sub in ast.walk(branch):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    self._check_store(sub, target, shared, private, loop_vars)
            elif isinstance(sub, ast.AugAssign):
                self._check_store(sub, sub.target, shared, private, loop_vars)
            elif isinstance(sub, ast.Call):
                self._check_gather(fn, sub, shared, private)

    def _check_store(
        self,
        stmt: ast.stmt,
        target: ast.expr,
        shared: set[str],
        private: set[str],
        loop_vars: set[str],
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in shared and target.id not in private:
                verb = "augments" if isinstance(stmt, ast.AugAssign) else "assigns"
                self.emit(
                    stmt,
                    "REP-R001",
                    f"branch {verb} shared variable '{target.id}' — sibling "
                    "branches race; gather per-branch results and reduce "
                    "after the region",
                )
        elif isinstance(target, ast.Subscript):
            root = target.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            container = root.id if isinstance(root, ast.Name) else "self-attribute"
            is_shared = (
                isinstance(root, ast.Name)
                and root.id in shared
                and root.id not in private
            ) or (isinstance(root, ast.Name) and root.id == "self")
            if not is_shared:
                return
            key_names = _names_in(target.slice)
            if key_names and key_names <= loop_vars:
                return  # keyed by the branch's own loop variable: private slot
            self.emit(
                stmt,
                "REP-R002",
                f"branch writes shared container '{container}' under a key "
                "that is not the branch's loop variable — siblings can "
                "collide on the same key; collect proposals and resolve via "
                "arbitrary_winners()",
            )

    def _check_gather(
        self,
        fn: ast.FunctionDef,
        call: ast.Call,
        shared: set[str],
        private: set[str],
    ) -> None:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _ORDERED_MUTATORS
            and isinstance(func.value, ast.Name)
        ):
            return
        name = func.value.id
        if name not in shared or name in private:
            return
        if self._is_mediated(fn, name, call.lineno):
            return
        self.emit(
            call,
            "REP-R003",
            f"branches append to shared list '{name}' whose consumption is "
            "never canonically ordered — pass it through parallel_sort / "
            "sorted / arbitrary_winners before consuming it",
        )

    def _is_mediated(self, fn: ast.FunctionDef, name: str, after_line: int) -> bool:
        """Is ``name`` later fed through a sort/arbitrary-winner mediator?"""
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Call):
                continue
            if getattr(sub, "lineno", 0) <= after_line:
                continue
            fname: Optional[str] = None
            if isinstance(sub.func, ast.Name):
                fname = sub.func.id
            elif isinstance(sub.func, ast.Attribute):
                fname = sub.func.attr
            if fname not in _MEDIATORS:
                continue
            for arg in sub.args:
                if any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(arg)
                ):
                    return True
        return False

    # -- callables passed to parallel_map / pfor -------------------------------

    def _check_pram_callables(self, fn: ast.FunctionDef) -> None:
        local_defs = {
            sub.name: sub
            for sub in ast.walk(fn)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not fn
        }
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Call):
                continue
            fname = None
            if isinstance(sub.func, ast.Name):
                fname = sub.func.id
            elif isinstance(sub.func, ast.Attribute):
                fname = sub.func.attr
            if fname not in ("parallel_map", "pfor"):
                continue
            worker: Optional[ast.AST] = None
            if len(sub.args) >= 2:
                worker = sub.args[1]
            for kw in sub.keywords:
                if kw.arg == "fn":
                    worker = kw.value
            if isinstance(worker, ast.Name) and worker.id in local_defs:
                self._check_worker(local_defs[worker.id])

    def _check_worker(self, worker: ast.FunctionDef) -> None:
        params = {
            a.arg
            for a in [
                *worker.args.posonlyargs,
                *worker.args.args,
                *worker.args.kwonlyargs,
            ]
        }
        local = _assigned_names(worker) | params
        nonlocals: set[str] = set()
        for sub in ast.walk(worker):
            if isinstance(sub, (ast.Nonlocal, ast.Global)):
                nonlocals |= set(sub.names)
        for sub in ast.walk(worker):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in nonlocals:
                        self.emit(
                            sub,
                            "REP-R001",
                            f"parallel worker '{worker.name}' writes closure "
                            f"variable '{target.id}' — concurrent invocations "
                            "race on it",
                        )
                    elif isinstance(target, ast.Subscript):
                        root = target.value
                        while isinstance(root, (ast.Attribute, ast.Subscript)):
                            root = root.value
                        if (
                            isinstance(root, ast.Name)
                            and root.id not in local
                            and not (_names_in(target.slice) & params)
                        ):
                            self.emit(
                                sub,
                                "REP-R002",
                                f"parallel worker '{worker.name}' writes shared "
                                f"container '{root.id}' under a key independent "
                                "of its argument — concurrent invocations can "
                                "collide",
                            )


__all__ = ["RaceChecker"]
