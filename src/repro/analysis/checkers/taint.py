"""REP-DT: determinism taint — unordered values must not reach answers.

The correctness story of the reproduction rests on the differential
panel: serial and process executors must produce *identical* answers.
Python breaks that silently whenever iteration order over a ``set`` (or
an ``id()``/``hash()`` identity) leaks into a returned value or into a
comparison key — the answer then depends on hash seeding and memory
layout, which differ across processes and runs.

The per-function label propagation lives in
:mod:`repro.analysis.project` (``_TaintAnalysis``): sources are
unordered-set iteration, ``set.pop()``, and ``id()``/``hash()``;
sanitizers (``sorted``, ``parallel_sort``, ``min``/``max``/``sum``/
``len``) strip labels; sinks are public returns and ``key=`` arguments.
This checker emits the per-function results and resolves the *deferred*
sinks — iteration over a call result — against the callee's
whole-program ``returns_unordered`` fact, which is what makes the family
interprocedural: ``for v in self._dirty_vertices():`` only taints when
the helper actually returns a set.

REP-DT001 carries an autofix: wrap the flagged iterable in
``sorted(...)``.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from ..project import ModuleSummary, ProjectChecker


class DeterminismTaintChecker(ProjectChecker):
    """Unordered-iteration and identity values must not reach answers."""

    rules = {
        "REP-DT001": (
            "value derived from unordered set/dict iteration flows into a "
            "returned answer — order depends on hash seeding"
        ),
        "REP-DT002": (
            "id()/hash() identity value flows into a returned answer or "
            "comparison key — not reproducible across processes"
        ),
    }

    def run(self) -> Iterable[tuple[ModuleSummary, Finding]]:
        for summary, fs in self.project.all_functions():
            for tf in fs.taint_findings:
                yield summary, Finding(
                    summary.path, tf.line, tf.rule, tf.message, fix=tf.fix
                )
            for pending in fs.taint_pending:
                callee = self.project.resolve_call(
                    fs, fs.calls[pending.call_idx]
                )
                if callee is None or not callee.returns_unordered:
                    continue
                yield summary, Finding(
                    summary.path,
                    pending.line,
                    "REP-DT001",
                    pending.message
                    + f" ('{callee.qualname}' returns an unordered set)",
                    fix=pending.fix,
                )
