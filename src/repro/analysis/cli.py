"""Command-line interface for reprolint.

Invoked as ``python -m repro.analysis [paths...]`` or via the ``repro
lint`` subcommand.  Exits non-zero when findings survive suppression and
the committed baseline, so a bare invocation is a CI gate; exit 2 means
the invocation itself was bad (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .autofix import apply_fixes
from .baseline import DEFAULT_BASELINE, Baseline
from .cache import SummaryCache
from .engine import all_rules, lint_paths, rule_matches

#: default on-disk cache for whole-program summaries + per-file findings.
DEFAULT_CACHE_DIR = ".reprolint-cache"


def build_parser() -> argparse.ArgumentParser:
    """The reprolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant linter for cost accounting, determinism, "
            "simulated-PRAM race safety, API hygiene, and whole-program "
            "charge/exception/taint/cross-process analysis (see "
            "docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif is SARIF 2.1.0)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help=(
            "comma-separated rule ids or family prefixes to report "
            "(e.g. REP-C selects every cost rule; default: all)"
        ),
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts instead of individual findings",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=(
            "apply mechanical autofixes (wrap flagged unordered iterables "
            "in sorted(...)), then re-lint; idempotent"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE} next to the current directory, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from the current findings (preserving "
            "justifications of surviving entries) and exit 0"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"summary cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental summary cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )
    return parser


def _validate_paths(paths: Sequence[str]) -> Optional[str]:
    """An error message when any path argument can't be linted, else None."""
    for path in paths:
        if not os.path.exists(path):
            return f"path does not exist: {path}"
        if os.path.isfile(path) and not path.endswith(".py"):
            return f"not a Python file or directory: {path}"
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint the given paths; exit 0 iff no findings survive suppression."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, description in all_rules().items():
            print(f"{rule}  {description}")
        return 0
    error = _validate_paths(args.paths)
    if error is not None:
        print(f"reprolint: {error}", file=sys.stderr)
        return 2
    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    if select:
        known = set(all_rules()) | {"REP-E999"}
        unknown = sorted(
            s for s in select if not any(rule_matches(k, [s]) for k in known)
        )
        if unknown:
            print(
                f"reprolint: unknown rule id(s) or prefix(es): "
                f"{', '.join(unknown)} (see --list-rules)",
                file=sys.stderr,
            )
            return 2

    baseline: Optional[Baseline] = None
    baseline_path = args.baseline or DEFAULT_BASELINE
    if not args.no_baseline and (args.baseline or os.path.exists(baseline_path)):
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2

    cache = None if args.no_cache else SummaryCache(args.cache_dir)

    def run():
        return lint_paths(
            args.paths,
            select=select,
            baseline=None if args.update_baseline else baseline,
            cache=cache,
        )

    report = run()
    if args.update_baseline:
        target = Baseline(path=baseline_path) if baseline is None else baseline
        count = target.write(baseline_path, report.findings)
        print(f"reprolint: wrote {count} entr(y/ies) to {baseline_path}")
        return 0
    if args.fix:
        edited = apply_fixes(report.findings)
        for path, edits in sorted(edited.items()):
            print(f"reprolint: fixed {edits} site(s) in {path}")
        if edited:
            report = run()  # re-lint the post-fix tree
    if cache is not None:
        cache.prune()
    if args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(report, all_rules()))
    elif args.format == "json":
        print(report.render_json())
    elif args.statistics:
        print(report.render_statistics())
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["build_parser", "main"]
