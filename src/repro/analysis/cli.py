"""Command-line interface for reprolint.

Invoked as ``python -m repro.analysis [paths...]`` or via the ``repro
lint`` subcommand.  Exits non-zero when findings survive suppression, so
a bare invocation is a CI gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .engine import all_rules, lint_paths


def build_parser() -> argparse.ArgumentParser:
    """The reprolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant linter for cost accounting, determinism, "
            "simulated-PRAM race safety, and API hygiene (see "
            "docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint the given paths; exit 0 iff no findings survive suppression."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, description in all_rules().items():
            print(f"{rule}  {description}")
        return 0
    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    if select:
        known = set(all_rules()) | {"REP-E999"}
        unknown = sorted(set(select) - known)
        if unknown:
            print(
                f"reprolint: unknown rule id(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
    report = lint_paths(args.paths, select=select)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["build_parser", "main"]
