"""reprolint engine: discovery, per-file + whole-program phases, caching.

The engine runs in two phases.  The **per-file phase** walks the given
paths for ``.py`` files (skipping caches and build metadata), builds one
:class:`~repro.analysis.walker.ModuleContext` per file, runs every
registered per-file checker over it, and filters findings through the
inline ``# reprolint: disable=`` map.  It also produces one picklable
:class:`~repro.analysis.project.ModuleSummary` per file — cached
content-hash-keyed alongside the per-file findings, so warm runs skip
both parsing and checking for unchanged files.

The **whole-program phase** folds all summaries into a
:class:`~repro.analysis.project.ProjectContext` (symbol table, call
graph, ``may_charge``/``may_mutate`` fixpoints) and runs the
interprocedural checkers (REP-CF / REP-X / REP-DT / REP-PX).  It is
cheap — pure traversal of summaries — so it re-runs in full every lint.

Cost-accounting rules (REP-C*, REP-CF*) only apply inside the structure
layer — paths under ``core/``, ``pbst/`` or ``hashtable/`` — where
DESIGN.md §6 requires every mutation to charge the :class:`CostModel`.
Everything else (apps, graphs, tooling) is exempt from those but still
checked for determinism, races, and hygiene.

``select`` entries and suppression ids match by *prefix*: ``REP-D``
selects every determinism rule, ``REP-DT001`` exactly one.  A committed
:class:`~repro.analysis.baseline.Baseline` absorbs known findings so
new rules land without a big-bang fixup.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Type

from .baseline import Baseline
from .checkers import ALL_CHECKERS, ALL_PROJECT_CHECKERS
from .findings import Finding, LintReport
from .project import ModuleSummary, ProjectContext, summarize_module
from .walker import Checker, ModuleContext

#: directory names never descended into.
_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".pytest_cache",
        "build",
        "dist",
        ".ruff_cache",
        ".reprolint-cache",
    }
)

#: path components that put a file in cost-accounting scope.
_COST_SCOPE_DIRS = frozenset({"core", "pbst", "hashtable"})


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Yield ``.py`` files under ``paths``, skipping caches and egg-info."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def in_cost_scope(path: str) -> bool:
    """Is this file under a package whose mutations must charge a CostModel?"""
    parts = os.path.normpath(path).split(os.sep)
    return any(part in _COST_SCOPE_DIRS for part in parts)


def rule_matches(rule: str, patterns: Sequence[str]) -> bool:
    """Prefix semantics shared by --select and inline suppressions."""
    return any(rule == p or rule.startswith(p) for p in patterns)


def _project_findings(
    summaries: Sequence[ModuleSummary],
    project_checkers: Optional[Sequence[type]] = None,
) -> list[Finding]:
    """Run the whole-program checkers; suppression-filtered, deduplicated."""
    project = ProjectContext(summaries)
    seen: set[Finding] = set()
    out: list[Finding] = []
    checkers = (
        project_checkers if project_checkers is not None else ALL_PROJECT_CHECKERS
    )
    for checker_cls in checkers:
        for summary, finding in checker_cls(project).run():
            if finding in seen:
                continue
            seen.add(finding)
            if project.is_suppressed(summary, finding.line, finding.rule):
                continue
            out.append(finding)
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    cost_scope: bool = True,
    checkers: Optional[Sequence[Type[Checker]]] = None,
    select: Optional[Sequence[str]] = None,
    project: bool = True,
) -> list[Finding]:
    """Lint one source string; the unit-test entry point.

    Runs the per-file checkers plus (by default) the whole-program
    checkers over a single-module project, so interprocedural fixtures
    are testable without touching the filesystem.  Returns the
    deduplicated, suppression-filtered findings sorted by (file, line,
    rule).
    """
    ctx = ModuleContext(path, source)
    ctx.in_cost_scope = cost_scope
    seen: set[Finding] = set()
    out: list[Finding] = []
    for checker_cls in checkers if checkers is not None else ALL_CHECKERS:
        for finding in checker_cls(ctx).run():
            if finding in seen:
                continue
            seen.add(finding)
            if ctx.is_suppressed(finding):
                continue
            out.append(finding)
    if project and checkers is None:
        summary = summarize_module(
            path if path != "<string>" else "fixture.py",
            source,
            tree=ctx.tree,
            display_path=path,
            in_cost_scope=cost_scope,
        )
        for finding in _project_findings([summary]):
            if finding not in seen:
                seen.add(finding)
                out.append(finding)
    if select:
        out = [f for f in out if rule_matches(f.rule, select)]
    return sorted(out)


def _lint_one_file(
    filepath: str,
    source: str,
    checkers: Optional[Sequence[Type[Checker]]],
) -> tuple[list[Finding], Optional[ModuleSummary]]:
    """Per-file findings + whole-program summary for one module.

    Raises SyntaxError for unparseable sources (caller reports REP-E999).
    """
    cost = in_cost_scope(filepath)
    ctx = ModuleContext(filepath, source)
    ctx.in_cost_scope = cost
    seen: set[Finding] = set()
    findings: list[Finding] = []
    for checker_cls in checkers if checkers is not None else ALL_CHECKERS:
        for finding in checker_cls(ctx).run():
            if finding in seen or ctx.is_suppressed(finding):
                continue
            seen.add(finding)
            findings.append(finding)
    summary = summarize_module(
        filepath, source, tree=ctx.tree, in_cost_scope=cost
    )
    return findings, summary


def lint_paths(
    paths: Sequence[str],
    *,
    checkers: Optional[Sequence[Type[Checker]]] = None,
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    cache=None,
    project: bool = True,
) -> LintReport:
    """Lint every Python file under ``paths`` into one report.

    Files with syntax errors are reported as a single ``REP-E999``
    finding rather than aborting the run.  ``cache`` is an optional
    :class:`~repro.analysis.cache.SummaryCache`; ``baseline`` absorbs
    known findings (the absorbed count lands in ``report.baselined``).
    """
    report = LintReport(subject="reprolint " + " ".join(paths))
    for path in paths:
        if not os.path.exists(path):
            # a typo'd path must not silently pass the CI gate
            report.add(Finding(path, 1, "REP-E999", "path does not exist"))
    summaries: list[ModuleSummary] = []
    all_findings: list[Finding] = []
    default_suite = checkers is None
    for filepath in iter_python_files(paths):
        report.files_checked += 1
        try:
            with open(filepath, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.add(Finding(filepath, 1, "REP-E999", f"cannot read file: {exc}"))
            continue
        record = None
        if cache is not None and default_suite:
            record = cache.get(_cache_salt(filepath) + source)
        if record is not None:
            findings, summary = record
        else:
            try:
                findings, summary = _lint_one_file(filepath, source, checkers)
            except SyntaxError as exc:
                report.add(
                    Finding(
                        filepath,
                        exc.lineno or 1,
                        "REP-E999",
                        f"syntax error: {exc.msg}",
                    )
                )
                continue
            if cache is not None and default_suite:
                cache.put(_cache_salt(filepath) + source, (findings, summary))
        all_findings.extend(findings)
        if summary is not None:
            summaries.append(summary)
    if project and default_suite and summaries:
        all_findings.extend(_project_findings(summaries))
    if select:
        all_findings = [
            f for f in all_findings if rule_matches(f.rule, select)
        ]
    if baseline is not None:
        all_findings, absorbed = baseline.filter(all_findings)
        report.baselined = absorbed
    report.extend(all_findings)
    report.findings.sort()
    return report


def _cache_salt(filepath: str) -> str:
    """Path-derived facts baked into cached findings (file field, scope)."""
    return f"{filepath}\0{int(in_cost_scope(filepath))}\0"


def all_rules(
    checkers: Optional[Sequence[Type[Checker]]] = None,
) -> dict[str, str]:
    """Rule id -> description across both checker suites."""
    rules: dict[str, str] = {}
    for checker_cls in checkers if checkers is not None else ALL_CHECKERS:
        rules.update(checker_cls.rules)
    if checkers is None:
        for checker_cls in ALL_PROJECT_CHECKERS:
            rules.update(checker_cls.rules)
    return dict(sorted(rules.items()))


__all__ = [
    "all_rules",
    "in_cost_scope",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "rule_matches",
]
