"""reprolint engine: file discovery, checker dispatch, suppression filter.

The engine walks the given paths for ``.py`` files (skipping caches and
build metadata), builds one :class:`~repro.analysis.walker.ModuleContext`
per file, runs every registered checker over it, filters findings through
the inline ``# reprolint: disable=`` map, and folds the survivors into a
single :class:`~repro.analysis.findings.LintReport`.

Cost-accounting rules (REP-C*) only apply inside the structure layer —
paths under ``core/``, ``pbst/`` or ``hashtable/`` — where DESIGN.md §6
requires every mutation to charge the :class:`CostModel`.  Everything
else (apps, graphs, tooling) is exempt from REP-C* but still checked for
determinism, races, and hygiene.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Type

from .checkers import ALL_CHECKERS
from .findings import Finding, LintReport
from .walker import Checker, ModuleContext

#: directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist", ".ruff_cache"}
)

#: path components that put a file in cost-accounting scope.
_COST_SCOPE_DIRS = frozenset({"core", "pbst", "hashtable"})


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Yield ``.py`` files under ``paths``, skipping caches and egg-info."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def in_cost_scope(path: str) -> bool:
    """Is this file under a package whose mutations must charge a CostModel?"""
    parts = os.path.normpath(path).split(os.sep)
    return any(part in _COST_SCOPE_DIRS for part in parts)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    cost_scope: bool = True,
    checkers: Optional[Sequence[Type[Checker]]] = None,
    select: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one source string; the unit-test entry point.

    Returns the deduplicated, suppression-filtered findings sorted by
    (file, line, rule).
    """
    ctx = ModuleContext(path, source)
    ctx.in_cost_scope = cost_scope
    seen: set[Finding] = set()
    out: list[Finding] = []
    for checker_cls in checkers if checkers is not None else ALL_CHECKERS:
        for finding in checker_cls(ctx).run():
            if finding in seen:
                continue
            seen.add(finding)
            if ctx.is_suppressed(finding):
                continue
            if select and finding.rule not in select:
                continue
            out.append(finding)
    return sorted(out)


def lint_paths(
    paths: Sequence[str],
    *,
    checkers: Optional[Sequence[Type[Checker]]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` into one report.

    Files with syntax errors are reported as a single ``REP-E999`` finding
    rather than aborting the run.
    """
    report = LintReport(subject="reprolint " + " ".join(paths))
    for path in paths:
        if not os.path.exists(path):
            # a typo'd path must not silently pass the CI gate
            report.add(Finding(path, 1, "REP-E999", "path does not exist"))
    for filepath in iter_python_files(paths):
        report.files_checked += 1
        try:
            with open(filepath, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.add(Finding(filepath, 1, "REP-E999", f"cannot read file: {exc}"))
            continue
        try:
            findings = lint_source(
                source,
                filepath,
                cost_scope=in_cost_scope(filepath),
                checkers=checkers,
                select=select,
            )
        except SyntaxError as exc:
            report.add(
                Finding(
                    filepath,
                    exc.lineno or 1,
                    "REP-E999",
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        report.extend(findings)
    report.findings.sort()
    return report


def all_rules(
    checkers: Optional[Sequence[Type[Checker]]] = None,
) -> dict[str, str]:
    """Rule id -> description across the checker suite."""
    rules: dict[str, str] = {}
    for checker_cls in checkers if checkers is not None else ALL_CHECKERS:
        rules.update(checker_cls.rules)
    return dict(sorted(rules.items()))


__all__ = [
    "all_rules",
    "in_cost_scope",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
