"""Finding and report types for reprolint.

Mirrors the :class:`repro.core.verify.AuditReport` idiom: checkers never
raise on a violation — they accumulate :class:`Finding` records into a
:class:`LintReport` whose ``ok`` property drives the CLI exit code, so CI
logs every problem in one run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line.

    ``fix`` optionally carries a mechanical autofix as a source span
    ``(start_line, start_col, end_line, end_col)`` whose text should be
    wrapped in ``sorted(...)`` — applied by ``repro lint --fix``.  It is
    excluded from ordering/equality so identical findings dedupe whether
    or not a fix is attached.
    """

    file: str
    line: int
    rule: str
    message: str
    fix: Optional[tuple] = field(default=None, compare=False)

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintReport:
    """All findings of one lint run."""

    subject: str
    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: findings absorbed by the committed baseline (not in ``findings``).
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def render_statistics(self) -> str:
        """Per-rule finding counts, widest count first — the triage view."""
        counts = self.by_rule()
        if not counts:
            return f"0 finding(s) across {self.files_checked} file(s)"
        lines = [
            f"{count:6d}  {rule}"
            for rule, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        lines.append(
            f"{len(self.findings):6d}  total across {self.files_checked} file(s)"
        )
        return "\n".join(lines)

    def render(self) -> str:
        lines = [f.render() for f in sorted(self.findings)]
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        summary = f"[{status}] {self.subject} ({self.files_checked} file(s))"
        if self.baselined:
            summary += f" [{self.baselined} baselined]"
        if not self.ok:
            breakdown = ", ".join(
                f"{rule}: {count}" for rule, count in sorted(self.by_rule().items())
            )
            summary += f" — {breakdown}"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "subject": self.subject,
                "ok": self.ok,
                "files_checked": self.files_checked,
                "findings": [f.to_dict() for f in sorted(self.findings)],
            },
            indent=2,
        )
