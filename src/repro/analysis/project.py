"""Whole-program model for reprolint: summaries, symbols, call graph.

Per-file checkers see one AST at a time; the interprocedural rule
families (REP-CF / REP-X / REP-DT / REP-PX) need to see *across* files.
The bridge is the :class:`ModuleSummary` — a picklable, AST-free digest
of one module produced by :func:`summarize_module`:

* the module's import map, top-level bindings and class facts
  (self-attributes, attribute constructor types, base classes),
* one :class:`FunctionSummary` per function: call sites with resolution
  descriptors, a flattened control-flow graph with per-block
  charge/mutation facts, determinism-taint results, ``guarded()``
  regions, global writes and parameter mutations.

Summaries are the unit of the content-hash cache (:mod:`.cache`): a
file's summary is recomputed only when its bytes change, while the
whole-program phase — symbol resolution, the ``may_charge``/
``may_mutate`` call-graph fixpoints, capture-capability — re-runs from
summaries on every lint, which is cheap.

:class:`ProjectContext` owns the resolution logic.  Call descriptors are
resolved through import maps, class attribute types (``self.x =
ClassName(...)``) and local constructor types, degrading to *unresolved*
(lenient: unresolved callees neither charge nor mutate) when Python's
dynamism wins.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .cfg import build_cfg
from .walker import (
    CM_NAMES,
    MUTATOR_METHODS,
    attribute_chain,
    forwards_cm,
    is_charge_call,
    is_cm_expr,
    is_state_mutation,
    _parse_suppressions,
)

#: bump when summary shape or fact extraction changes (invalidates caches).
SUMMARY_VERSION = 4

#: the attribute fingerprints ``resilience/guard.py:capture`` dispatches on;
#: a structure is snapshot-capable iff it (or a base) binds one of these.
CAPTURE_FINGERPRINTS = frozenset(
    {"tail_of", "inner", "_buckets", "bal", "rungs", "guard"}
)

#: callables whose output is order-canonical (stop taint propagation).
SANITIZERS = frozenset(
    {"sorted", "parallel_sort", "min", "max", "sum", "len", "frozenset_sorted"}
)

#: container methods through which taint accumulates into the receiver.
_ACCUMULATORS = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault", "update"}
)

#: call descriptor kinds (see CallSite.kind).
_BARE, _SELF, _ATTR, _OPAQUE = "bare", "self", "attr", "opaque"


# ---------------------------------------------------------------------------
# summary dataclasses (all picklable plain data)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression, with enough context to resolve it later."""

    kind: str  # "bare" | "self" | "attr" | "opaque"
    chain: tuple[str, ...]  # full attribute chain ("self","dup","insert_batch")
    name: str  # called function/method name
    line: int
    forwards_cm: bool = False
    is_charge: bool = False


@dataclass
class BlockSummary:
    """CFG basic block reduced to the facts path queries need."""

    succs: tuple[int, ...]
    direct_charge: bool
    mutation_lines: tuple[int, ...]
    call_idxs: tuple[int, ...]


@dataclass
class GuardedRegion:
    """One ``with guarded(target):`` region and its write set."""

    line: int
    target_kind: str  # "name" | "self" | "self_attr" | "other"
    target: str  # variable / attribute name ("" for self/other)
    type_hint: Optional[str]  # class expr string when locally inferable
    alien_writes: tuple[tuple[str, int], ...]  # (root description, line)


@dataclass
class TaintFinding:
    """A determinism-taint result computed per-file, emitted project-side."""

    line: int
    rule: str
    message: str
    fix: Optional[tuple[int, int, int, int]] = None  # iterable expr span


@dataclass
class TaintPending:
    """A would-be REP-DT001 whose source is a call — needs the callee."""

    call_idx: int
    line: int
    message: str
    fix: Optional[tuple[int, int, int, int]] = None


@dataclass
class FunctionSummary:
    """Everything the project phase needs to know about one function."""

    name: str
    qualname: str
    cls: Optional[str]
    lineno: int
    is_public: bool
    params: tuple[str, ...]
    calls: list[CallSite] = field(default_factory=list)
    blocks: list[BlockSummary] = field(default_factory=list)
    entry: int = 0
    exit: int = 1
    direct_charge: bool = False
    direct_mutate: bool = False
    var_types: dict[str, str] = field(default_factory=dict)
    writes_globals: tuple[tuple[str, int], ...] = ()
    mutates_params: tuple[tuple[str, int], ...] = ()
    returned_names: tuple[str, ...] = ()
    returns_unordered: bool = False
    guarded_regions: list[GuardedRegion] = field(default_factory=list)
    taint_findings: list[TaintFinding] = field(default_factory=list)
    taint_pending: list[TaintPending] = field(default_factory=list)
    worker_seed_descs: list[CallSite] = field(default_factory=list)
    # filled by the project fixpoints:
    may_charge: bool = False
    may_mutate: bool = False
    module: str = ""


@dataclass
class ClassSummary:
    """Class facts: bases, bound self-attributes, attribute types."""

    name: str
    lineno: int
    bases: tuple[str, ...] = ()
    attrs: frozenset = frozenset()
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: tuple[str, ...] = ()
    has_cm: bool = False


@dataclass
class ModuleSummary:
    """AST-free digest of one module (the cache unit)."""

    path: str
    module_name: str
    is_package: bool = False
    in_cost_scope: bool = True
    imports: dict[str, tuple] = field(default_factory=dict)
    module_bindings: frozenset = frozenset()
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    suppressions: dict[int, set] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# module name derivation
# ---------------------------------------------------------------------------


def module_name_for(path: str) -> tuple[str, bool]:
    """Dotted module name for a file, walking up through ``__init__.py``.

    Returns ``(name, is_package)``.  Files outside any package get their
    bare stem as the module name.
    """
    import os

    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: list[str] = []
    is_package = stem == "__init__"
    if not is_package:
        parts.append(stem)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
        if not pkg:
            break
    parts.reverse()
    return ".".join(parts) if parts else stem, is_package


def _resolve_relative(module_name: str, is_package: bool, level: int,
                      target: Optional[str]) -> str:
    """Absolute module a ``from ...X import Y`` refers to."""
    if level == 0:
        return target or ""
    parts = module_name.split(".") if module_name else []
    if not is_package and parts:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: len(parts) - drop] if drop <= len(parts) else []
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


# ---------------------------------------------------------------------------
# per-function fact extraction
# ---------------------------------------------------------------------------


def _receiver_chain(node: ast.AST) -> Optional[tuple[str, ...]]:
    """Chain of a call receiver; sees through one call level
    (``self._ensure_pool().map`` -> ("self", "_ensure_pool"))."""
    if isinstance(node, ast.Call):
        node = node.func
    chain = attribute_chain(node)
    return tuple(chain) if chain else None


def _call_site(call: ast.Call, cls_name: Optional[str]) -> CallSite:
    func = call.func
    fcm = forwards_cm(call)
    charge = is_charge_call(call)
    if isinstance(func, ast.Name):
        return CallSite(_BARE, (func.id,), func.id, call.lineno, fcm, charge)
    chain = attribute_chain(func)
    if chain:
        tup = tuple(chain)
        if chain[0] == "self" and len(chain) == 2 and cls_name:
            return CallSite(_SELF, tup, chain[-1], call.lineno, fcm, charge)
        return CallSite(_ATTR, tup, chain[-1], call.lineno, fcm, charge)
    name = func.attr if isinstance(func, ast.Attribute) else ""
    return CallSite(_OPAQUE, (), name, call.lineno, fcm, charge)


def _type_expr(value: ast.AST) -> Optional[str]:
    """``ClassName(...)`` / ``mod.ClassName(...)`` -> dotted string."""
    if not isinstance(value, ast.Call):
        return None
    chain = attribute_chain(value.func)
    if not chain:
        return None
    if not chain[-1][:1].isupper():  # heuristic: constructors are CapWords
        return None
    return ".".join(chain)


def _local_names(fn: ast.AST) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Assign):
            for t in sub.targets:
                out |= _flat_names(t)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            out |= _flat_names(sub.target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            out |= _flat_names(sub.target)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    out |= _flat_names(item.optional_vars)
        elif isinstance(sub, ast.comprehension):
            out |= _flat_names(sub.target)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            out.add(sub.name)
    return out


def _flat_names(node: ast.AST) -> set[str]:
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in node.elts:
            out |= _flat_names(elt)
        return out
    if isinstance(node, ast.Starred):
        return _flat_names(node.value)
    return set()


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_poolish(chain: tuple[str, ...], var_types: dict[str, str]) -> bool:
    """Does a receiver chain look like a process pool / executor?"""
    hay = list(chain[:-1])
    if len(chain) >= 2 and chain[0] in var_types:
        hay.append(var_types[chain[0]])
    return any(
        "pool" in part.lower() or "executor" in part.lower() for part in hay
    )


def _cm_guard_test_ids(node: ast.AST) -> set[int]:
    """``id()``s of ``if <cm-expr> [is [not] None]:`` tests guarding a charge.

    ``if self._cm is not None: self._cm.charge(...)`` is the sanctioned
    idiom for optionally-attached cost models; the cm-less path cannot
    charge by definition, so the test block counts as charging.
    """
    out: set[int] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.If):
            continue
        test = sub.test
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            expr = test.left
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            expr = test.operand
        else:
            expr = test
        if not is_cm_expr(expr):
            continue
        if any(
            isinstance(c, ast.Call) and (is_charge_call(c) or forwards_cm(c))
            for c in ast.walk(sub)
        ):
            out.add(id(test))
    return out


def _span(node: ast.AST) -> Optional[tuple[int, int, int, int]]:
    try:
        return (node.lineno, node.col_offset, node.end_lineno, node.end_col_offset)
    except AttributeError:
        return None


class _FunctionSummarizer:
    """Extract every per-function fact in a handful of AST walks."""

    def __init__(
        self,
        node: ast.AST,
        cls: Optional[str],
        module_bindings: frozenset,
    ) -> None:
        self.node = node
        self.cls = cls
        self.module_bindings = module_bindings
        args = node.args
        self.params = tuple(
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg != "self"
        )
        self.locals = _local_names(node) | set(self.params)

    def run(self) -> FunctionSummary:
        node = self.node
        qual = f"{self.cls}.{node.name}" if self.cls else node.name
        fs = FunctionSummary(
            name=node.name,
            qualname=qual,
            cls=self.cls,
            lineno=node.lineno,
            is_public=not node.name.startswith("_"),
            params=self.params,
        )
        self._collect_var_types(fs)
        self._collect_cfg(fs)
        self._collect_globals_and_params(fs)
        self._collect_returns(fs)
        self._collect_guarded(fs)
        self._collect_worker_seeds(fs)
        _TaintAnalysis(self, fs).run()
        return fs

    # -- types ---------------------------------------------------------------

    def _collect_var_types(self, fs: FunctionSummary) -> None:
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    type_expr = _type_expr(sub.value)
                    if type_expr:
                        fs.var_types[target.id] = type_expr
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if isinstance(item.optional_vars, ast.Name):
                        type_expr = _type_expr(item.context_expr)
                        if type_expr:
                            fs.var_types[item.optional_vars.id] = type_expr

    # -- CFG + call sites ----------------------------------------------------

    def _collect_cfg(self, fs: FunctionSummary) -> None:
        cfg = build_cfg(self.node)
        params = frozenset(self.params)
        guard_tests = _cm_guard_test_ids(self.node)
        for block in cfg.blocks:
            direct_charge = False
            mutation_lines: list[int] = []
            call_idxs: list[int] = []
            for stmt in block.stmts:
                if id(stmt) in guard_tests:
                    # `if <cm> is not None: <charge>` — the charge-if-
                    # attached idiom; every path crosses the test block,
                    # so accounting is as complete as it can be.
                    direct_charge = True
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        site = _call_site(sub, self.cls)
                        if site.is_charge or site.forwards_cm:
                            direct_charge = True
                        call_idxs.append(len(fs.calls))
                        fs.calls.append(site)
                    if is_state_mutation(sub, params):
                        mutation_lines.append(getattr(sub, "lineno", 0))
            fs.blocks.append(
                BlockSummary(
                    succs=tuple(sorted(block.succs)),
                    direct_charge=direct_charge,
                    mutation_lines=tuple(mutation_lines),
                    call_idxs=tuple(call_idxs),
                )
            )
        fs.entry, fs.exit = cfg.entry, cfg.exit
        fs.direct_charge = any(b.direct_charge for b in fs.blocks)
        fs.direct_mutate = any(b.mutation_lines for b in fs.blocks)

    # -- PX facts ------------------------------------------------------------

    def _collect_globals_and_params(self, fs: FunctionSummary) -> None:
        declared_global: set[str] = set()
        for sub in ast.walk(self.node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                declared_global |= set(sub.names)
        writes: list[tuple[str, int]] = []
        param_writes: list[tuple[str, int]] = []
        params = set(self.params)
        shadowed = self.locals - declared_global
        for sub in ast.walk(self.node):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                ):
                    root = _root_name(func.value)
                    if root is None:
                        continue
                    line = sub.lineno
                    if root in params:
                        param_writes.append((root, line))
                    elif (
                        root in self.module_bindings
                        and root not in shadowed
                        and root != "self"
                    ):
                        writes.append((root, line))
                continue
            for target in targets:
                for name in _flat_names(target):
                    if name in declared_global:
                        writes.append((name, sub.lineno))
                root = _root_name(target) if not isinstance(
                    target, (ast.Name, ast.Tuple, ast.List)
                ) else None
                if root in params:
                    param_writes.append((root, sub.lineno))
                elif (
                    root is not None
                    and root in self.module_bindings
                    and root not in shadowed
                    and root != "self"
                ):
                    writes.append((root, sub.lineno))
        fs.writes_globals = tuple(sorted(set(writes)))
        fs.mutates_params = tuple(sorted(set(param_writes)))

    def _collect_returns(self, fs: FunctionSummary) -> None:
        names: set[str] = set()
        unordered = False
        set_locals = _set_typed_locals(self.node)
        for sub in ast.walk(self.node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not self.node:
                    continue
            if isinstance(sub, ast.Return) and sub.value is not None:
                names |= {
                    n.id for n in ast.walk(sub.value) if isinstance(n, ast.Name)
                }
                if _is_unordered_expr(sub.value, set_locals):
                    unordered = True
        fs.returned_names = tuple(sorted(names))
        fs.returns_unordered = unordered

    # -- REP-X facts ---------------------------------------------------------

    def _collect_guarded(self, fs: FunctionSummary) -> None:
        for sub in ast.walk(self.node):
            if not isinstance(sub, (ast.With, ast.AsyncWith)):
                continue
            for item in sub.items:
                call = item.context_expr
                if not (
                    isinstance(call, ast.Call)
                    and (
                        (isinstance(call.func, ast.Name) and call.func.id == "guarded")
                        or (
                            isinstance(call.func, ast.Attribute)
                            and call.func.attr == "guarded"
                        )
                    )
                    and call.args
                ):
                    continue
                fs.guarded_regions.append(self._summarize_region(sub, call.args[0], fs))

    def _summarize_region(
        self, region: ast.With, target: ast.expr, fs: FunctionSummary
    ) -> GuardedRegion:
        kind, name, hint = "other", "", None
        allowed_roots: set[str] = set()
        if isinstance(target, ast.Name):
            if target.id == "self":
                kind, hint = "self", "self"
            else:
                kind, name = "name", target.id
                hint = fs.var_types.get(target.id)
            allowed_roots.add(target.id)
        elif isinstance(target, ast.Attribute):
            chain = attribute_chain(target)
            if chain and chain[0] == "self" and len(chain) == 2:
                kind, name = "self_attr", chain[1]
            allowed_roots.add("self")  # writes through self.<attr> checked below
        # names bound inside the region are region-local scratch
        region_locals = _local_names_in(region)
        loop_vars: set[str] = set()
        for sub in ast.walk(region):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                loop_vars |= _flat_names(sub.target)
        alien: list[tuple[str, int]] = []
        target_attr = name if kind == "self_attr" else None
        for sub in ast.walk(region):
            root_desc = _mutation_root(sub, frozenset(self.params))
            if root_desc is None:
                continue
            root, attr, line = root_desc
            if root in region_locals or root in loop_vars:
                continue
            # only frame-escaping state matters: locals die with the frame
            # when the exception propagates, so rollback coverage is moot.
            if not (
                root == "self"
                or root in self.params
                or root in self.module_bindings
            ):
                continue
            if kind == "name" and root == name:
                continue
            if kind == "self" and root == "self":
                continue
            if kind == "self_attr" and root == "self" and attr == target_attr:
                continue
            if kind == "other":
                continue  # cannot judge an unresolvable target — stay lenient
            pretty = root if attr is None else f"{root}.{attr}"
            alien.append((pretty, line))
        return GuardedRegion(
            line=region.lineno,
            target_kind=kind,
            target=name,
            type_hint=hint,
            alien_writes=tuple(sorted(set(alien))),
        )

    # -- REP-PX seeds --------------------------------------------------------

    def _collect_worker_seeds(self, fs: FunctionSummary) -> None:
        for sub in ast.walk(self.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in ("map", "submit")
            ):
                continue
            recv = _receiver_chain(func.value)
            if recv is None or not _is_poolish(recv + (func.attr,), fs.var_types):
                continue
            if not sub.args:
                continue
            worker = sub.args[0]
            if isinstance(worker, ast.Name):
                fs.worker_seed_descs.append(
                    CallSite(_BARE, (worker.id,), worker.id, sub.lineno)
                )
            else:
                chain = attribute_chain(worker)
                if chain:
                    fs.worker_seed_descs.append(
                        CallSite(_ATTR, tuple(chain), chain[-1], sub.lineno)
                    )


def _local_names_in(node: ast.AST) -> set[str]:
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for t in sub.targets:
                out |= {n for n in _flat_names(t)}
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    out |= _flat_names(item.optional_vars)
    return out


def _mutation_root(
    sub: ast.AST, params: frozenset
) -> Optional[tuple[str, Optional[str], int]]:
    """(root, attr-under-self, line) of a state mutation, else None."""
    if not is_state_mutation(sub, params | {"__any__"}):
        # is_state_mutation needs the roots to be self or params; redo the
        # root extraction permissively so *any* named root is examined.
        pass
    targets: list[ast.expr] = []
    if isinstance(sub, ast.Assign):
        targets = [t for t in sub.targets]
    elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
        targets = [sub.target]
    elif isinstance(sub, ast.Delete):
        targets = list(sub.targets)
    elif isinstance(sub, ast.Call):
        func = sub.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            targets = [func.value]
        else:
            return None
    else:
        return None
    for target in targets:
        if isinstance(target, ast.Name):
            if isinstance(sub, ast.Call):
                # a mutator call on a bare name mutates the object it names
                return target.id, None, getattr(sub, "lineno", 0)
            continue  # plain local rebinding is not a state mutation
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            continue
        chain_node = target
        while isinstance(chain_node, (ast.Attribute, ast.Subscript)):
            chain_node = chain_node.value
        if isinstance(chain_node, ast.Name):
            root = chain_node.id
            attr = None
            if root == "self":
                node2 = target
                parts: list[str] = []
                while isinstance(node2, (ast.Attribute, ast.Subscript)):
                    if isinstance(node2, ast.Attribute):
                        parts.append(node2.attr)
                    node2 = node2.value
                attr = parts[-1] if parts else None
            return root, attr, getattr(sub, "lineno", 0)
    return None


# ---------------------------------------------------------------------------
# determinism taint (per-function, call edges resolved project-side)
# ---------------------------------------------------------------------------


def _is_syntactic_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _set_typed_locals(fn: ast.AST) -> set[str]:
    assigned: dict[str, bool] = {}
    for sub in ast.walk(fn):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(sub, ast.Assign):
            targets, value = sub.targets, sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            is_set = _is_syntactic_set(value)
            prior = assigned.get(target.id)
            assigned[target.id] = is_set if prior is None else (prior and is_set)
    return {name for name, is_set in assigned.items() if is_set}


def _is_unordered_expr(expr: ast.AST, set_locals: set[str]) -> bool:
    if _is_syntactic_set(expr):
        return True
    return isinstance(expr, ast.Name) and expr.id in set_locals


class _TaintAnalysis:
    """Flow-insensitive determinism taint within one function.

    Labels: ``("set", site)`` for unordered set iteration, ``("id",
    site)`` for ``id()``/``hash()`` identity values, ``("call", site)``
    for iteration over a call result (resolved project-side against the
    callee's ``returns_unordered``).
    """

    def __init__(self, owner: _FunctionSummarizer, fs: FunctionSummary) -> None:
        self.owner = owner
        self.fs = fs
        self.node = owner.node
        self.set_locals = _set_typed_locals(self.node)
        #: name -> set of labels
        self.taints: dict[str, set] = {}
        #: site id -> (kind, line, fix span, call site index or None)
        self.sites: dict[int, tuple] = {}
        #: (kind, ast node id) -> site id, so re-visiting the same source
        #: expression yields the *same* label and the fixpoint terminates.
        self._site_ids: dict[tuple, int] = {}

    # -- label plumbing ------------------------------------------------------

    def _site(self, kind: str, node: ast.AST, call_idx: Optional[int] = None) -> int:
        key = (kind, id(node))
        sid = self._site_ids.get(key)
        if sid is None:
            sid = len(self.sites)
            self.sites[sid] = (
                kind, getattr(node, "lineno", 0), _span(node), call_idx
            )
            self._site_ids[key] = sid
        return sid

    def _add(self, name: str, label: tuple) -> bool:
        bucket = self.taints.setdefault(name, set())
        if label in bucket:
            return False
        bucket.add(label)
        return True

    def _expr_labels(self, expr: ast.AST) -> set:
        """Labels carried by an expression, honouring sanitizers and
        fresh sources (comprehension over a set, direct id() call)."""
        labels: set = set()
        for sub in self._walk_unsanitized(expr):
            if isinstance(sub, ast.Name) and sub.id in self.taints:
                labels |= self.taints[sub.id]
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                if sub.func.id in ("id", "hash"):
                    labels.add(("id", self._site("id", sub)))
            elif isinstance(sub, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                                  ast.DictComp)):
                for gen in sub.generators:
                    if _is_unordered_expr(gen.iter, self.set_locals):
                        labels.add(("set", self._site("set", gen.iter)))
        return labels

    def _walk_unsanitized(self, expr: ast.AST) -> Iterable[ast.AST]:
        stack = [expr]
        while stack:
            sub = stack.pop()
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in SANITIZERS
            ):
                # the call result is order-canonical; don't descend, but a
                # key= that depends on identity still poisons the order.
                for kw in sub.keywords:
                    if kw.arg == "key":
                        self._check_key(kw.value, sub)
                continue
            yield sub
            for child in ast.iter_child_nodes(sub):
                stack.append(child)

    # -- the analysis --------------------------------------------------------

    def run(self) -> None:
        self._seed_loops()
        self._propagate()
        self._sink_returns()
        self._sink_keys()

    def _call_idx_for(self, call: ast.Call) -> Optional[int]:
        """Index of ``call`` in ``fs.calls`` by (name, line) match."""
        chain = attribute_chain(call.func)
        name = (
            call.func.id
            if isinstance(call.func, ast.Name)
            else (chain[-1] if chain else None)
        )
        if name is None:
            return None
        for idx, site in enumerate(self.fs.calls):
            if site.name == name and site.line == call.lineno:
                return idx
        return None

    def _seed_loops(self) -> None:
        for sub in ast.walk(self.node):
            iters: list[tuple[ast.expr, set[str]]] = []
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                iters.append((sub.iter, _flat_names(sub.target)))
            elif isinstance(sub, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                                  ast.DictComp)):
                for gen in sub.generators:
                    iters.append((gen.iter, _flat_names(gen.target)))
            for iter_expr, targets in iters:
                if _is_unordered_expr(iter_expr, self.set_locals):
                    sid = self._site("set", iter_expr)
                    for t in targets:
                        self._add(t, ("set", sid))
                elif isinstance(iter_expr, ast.Call):
                    func = iter_expr.func
                    fname = (
                        func.id
                        if isinstance(func, ast.Name)
                        else getattr(func, "attr", None)
                    )
                    if fname in SANITIZERS or fname is None:
                        continue
                    call_idx = self._call_idx_for(iter_expr)
                    if call_idx is not None:
                        sid = self._site("call", iter_expr, call_idx)
                        for t in targets:
                            self._add(t, ("call", sid))
            # set.pop() is an arbitrary-element draw
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                func = sub.value.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.set_locals
                    and not sub.value.args
                ):
                    sid = self._site("set", sub.value)
                    for t in sub.targets:
                        for name in _flat_names(t):
                            self._add(name, ("set", sid))

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for sub in ast.walk(self.node):
                targets: list[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, ast.AugAssign):
                    targets, value = [sub.target], sub.value
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    targets, value = [sub.target], sub.value
                elif isinstance(sub, ast.Call):
                    # accumulation taints the container: out.append(tainted)
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _ACCUMULATORS
                        and isinstance(func.value, ast.Name)
                    ):
                        labels = set()
                        for arg in sub.args:
                            labels |= self._expr_labels(arg)
                        for label in labels:
                            if self._add(func.value.id, label):
                                changed = True
                    continue
                if value is None:
                    continue
                labels = self._expr_labels(value)
                if not labels:
                    continue
                for target in targets:
                    names = _flat_names(target)
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        names = {target.value.id}  # out[k] = tainted
                    for name in names:
                        for label in labels:
                            if self._add(name, label):
                                changed = True

    def _sink_returns(self) -> None:
        if not self.fs.is_public:
            return
        for sub in ast.walk(self.node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not self.node:
                    continue
            if not (isinstance(sub, ast.Return) and sub.value is not None):
                continue
            labels = self._expr_labels(sub.value)
            if _is_unordered_expr(sub.value, self.set_locals):
                continue  # returning the set itself is fine; order unexposed
            for kind, sid in sorted(labels):
                skind, line, span, call_idx = self.sites[sid]
                if kind == "set":
                    self.fs.taint_findings.append(
                        TaintFinding(
                            line=line,
                            rule="REP-DT001",
                            message=(
                                f"value derived from unordered set iteration "
                                f"(line {line}) flows into the answer "
                                f"'{self.fs.qualname}' returns — wrap the "
                                "iterable in sorted(...)"
                            ),
                            fix=span,
                        )
                    )
                elif kind == "id":
                    self.fs.taint_findings.append(
                        TaintFinding(
                            line=line,
                            rule="REP-DT002",
                            message=(
                                f"id()/hash() identity value (line {line}) "
                                f"flows into the answer '{self.fs.qualname}' "
                                "returns — identity is fresh per process and "
                                "not replayable"
                            ),
                        )
                    )
                elif kind == "call" and call_idx is not None:
                    self.fs.taint_pending.append(
                        TaintPending(
                            call_idx=call_idx,
                            line=line,
                            message=(
                                f"iteration over an unordered result (line "
                                f"{line}) flows into the answer "
                                f"'{self.fs.qualname}' returns — wrap the "
                                "call in sorted(...)"
                            ),
                            fix=span,
                        )
                    )

    def _sink_keys(self) -> None:
        for sub in ast.walk(self.node):
            if not isinstance(sub, ast.Call):
                continue
            fname = (
                sub.func.id
                if isinstance(sub.func, ast.Name)
                else getattr(sub.func, "attr", None)
            )
            if fname not in ("sorted", "min", "max", "sort"):
                continue
            for kw in sub.keywords:
                if kw.arg == "key":
                    self._check_key(kw.value, sub)

    def _check_key(self, key_expr: ast.AST, call: ast.Call) -> None:
        poisoned = False
        for sub in ast.walk(key_expr):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                if sub.func.id in ("id", "hash"):
                    poisoned = True
            elif isinstance(sub, ast.Name) and any(
                lab[0] == "id" for lab in self.taints.get(sub.id, ())
            ):
                poisoned = True
        if poisoned:
            line = call.lineno
            if not any(
                f.rule == "REP-DT002" and f.line == line
                for f in self.fs.taint_findings
            ):
                self.fs.taint_findings.append(
                    TaintFinding(
                        line=line,
                        rule="REP-DT002",
                        message=(
                            "comparison key depends on id()/hash() identity "
                            "— tie-breaking becomes memory-layout-dependent; "
                            "key on stable vertex data instead"
                        ),
                    )
                )


# ---------------------------------------------------------------------------
# module summarization
# ---------------------------------------------------------------------------


def summarize_module(
    path: str,
    source: str,
    tree: Optional[ast.Module] = None,
    *,
    display_path: Optional[str] = None,
    in_cost_scope: bool = True,
) -> ModuleSummary:
    """Build the picklable whole-program digest of one module."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    module_name, is_package = module_name_for(path)
    summary = ModuleSummary(
        path=display_path or path,
        module_name=module_name,
        is_package=is_package,
        in_cost_scope=in_cost_scope,
        suppressions=_parse_suppressions(source),
    )
    _expand_suppression_spans(summary, tree)
    bindings: set[str] = set()
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                key = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                summary.imports[key] = ("module", target)
                bindings.add(key)
        elif isinstance(stmt, ast.ImportFrom):
            base = _resolve_relative(
                module_name, is_package, stmt.level, stmt.module
            )
            for alias in stmt.names:
                key = alias.asname or alias.name
                summary.imports[key] = ("symbol", base, alias.name)
                bindings.add(key)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bindings |= _flat_names(target)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            bindings.add(stmt.target.id)
    summary.module_bindings = frozenset(bindings)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fs = _FunctionSummarizer(stmt, None, summary.module_bindings).run()
            fs.module = module_name
            summary.functions[fs.qualname] = fs
        elif isinstance(stmt, ast.ClassDef):
            summary.classes[stmt.name] = _summarize_class(
                stmt, summary, module_name
            )
    return summary


def _expand_suppression_spans(summary: ModuleSummary, tree: ast.Module) -> None:
    """A suppression on a ``def``/``class`` line covers its whole body."""
    if not summary.suppressions:
        return
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        rules = summary.suppressions.get(node.lineno)
        if not rules:
            continue
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        for line in range(node.lineno, end + 1):
            summary.suppressions.setdefault(line, set()).update(rules)


def _summarize_class(
    node: ast.ClassDef, summary: ModuleSummary, module_name: str
) -> ClassSummary:
    bases: list[str] = []
    for base in node.bases:
        chain = attribute_chain(base)
        if chain:
            bases.append(".".join(chain))
    attrs: set[str] = set()
    attr_types: dict[str, str] = {}
    methods: list[str] = []
    has_cm = False
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            attrs.add(item.target.id)
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        methods.append(item.name)
        fs = _FunctionSummarizer(item, node.name, summary.module_bindings).run()
        fs.module = module_name
        summary.functions[fs.qualname] = fs
        if set(fs.params) & CM_NAMES:
            has_cm = True
        for sub in ast.walk(item):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
                value = getattr(sub, "value", None)
            for target in targets:
                if isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    attrs.add(target.attr)
                    if value is not None:
                        type_expr = _type_expr(value)
                        if type_expr:
                            attr_types[target.attr] = type_expr
    if attrs & CM_NAMES:
        has_cm = True
    return ClassSummary(
        name=node.name,
        lineno=node.lineno,
        bases=tuple(bases),
        attrs=frozenset(attrs),
        attr_types=attr_types,
        methods=tuple(methods),
        has_cm=has_cm,
    )


# ---------------------------------------------------------------------------
# the whole-program context
# ---------------------------------------------------------------------------


class ProjectContext:
    """Symbol table + call graph over every linted module's summary."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        for summary in summaries:
            self.modules[summary.module_name] = summary
        self._capture_cache: dict[tuple[str, str], bool] = {}
        self._run_fixpoints()

    # -- symbol resolution ---------------------------------------------------

    def resolve_symbol(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[tuple[str, str, Any]]:
        """Resolve ``name`` as seen from ``module``.

        Returns ``("func", modname, FunctionSummary)``, ``("class",
        modname, ClassSummary)``, ``("module", modname, ModuleSummary)``
        or None.
        """
        if _depth > 8:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        if name in summary.functions and "." not in name:
            return ("func", module, summary.functions[name])
        if name in summary.classes:
            return ("class", module, summary.classes[name])
        if name in summary.imports:
            ref = summary.imports[name]
            if ref[0] == "module":
                target = ref[1]
                if target in self.modules:
                    return ("module", target, self.modules[target])
                return None
            _, base, symbol = ref
            resolved = self.resolve_symbol(base, symbol, _depth + 1)
            if resolved is not None:
                return resolved
            submodule = f"{base}.{symbol}" if base else symbol
            if submodule in self.modules:
                return ("module", submodule, self.modules[submodule])
        return None

    def _resolve_dotted(
        self, module: str, chain: tuple[str, ...]
    ) -> Optional[tuple[str, str, Any]]:
        """Resolve ``a.b.c`` (without the final call name) from ``module``."""
        if not chain:
            return None
        current = self.resolve_symbol(module, chain[0])
        for part in chain[1:]:
            if current is None:
                return None
            kind, modname, obj = current
            if kind == "module":
                current = self.resolve_symbol(modname, part)
                if current is None and f"{modname}.{part}" in self.modules:
                    current = (
                        "module",
                        f"{modname}.{part}",
                        self.modules[f"{modname}.{part}"],
                    )
            elif kind == "class":
                method = self._find_method(modname, obj, part)
                current = ("func", modname, method) if method else None
            else:
                return None
        return current

    def _find_method(
        self, modname: str, cls: ClassSummary, name: str, _depth: int = 0
    ) -> Optional[FunctionSummary]:
        if _depth > 8:
            return None
        summary = self.modules.get(modname)
        if summary is not None:
            fs = summary.functions.get(f"{cls.name}.{name}")
            if fs is not None:
                return fs
        for base_expr in cls.bases:
            base = self._resolve_class_expr(modname, base_expr)
            if base is None:
                continue
            base_mod, base_cls = base
            found = self._find_method(base_mod, base_cls, name, _depth + 1)
            if found is not None:
                return found
        return None

    def _resolve_class_expr(
        self, module: str, expr: str
    ) -> Optional[tuple[str, ClassSummary]]:
        parts = tuple(expr.split("."))
        if len(parts) == 1:
            resolved = self.resolve_symbol(module, parts[0])
        else:
            resolved = self._resolve_dotted(module, parts)
        if resolved is not None and resolved[0] == "class":
            return resolved[1], resolved[2]
        return None

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self, fs: FunctionSummary, site: CallSite
    ) -> Optional[FunctionSummary]:
        """The callee summary of a call site, or None when unresolvable."""
        module = fs.module
        if site.kind == _BARE:
            resolved = self.resolve_symbol(module, site.name)
            if resolved is None:
                return None
            kind, modname, obj = resolved
            if kind == "func":
                return obj
            if kind == "class":
                return self._find_method(modname, obj, "__init__")
            return None
        if site.kind == _SELF:
            if fs.cls is None:
                return None
            summary = self.modules.get(module)
            cls = summary.classes.get(fs.cls) if summary else None
            if cls is None:
                return None
            return self._find_method(module, cls, site.name)
        if site.kind == _ATTR:
            chain = site.chain
            # self.<attr>.<method>() through the attribute's constructor type
            if chain[0] == "self" and fs.cls is not None and len(chain) == 3:
                summary = self.modules.get(module)
                cls = summary.classes.get(fs.cls) if summary else None
                type_expr = cls.attr_types.get(chain[1]) if cls else None
                if type_expr:
                    target = self._resolve_class_expr(module, type_expr)
                    if target:
                        return self._find_method(target[0], target[1], chain[2])
                return None
            # local_var.<method>() through the local constructor type
            if chain[0] in fs.var_types and len(chain) == 2:
                target = self._resolve_class_expr(module, fs.var_types[chain[0]])
                if target:
                    return self._find_method(target[0], target[1], chain[1])
            # module alias chain: mod.sub.func()
            resolved = self._resolve_dotted(module, chain[:-1])
            if resolved is not None:
                kind, modname, obj = resolved
                if kind == "module":
                    final = self.resolve_symbol(modname, chain[-1])
                    if final is not None and final[0] == "func":
                        return final[2]
                    if final is not None and final[0] == "class":
                        return self._find_method(final[1], final[2], "__init__")
                elif kind == "class":
                    return self._find_method(modname, obj, chain[-1])
            return None
        return None

    # -- fixpoints -----------------------------------------------------------

    def _run_fixpoints(self) -> None:
        funcs = [
            fs for summary in self.modules.values()
            for fs in summary.functions.values()
        ]
        for fs in funcs:
            fs.may_charge = fs.direct_charge
            fs.may_mutate = fs.direct_mutate
        changed = True
        while changed:
            changed = False
            for fs in funcs:
                if fs.may_charge and fs.may_mutate:
                    continue
                for site in fs.calls:
                    callee = self.resolve_call(fs, site)
                    if callee is None:
                        continue
                    if callee.may_charge and not fs.may_charge:
                        fs.may_charge = True
                        changed = True
                    if callee.may_mutate and not fs.may_mutate:
                        fs.may_mutate = True
                        changed = True

    # -- class queries -------------------------------------------------------

    def class_has_cm(self, module: str, cls_name: str, _depth: int = 0) -> bool:
        if _depth > 8:
            return False
        summary = self.modules.get(module)
        cls = summary.classes.get(cls_name) if summary else None
        if cls is None:
            return False
        if cls.has_cm:
            return True
        for base_expr in cls.bases:
            base = self._resolve_class_expr(module, base_expr)
            if base and self.class_has_cm(base[0], base[1].name, _depth + 1):
                return True
        return False

    def capture_capable(self, module: str, cls_name: str) -> Optional[bool]:
        """Can ``guard.capture`` snapshot instances of this class?

        None when the class is not resolvable inside the project.
        """
        key = (module, cls_name)
        if key in self._capture_cache:
            return self._capture_cache[key]
        self._capture_cache[key] = False  # cycle guard
        result = self._capture_capable(module, cls_name, 0)
        self._capture_cache[key] = result if result is not None else False
        return result

    def _capture_capable(
        self, module: str, cls_name: str, depth: int
    ) -> Optional[bool]:
        if depth > 8:
            return None
        resolved = self._resolve_class_expr(module, cls_name)
        if resolved is None:
            return None
        modname, cls = resolved
        if cls.attrs & CAPTURE_FINGERPRINTS:
            return True
        for base_expr in cls.bases:
            base_ok = self._capture_capable(modname, base_expr, depth + 1)
            if base_ok:
                return True
        return False

    # -- iteration helpers ---------------------------------------------------

    def all_functions(self) -> Iterable[tuple[ModuleSummary, FunctionSummary]]:
        for summary in self.modules.values():
            for fs in summary.functions.values():
                yield summary, fs

    def is_suppressed(self, summary: ModuleSummary, line: int, rule: str) -> bool:
        rules = summary.suppressions.get(line)
        if not rules:
            return False
        return "all" in rules or any(
            rule == r or rule.startswith(r) for r in rules
        )


class ProjectChecker:
    """Base class for whole-program checker plugins.

    Subclasses declare ``rules`` and implement :meth:`run`, returning
    ``(summary, Finding)`` pairs so the engine can apply the right
    module's suppression map.
    """

    rules: dict[str, str] = {}

    def __init__(self, project: ProjectContext) -> None:
        self.project = project

    def run(self):  # pragma: no cover - interface
        raise NotImplementedError


__all__ = [
    "CAPTURE_FINGERPRINTS",
    "BlockSummary",
    "CallSite",
    "ClassSummary",
    "FunctionSummary",
    "GuardedRegion",
    "ModuleSummary",
    "ProjectChecker",
    "ProjectContext",
    "SUMMARY_VERSION",
    "TaintFinding",
    "TaintPending",
    "module_name_for",
    "summarize_module",
]
