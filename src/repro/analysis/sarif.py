"""SARIF 2.1.0 serialization of a lint report.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading one file per run gets every reprolint
finding rendered as an inline PR annotation with rule metadata, without
any custom tooling.  This emitter covers the minimal-but-valid subset:
one ``run`` with a ``tool.driver`` carrying the full rule catalogue
(id, shortDescription, helpUri into docs/STATIC_ANALYSIS.md) and one
``result`` per finding with a ``physicalLocation``.

Schema: https://json.schemastore.org/sarif-2.1.0.json — validated
structurally in tests/analysis/test_sarif.py.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

from .findings import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_DOC_URI = "docs/STATIC_ANALYSIS.md"


def _uri(path: str) -> str:
    """A relative, /-separated artifact URI (what code scanning expects)."""
    if os.path.isabs(path):
        try:
            path = os.path.relpath(path)
        except ValueError:
            pass
    return os.path.normpath(path).replace(os.sep, "/")


def _level(rule: str) -> str:
    """SARIF severity: everything is an error except hygiene notes."""
    return "warning" if rule.startswith("REP-H") else "error"


def to_sarif(report: LintReport, rules: Mapping[str, str]) -> dict:
    """The SARIF 2.1.0 log object for one lint run."""
    rule_ids = sorted(set(rules) | {f.rule for f in report.findings})
    descriptors = [
        {
            "id": rule_id,
            "name": rule_id.replace("-", ""),
            "shortDescription": {
                "text": rules.get(rule_id, "reprolint finding")
            },
            "helpUri": _DOC_URI,
            "defaultConfiguration": {"level": _level(rule_id)},
        }
        for rule_id in rule_ids
    ]
    index_of = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index_of[finding.rule],
            "level": _level(finding.rule),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _uri(finding.file),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in sorted(report.findings)
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": _DOC_URI,
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport, rules: Mapping[str, str]) -> str:
    """The SARIF log as an indented JSON string (what CI uploads)."""
    return json.dumps(to_sarif(report, rules), indent=2)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "to_sarif"]
