"""Shared AST machinery for the reprolint checkers.

One :class:`ModuleContext` per file holds the parsed tree, the
``# reprolint: disable=`` suppression map, and a lazily-built
:class:`ModuleAnalysis` — a per-function summary (does it charge the cost
model?  does it mutate structure state?) with intra-module call-graph
propagation, so a public entry point that delegates to a private helper
inherits the helper's charging behaviour.

Checkers are plugins: each is an :class:`ast.NodeVisitor` subclass of
:class:`Checker` declaring its rule ids, instantiated per module and run
over the shared tree.  Findings carry (file, line, rule, message) and are
filtered against the suppression map by the engine.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .findings import Finding

#: attribute names under which a cost model travels (`cm` parameter,
#: ``self.cm`` / ``self._cm`` attributes, explicit ``cost_model``).
CM_NAMES = frozenset({"cm", "_cm", "cost_model"})

#: CostModel methods that record work/depth (DESIGN.md §6).
CHARGE_METHODS = frozenset({"tick", "charge", "count", "pfor"})

#: method names that mutate their receiver's state.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "batch_delete",
        "batch_insert",
        "batch_set",
        "clear",
        "delete",
        "discard",
        "extend",
        "insert",
        "move",
        "pop",
        "popleft",
        "remove",
        "set",
        "setdefault",
        "update",
        "difference_update",
        "intersection_update",
    }
)

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable"
    r"(?:=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*))?"
)


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> suppressed rule ids ({"all"} disables every rule)."""
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            spec = match.group("rules")
            if spec is None:
                rules = {"all"}
            else:
                rules = {r.strip() for r in spec.split(",") if r.strip()}
                rules = rules or {"all"}
            out.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return out


def attribute_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for anything not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def is_cm_expr(node: ast.AST) -> bool:
    """Does this expression look like a cost model (``cm``, ``self.cm``...)?"""
    chain = attribute_chain(node)
    return bool(chain) and chain[-1] in CM_NAMES


def is_charge_call(node: ast.Call) -> bool:
    """``cm.tick`` / ``self.cm.charge`` / ``st.cm.count`` / ``cm.pfor``."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in CHARGE_METHODS
        and is_cm_expr(func.value)
    )


def forwards_cm(node: ast.Call) -> bool:
    """Does the call hand a cost model to a callee (delegated accounting)?

    Matches ``f(..., cm=self.cm)`` keywords and positional arguments that
    are themselves cost-model expressions, e.g. ``Sub(n, self.cm)``.
    """
    for kw in node.keywords:
        if kw.arg in CM_NAMES:
            return True
    return any(is_cm_expr(arg) for arg in node.args)


def _target_roots(node: ast.AST) -> Iterable[str]:
    """Root names of an assignment target (``self.x[k]`` -> "self")."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.Attribute, ast.Subscript)):
        chain_root = node
        while isinstance(chain_root, (ast.Attribute, ast.Subscript)):
            chain_root = chain_root.value
        if isinstance(chain_root, ast.Name):
            yield chain_root.id
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _target_roots(elt)


def _is_state_target(node: ast.AST, params: frozenset[str]) -> bool:
    """A store that outlives the call: ``self.<...>`` or through a parameter."""
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_is_state_target(e, params) for e in node.elts)
    if not isinstance(node, (ast.Attribute, ast.Subscript)):
        return False
    root = node
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        root = root.value
    return isinstance(root, ast.Name) and (root.id == "self" or root.id in params)


def is_state_mutation(node: ast.AST, params: frozenset[str]) -> bool:
    """Statement/expression that mutates self- or parameter-reachable state."""
    if isinstance(node, ast.Assign):
        return any(_is_state_target(t, params) for t in node.targets)
    if isinstance(node, ast.AugAssign):
        return _is_state_target(node.target, params)
    if isinstance(node, ast.AnnAssign):
        return node.value is not None and _is_state_target(node.target, params)
    if isinstance(node, ast.Delete):
        return any(_is_state_target(t, params) for t in node.targets)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            recv = func.value
            root = recv
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            return isinstance(root, ast.Name) and (
                root.id == "self" or root.id in params
            )
    return False


@dataclass
class FunctionInfo:
    """Per-function summary used by the cost checker."""

    node: ast.FunctionDef
    qualname: str
    cls: Optional[ast.ClassDef]
    params: frozenset[str]
    direct_charge: bool = False
    direct_mutate: bool = False
    callees: set[str] = field(default_factory=set)
    charges: bool = False  # after call-graph fixpoint
    mutates: bool = False  # after call-graph fixpoint

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")


class ModuleAnalysis:
    """Intra-module function summaries with call-graph propagation."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self._collect(tree)
        self._propagate()

    # -- collection ---------------------------------------------------------

    def _collect(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(item, cls=node)

    def _add_function(self, node, cls: Optional[ast.ClassDef]) -> None:
        qual = f"{cls.name}.{node.name}" if cls else node.name
        args = node.args
        params = frozenset(
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if a.arg != "self"
        )
        info = FunctionInfo(node=node, qualname=qual, cls=cls, params=params)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                if is_charge_call(sub) or forwards_cm(sub):
                    info.direct_charge = True
                func = sub.func
                if isinstance(func, ast.Name):
                    info.callees.add(func.id)
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and cls is not None
                ):
                    info.callees.add(f"{cls.name}.{func.attr}")
            if is_state_mutation(sub, info.params):
                info.direct_mutate = True
        self.functions[qual] = info

    # -- fixpoint -----------------------------------------------------------

    def _propagate(self) -> None:
        for info in self.functions.values():
            info.charges = info.direct_charge
            info.mutates = info.direct_mutate
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                for callee in info.callees:
                    target = self.functions.get(callee)
                    if target is None:
                        continue
                    if target.charges and not info.charges:
                        info.charges = True
                        changed = True
                    if target.mutates and not info.mutates:
                        info.mutates = True
                        changed = True

    # -- queries ------------------------------------------------------------

    def class_has_cm(self, cls: Optional[ast.ClassDef]) -> bool:
        """Does the class carry a cost model (``self.cm`` / ``cm=`` param)?"""
        if cls is None:
            return False
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = self.functions.get(f"{cls.name}.{item.name}")
            if info and info.params & CM_NAMES:
                return True
            for sub in ast.walk(item):
                if (
                    isinstance(sub, (ast.Assign, ast.AnnAssign))
                    and is_cm_expr(
                        sub.targets[0]
                        if isinstance(sub, ast.Assign)
                        else sub.target
                    )
                ):
                    return True
        return False

    def call_chain_charges(self, qual: str) -> bool:
        info = self.functions.get(qual)
        return bool(info and info.charges)


class ModuleContext:
    """Everything the checkers need to know about one source file."""

    def __init__(self, path: str, source: str, display_path: Optional[str] = None):
        self.path = display_path or path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.suppressions = _parse_suppressions(source)
        self._expand_scope_suppressions()
        self._analysis: Optional[ModuleAnalysis] = None
        #: whether REP-C* cost-accounting rules apply (set by the engine).
        self.in_cost_scope = True

    @property
    def analysis(self) -> ModuleAnalysis:
        if self._analysis is None:
            self._analysis = ModuleAnalysis(self.tree)
        return self._analysis

    def _expand_scope_suppressions(self) -> None:
        """A suppression on a ``def``/``class`` line covers its whole body."""
        if not self.suppressions:
            return
        for node in ast.walk(self.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            rules = self.suppressions.get(node.lineno)
            if not rules:
                continue
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            for line in range(node.lineno, end + 1):
                self.suppressions.setdefault(line, set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        # family prefixes suppress too: disable=REP-D covers REP-D001/DT001
        return "all" in rules or any(
            finding.rule == r or finding.rule.startswith(r) for r in rules
        )


class Checker(ast.NodeVisitor):
    """Base class for reprolint checker plugins.

    Subclasses declare ``rules`` (id -> one-line description) and emit
    findings via :meth:`emit` while visiting the shared tree.
    """

    #: rule id -> human description; populated by subclasses.
    rules: dict[str, str] = {}

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.ctx.path, getattr(node, "lineno", 1), rule, message)
        )

    def run(self) -> list[Finding]:
        self.visit(self.ctx.tree)
        return self.findings
