"""Applications of the low out-degree orientation (Section 6)."""

from .cole_vishkin import cv_six_coloring, cv_three_coloring, local_cv_color
from .explicit_coloring import ExplicitColoring
from .implicit_coloring import ImplicitColoring
from .linial import linial_parameters, linial_step, reduce_coloring
from .matching import MaximalMatching

__all__ = [
    "ExplicitColoring",
    "ImplicitColoring",
    "MaximalMatching",
    "cv_six_coloring",
    "cv_three_coloring",
    "linial_parameters",
    "linial_step",
    "local_cv_color",
    "reduce_coloring",
]
