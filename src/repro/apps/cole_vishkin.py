"""Cole–Vishkin coloring of pseudoforests [CV86].

A *pseudoforest* here is a functional graph: every vertex has at most one
successor (its unique out-neighbour).  Corollary 1.5 decomposes the low
out-degree orientation into such pseudoforests ``F_{i,j}`` (the j-th
out-edge of every vertex) and colors each one.

Two interfaces:

* :func:`cv_six_coloring` — global deterministic reduction from ids to at
  most 6 colors in ``O(log* n)`` rounds (each round: compare your color to
  your successor's, emit ``2 i + bit_i`` for the lowest differing bit
  ``i``).
* :func:`cv_three_coloring` — continues with the classic shift-down +
  color-elimination phases to exactly 3 colors.
* :func:`local_cv_color` — the *query-local* variant used by the implicit
  coloring: computes one vertex's 6-coloring color by walking only its
  ``O(log* n)`` successor chain, so a query touches no global state.  All
  vertices computing through the same chain see identical values, hence
  the combined coloring is consistent and proper.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from ..hashtable.batch_table import log_star


def _cv_step(color: int, succ_color: int) -> int:
    """One CV round: lowest differing bit index i -> new color 2 i + bit."""
    if color == succ_color:
        raise ValueError("CV step requires distinct colors along an edge")
    diff = color ^ succ_color
    i = (diff & -diff).bit_length() - 1
    return 2 * i + ((color >> i) & 1)


def _virtual_succ_color(color: int) -> int:
    """Deterministic pseudo-successor color for roots: flip bit 0."""
    return color ^ 1


def cv_six_coloring(
    vertices: Iterable[int], succ: Mapping[int, Optional[int]]
) -> dict[int, int]:
    """Reduce vertex-id colors to <= 6 colors on a pseudoforest."""
    vs = list(vertices)
    colors = {v: v for v in vs}
    guard = 0
    while any(c >= 6 for c in colors.values()):
        guard += 1
        if guard > 64:
            raise AssertionError("CV did not converge (cycle of equal colors?)")
        new = {}
        for v in vs:
            s = succ.get(v)
            sc = colors[s] if s is not None else _virtual_succ_color(colors[v])
            new[v] = _cv_step(colors[v], sc)
        colors = new
    return colors


def cv_three_coloring(
    vertices: Iterable[int], succ: Mapping[int, Optional[int]]
) -> dict[int, int]:
    """Full 3-coloring: CV to 6 colors, then eliminate colors 5, 4, 3."""
    vs = list(vertices)
    colors = cv_six_coloring(vs, succ)
    for doomed in (5, 4, 3):
        # shift-down: everyone adopts its successor's color; roots move to
        # a fresh color in {0,1,2} different from their own (their children
        # adopt the root's old color, so any other value is proper).
        shifted = {}
        for v in vs:
            s = succ.get(v)
            if s is not None:
                shifted[v] = colors[s]
            else:
                shifted[v] = next(c for c in (0, 1, 2) if c != colors[v])
        # eliminate: vertices now holding `doomed` pick a color in {0,1,2}
        # avoiding the successor's shifted color and their own pre-shift
        # color (which is what all their predecessors now hold).
        new = dict(shifted)
        for v in vs:
            if shifted[v] == doomed:
                s = succ.get(v)
                succ_color = shifted[s] if s is not None else -1
                new[v] = next(
                    c for c in (0, 1, 2) if c != succ_color and c != colors[v]
                )
        colors = new
    return colors


def local_cv_color(
    v: int, succ_of: Callable[[int], Optional[int]], n: int
) -> int:
    """Query-local 6-coloring of one vertex.

    Walks the successor chain of ``v`` for ``log*(n) + 8`` hops and folds
    CV steps over it; any two adjacent vertices fold over overlapping
    chains and therefore disagree, so the result is a proper coloring of
    the pseudoforest computed with O(log* n) work per query.
    """
    rounds = log_star(max(n, 4)) + 8
    chain: list[int] = [v]
    cur = v
    for _ in range(rounds):
        nxt = succ_of(cur)
        if nxt is None:
            break
        chain.append(nxt)
        cur = nxt
    ends_at_root = len(chain) < rounds + 1
    colors = list(chain)  # initial colors are ids
    # Exactly `rounds` folds for EVERY query — a fixed global iteration
    # count is what makes colors of adjacent queried vertices comparable.
    # Extra rounds past convergence are harmless: values stay <= 5 and the
    # step preserves properness.  Chains ending at a root keep constant
    # length by folding the root against its deterministic virtual
    # successor (bit-0 flip), which every querier reproduces identically.
    for _ in range(rounds):
        if len(colors) >= 2:
            folded = [
                _cv_step(colors[i], colors[i + 1]) for i in range(len(colors) - 1)
            ]
            if ends_at_root:
                folded.append(_cv_step(colors[-1], _virtual_succ_color(colors[-1])))
            colors = folded
        else:
            colors = [_cv_step(colors[0], _virtual_succ_color(colors[0]))]
    return colors[0]


def check_proper(
    vertices: Iterable[int],
    succ: Mapping[int, Optional[int]],
    colors: Mapping[int, int],
) -> None:
    """Raise if any successor edge is monochromatic under ``colors``."""
    for v in vertices:
        s = succ.get(v)
        if s is not None and colors[v] == colors[s]:
            raise AssertionError(f"edge ({v} -> {s}) monochromatic ({colors[v]})")
