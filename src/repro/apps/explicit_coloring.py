"""Batch-dynamic explicit coloring (Corollary 1.4).

Every vertex draws a random *palette*: each color of ``{1..C}``,
``C = O(rho_max log n)``, joins the palette independently with probability
``1 / (2 rho_max)``.  A vertex's color is any palette member not present in
any *out-neighbour's palette* — avoiding whole palettes (not just current
colors!) means a vertex only ever needs recoloring when its out-neighbour
set changes, never when a neighbour recolors.  With the paper's constants
a good color exists w.h.p.; at laptop-scale constants the implementation
falls back to a deterministic reserve color and counts how often (the
benchmarks report the fallback rate — it is zero at the defaults).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants
from ..errors import CapacityError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel
from ..core.lowoutdegree import LowOutDegree


class ExplicitColoring:
    """``O(rho_max log n)``-coloring under a density promise."""

    def __init__(
        self,
        rho_max: int,
        n: int,
        eps: float = 0.3,
        palette_factor: float = 8.0,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
    ) -> None:
        self.rho_max = max(1, rho_max)
        self.n = max(2, n)
        self.seed = seed
        self.cm = cm if cm is not None else CostModel()
        H = max(1, int(round(1.1 * self.rho_max)))
        self.lod = LowOutDegree(H, eps, n, cm=self.cm, constants=constants, seed=seed)
        logn = max(1.0, math.log2(self.n))
        # paper: C = 300 rho_max log n; the factor is configurable because
        # 300 is a w.h.p. constant, far beyond what small instances need.
        self.C = max(4, int(math.ceil(palette_factor * self.rho_max * logn)))
        self.p_color = 1.0 / (2.0 * self.rho_max)
        self._palettes: dict[int, frozenset[int]] = {}  # lazy (Lemma 4.5)
        self.color: dict[int, int] = {}
        self.fallbacks = 0

    # -- palettes -----------------------------------------------------------------

    def palette(self, v: int) -> frozenset[int]:
        """The fixed random palette of ``v`` (lazily materialised)."""
        pal = self._palettes.get(v)
        if pal is None:
            members = []
            for c in range(1, self.C + 1):
                digest = hashlib.blake2b(
                    f"{self.seed}:pal:{v}:{c}".encode(), digest_size=8
                ).digest()
                if int.from_bytes(digest, "big") / float(1 << 64) < self.p_color:
                    members.append(c)
            if not members:  # vanishingly unlikely; keep properness anyway
                members = [1 + (v % self.C)]
            pal = frozenset(members)
            self._palettes[v] = pal
            self.cm.charge(work=self.C, depth=1)
        return pal

    # -- updates --------------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = [norm_edge(u, v) for u, v in edges]
        self.lod.insert_batch(batch)
        if not self.lod.guarantees_low():
            raise CapacityError(
                f"graph density exceeded the promised rho_max = {self.rho_max}"
            )
        self._recolor_changed(self.lod.d_ins)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = [norm_edge(u, v) for u, v in edges]
        self.lod.delete_batch(batch)
        self._recolor_changed(self.lod.d_del)

    def _recolor_changed(self, table) -> None:
        dirty: set[int] = set()
        for (a, b), orient in table.items():
            dirty.add(a)
            dirty.add(b)
        with self.cm.parallel() as region:
            for v in sorted(dirty):
                with region.branch():
                    self._recolor(v)

    def _recolor(self, v: int) -> None:
        forbidden: set[int] = set()
        for w in self.lod.d_out(v):
            forbidden |= self.palette(w)
            self.cm.charge(work=len(self.palette(w)), depth=1)
        good = sorted(self.palette(v) - forbidden)
        if good:
            self.color[v] = good[0]
        else:
            # Deterministic reserve beyond C: v gets a private overflow color.
            # The w.h.p. analysis makes this impossible at paper constants;
            # benchmarks report how often small-scale runs hit it.
            self.color[v] = self.C + 1 + v
            self.fallbacks += 1
        self.cm.charge(work=len(self.palette(v)), depth=1)

    # -- queries ----------------------------------------------------------------------

    def color_of(self, v: int) -> int:
        if v not in self.color:
            self._recolor(v)
        return self.color[v]

    def num_colors_used(self) -> int:
        return len({self.color_of(v) for v in self.color} | set())

    def check_proper(self, edges: Iterable[tuple[int, int]]) -> None:
        from ..errors import InvariantViolation

        for u, v in edges:
            if self.color_of(u) == self.color_of(v):
                raise InvariantViolation(
                    f"edge ({u}, {v}) monochromatic: {self.color_of(u)}"
                )
