"""Batch-dynamic implicit coloring (Corollary 1.5).

No colors are stored; a query computes them on demand:

1. take the first ladder rung whose density guard says "low" — its
   orientation has out-degree <= d = O(rho(G));
2. split the orientation into pseudoforests ``F_j`` (the j-th out-edge of
   every vertex, ordered by the ranked out-sets);
3. 6-color each pseudoforest *locally* with Cole–Vishkin, touching only
   the O(log* n) successor chain of each queried vertex;
4. combine the per-forest colors base-6 into a ``6^d = 2^{O(rho)}``
   coloring, then apply two Linial reduction rounds to reach a
   ``poly(rho)`` palette.

Micro-deviation from the paper: we stop the local CV at 6 colors per
forest instead of 3 (the 3-color elimination phases are not query-local);
the combined palette is ``6^d`` instead of ``3^d`` — still ``2^{O(rho)}``,
so the corollary's bound is unchanged after the Linial rounds.

Queries recurse two orientation hops (a vertex needs its out-neighbours'
combined colors, and those need theirs) exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..config import DEFAULT_CONSTANTS, Constants
from ..instrument.work_depth import CostModel
from ..core.density import DensityEstimator
from .cole_vishkin import local_cv_color
from .linial import reduce_coloring


class ImplicitColoring:
    """Query-time ``poly(rho)``-coloring on top of the density ladder."""

    def __init__(
        self,
        n: int,
        eps: float = DEFAULT_CONSTANTS.ladder_base_eps,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
    ) -> None:
        self.n = max(2, n)
        self.cm = cm if cm is not None else CostModel()
        self.density = DensityEstimator(
            n, eps, cm=self.cm, constants=constants, seed=seed
        )

    # -- updates (pure pass-through to the ladder) ------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        self.density.insert_batch(edges)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        self.density.delete_batch(edges)

    # -- the implicit coloring ----------------------------------------------------

    def _sorted_out(self, v: int) -> list[int]:
        return sorted(self.density.orientation_out(v))

    def _succ(self, j: int):
        def succ_of(v: int) -> Optional[int]:
            out = self._sorted_out(v)
            self.cm.charge(work=1, depth=1)
            return out[j] if j < len(out) else None

        return succ_of

    def _combined_color(self, v: int, num_forests: int) -> int:
        """Base-6 combination of the per-forest local CV colors."""
        color = 0
        for j in range(num_forests):
            color = color * 6 + local_cv_color(v, self._succ(j), self.n)
        return color

    def query(self, vertices: Sequence[int]) -> dict[int, int]:
        """Colors for the queried vertices; proper on every induced edge.

        Consistency: colors are pure functions of the current orientation,
        so any two queries (even separate calls) agree.
        """
        vs = sorted(set(vertices))
        if not vs:
            return {}
        # d = max out-degree among every vertex we will evaluate (queried +
        # two hops of out-neighbours, which the Linial rounds consult).
        frontier = set(vs)
        for _ in range(2):
            nxt = set(frontier)
            for v in frontier:
                nxt.update(self._sorted_out(v))
            frontier = nxt
        closure = sorted(frontier)
        # d must be the rung's GLOBAL max out-degree: every query has to use
        # the same forest count or colors would not be comparable across
        # queries (cross-query consistency is part of the corollary).
        d = self.density.max_outdegree()
        num_forests = max(1, d)
        base_colors = {v: self._combined_color(v, num_forests) for v in closure}
        k = 6 ** num_forests
        out_map = {v: self._sorted_out(v) for v in closure}
        reduced, _palette = reduce_coloring(base_colors, out_map, k, d, rounds=2)
        return {v: reduced[v] for v in vs}

    def palette_bound(self) -> float:
        """The O(rho^2)-flavoured bound the corollary promises (for benches)."""
        rho = self.density.density_estimate()
        return max(9.0, (3 * rho) ** 2)

    def check_proper(self, edges: Iterable[tuple[int, int]]) -> None:
        from ..errors import InvariantViolation

        edges = list(edges)
        touched = sorted({v for e in edges for v in e})
        colors = self.query(touched)
        for u, v in edges:
            if colors[u] == colors[v]:
                raise InvariantViolation(f"edge ({u}, {v}) monochromatic")
