"""Linial's polynomial palette reduction [Lin92], as used by Corollary 1.5.

Given a proper ``k``-coloring of a directed graph with out-degree at most
``d``, one round produces a proper coloring with roughly ``O((d D)^2)``
colors where ``D ~ log_q k``: interpret each color as a degree-``D``
polynomial over a prime field ``F_q`` with ``q > d * D``; a vertex picks an
evaluation point ``a`` where its polynomial differs from every
out-neighbour's (at most ``d D`` points are bad, so one of ``q`` points is
good) and recolors to the pair ``(a, p(a))`` — at most ``q^2`` colors.
Iterating twice from ``2^{O(rho)}`` colors lands at ``O(rho^2)``-ish
palettes, which is how the implicit coloring reaches its bound.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import ParameterError


def _is_prime(x: int) -> bool:
    if x < 2:
        return False
    f = 2
    while f * f <= x:
        if x % f == 0:
            return False
        f += 1
    return True


def _next_prime(x: int) -> int:
    while not _is_prime(x):
        x += 1
    return x


def _digits(value: int, base: int, width: int) -> list[int]:
    out = []
    for _ in range(width):
        out.append(value % base)
        value //= base
    return out


def _poly_eval(coeffs: list[int], a: int, q: int) -> int:
    acc = 0
    for c in reversed(coeffs):
        acc = (acc * a + c) % q
    return acc


def linial_parameters(k: int, d: int) -> tuple[int, int]:
    """Choose (q, D): prime field size and polynomial degree.

    Needs ``q^(D+1) >= k`` (enough polynomials) and ``q > d * D`` (a good
    evaluation point exists).  We grow ``q`` until both hold with the
    smallest workable degree.
    """
    if k < 1 or d < 0:
        raise ParameterError("need k >= 1, d >= 0")
    q = _next_prime(max(2, d + 2))
    while True:
        # smallest D with q^(D+1) >= k
        D = 0
        power = q
        while power < k:
            power *= q
            D += 1
        if q > d * max(D, 1):
            return q, D
        q = _next_prime(q + 1)


def linial_step(
    colors: Mapping[int, int],
    out_neighbors: Mapping[int, list[int]],
    k: int,
    d: int,
) -> tuple[dict[int, int], int]:
    """One Linial reduction round; returns (new colors, new palette size).

    ``colors`` must be a proper coloring with values in ``[0, k)``;
    ``out_neighbors[v]`` lists at most ``d`` out-neighbours per vertex.
    """
    q, D = linial_parameters(k, d)
    new: dict[int, int] = {}
    for v, c in colors.items():
        coeffs = _digits(c, q, D + 1)
        nbr_coeffs = [
            _digits(colors[w], q, D + 1) for w in out_neighbors.get(v, []) if w in colors
        ]
        choice = None
        for a in range(q):
            mine = _poly_eval(coeffs, a, q)
            if all(_poly_eval(nc, a, q) != mine for nc in nbr_coeffs):
                choice = (a, mine)
                break
        if choice is None:
            raise AssertionError(
                "no good evaluation point — q > d*D should guarantee one"
            )
        a, val = choice
        new[v] = a * q + val
    return new, q * q


def reduce_coloring(
    colors: Mapping[int, int],
    out_neighbors: Mapping[int, list[int]],
    k: int,
    d: int,
    rounds: int = 2,
) -> tuple[dict[int, int], int]:
    """Iterate Linial rounds (Corollary 1.5 uses two)."""
    cur = dict(colors)
    cur_k = k
    for _ in range(rounds):
        nxt, nxt_k = linial_step(cur, out_neighbors, cur_k, d)
        if nxt_k >= cur_k:
            break  # no further progress at this palette size
        cur, cur_k = nxt, nxt_k
    return cur, cur_k
