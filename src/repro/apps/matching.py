"""Batch-dynamic maximal matching (Corollary 1.3).

Maintains a maximal matching of a graph whose density is promised to stay
below ``rho_max``, on top of ``LOWOUTDEGREE`` (Lemma 6.1).  The structures
mirror the paper's:

* ``mate`` — the matching (``D_match``/``D_used`` folded into one map);
* ``D_incoming(v)`` — the *unmatched* in-neighbours of ``v`` under the
  maintained orientation.

A free vertex can scan all its potential partners in
``O(rho_max + |D_incoming|)``: out-neighbours come from ``D_out`` (at most
``(2+eps) rho_max``), in-neighbours from ``D_incoming``.  After each batch
the freed/new vertices are re-matched with rounds of parallel proposals
(each target accepts one — CRCW arbitrary write), which terminates because
every accepted proposal matches two vertices permanently for the round.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants
from ..errors import CapacityError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel
from ..core.lowoutdegree import LowOutDegree
from ..pram.primitives import arbitrary_winners
from ..pram.sorting import parallel_sort


class MaximalMatching:
    """Maximal matching under a density promise ``rho_max``."""

    def __init__(
        self,
        rho_max: int,
        n: int,
        eps: float = 0.3,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
    ) -> None:
        self.rho_max = max(1, rho_max)
        self.cm = cm if cm is not None else CostModel()
        H = max(1, int(round(1.1 * self.rho_max)))
        self.lod = LowOutDegree(H, eps, n, cm=self.cm, constants=constants, seed=seed)
        self.mate: dict[int, int] = {}
        self.edges: set[tuple[int, int]] = set()
        self.d_incoming: dict[int, set[int]] = {}

    # -- queries -------------------------------------------------------------

    def is_matched(self, v: int) -> bool:
        return v in self.mate

    def matching(self) -> set[tuple[int, int]]:
        return {norm_edge(u, v) for u, v in self.mate.items() if u < v}

    # -- updates -------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = [norm_edge(u, v) for u, v in edges]
        self.lod.insert_batch(batch)
        self._check_promise()
        self.edges.update(batch)
        self._apply_orientation_changes(self.lod.d_ins)
        dirty = {v for e in batch for v in e if v not in self.mate}
        self._rematch(dirty)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = [norm_edge(u, v) for u, v in edges]
        self.lod.delete_batch(batch)
        self.edges.difference_update(batch)
        freed: set[int] = set()
        for u, v in batch:
            if self.mate.get(u) == v:
                del self.mate[u]
                del self.mate[v]
                freed.add(u)
                freed.add(v)
        self._apply_orientation_changes(self.lod.d_del)
        # purge deleted edges from D_incoming directly: the change table
        # covers edges the substrate re-oriented, but the index must drop
        # a deleted edge even if no change record mentions it
        for u, v in batch:
            self.d_incoming.get(u, set()).discard(v)
            self.d_incoming.get(v, set()).discard(u)
            self.cm.charge(work=1, depth=1)
        # freed vertices become visible as unmatched in-neighbours again
        for v in freed:
            self._broadcast_status(v)
        self._rematch(freed)

    def _check_promise(self) -> None:
        if not self.lod.guarantees_low():
            raise CapacityError(
                f"graph density exceeded the promised rho_max = {self.rho_max}"
            )

    # -- D_incoming maintenance ------------------------------------------------

    def _apply_orientation_changes(self, table) -> None:
        """React to D_ins/D_del: re-index unmatched in-neighbour sets."""
        for (a, b), orient in table.items():
            # remove both possible stale directions
            self.d_incoming.get(b, set()).discard(a)
            self.d_incoming.get(a, set()).discard(b)
            if orient is not None:
                tail, head = orient
                if tail not in self.mate:
                    self.d_incoming.setdefault(head, set()).add(tail)
            self.cm.charge(work=1, depth=1)

    def _broadcast_status(self, v: int) -> None:
        """Tell v's out-neighbours whether v is available (O(rho_max))."""
        available = v not in self.mate
        for w in self.lod.d_out(v):
            if available:
                self.d_incoming.setdefault(w, set()).add(v)
            else:
                self.d_incoming.get(w, set()).discard(v)
            self.cm.charge(work=1, depth=1)

    # -- re-matching rounds --------------------------------------------------------

    def _candidates(self, v: int) -> list[int]:
        d_out = self.lod.d_out(v)
        out = [
            w
            for w in d_out
            if w not in self.mate and norm_edge(v, w) in self.edges
        ]
        # D_incoming is an index, not ground truth: an entry can outlive
        # its edge (an exception or injected fault between the substrate
        # update and the re-index).  Never propose over a dead edge.
        inc = [
            u
            for u in self.d_incoming.get(v, ())
            if u not in self.mate and norm_edge(u, v) in self.edges
        ]
        self.cm.charge(work=len(d_out) + len(inc) + 1, depth=1)
        return sorted(set(out) | set(inc))

    def _rematch(self, dirty: set[int]) -> None:
        frontier = {v for v in dirty if v not in self.mate}
        while frontier:
            proposed: list[tuple[int, int]] = []
            with self.cm.parallel() as region:
                for v in sorted(frontier):
                    if v in self.mate:
                        continue
                    with region.branch():
                        cands = self._candidates(v)
                        if cands:
                            proposed.append((cands[0], v))
            if not proposed:
                break
            # CRCW arbitrary-write round: sort first so the winner per
            # target is canonical (Lemma 4.14/4.16 discipline).
            proposals = arbitrary_winners(
                parallel_sort(proposed, cm=self.cm), cm=self.cm
            )
            matched_now: set[int] = set()
            for target in sorted(proposals):
                v = proposals[target]
                if target in self.mate or v in self.mate:
                    continue
                self.mate[v] = target
                self.mate[target] = v
                matched_now.add(v)
                matched_now.add(target)
                self.cm.charge(work=1, depth=1)
            for v in matched_now:
                self._broadcast_status(v)
            frontier = {v for v in frontier if v not in self.mate}
            frontier.update(
                t for t in proposals if t not in self.mate and t not in matched_now
            )

    # -- verification -----------------------------------------------------------------

    def check_matching(self) -> None:
        """Validity + maximality against the live edge set (test helper)."""
        from ..errors import InvariantViolation

        for u, v in self.mate.items():
            if self.mate.get(v) != u:
                raise InvariantViolation(f"asymmetric mate entry {u}->{v}")
            if norm_edge(u, v) not in self.edges:
                raise InvariantViolation(f"matched edge {(u, v)} not in graph")
        for u, v in self.edges:
            if u not in self.mate and v not in self.mate:
                raise InvariantViolation(f"edge {(u, v)} violates maximality")
