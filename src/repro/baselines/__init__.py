"""Baselines: exact oracles and the dynamic comparators from prior work."""

from .brodal_fagerberg import BrodalFagerbergOrientation
from .exact_arboricity import (
    arboricity,
    can_partition_into_forests,
    nash_williams_brute,
)
from .exact_density import densest_subgraph, exact_density, greedy_peeling_density
from .exact_orientation import min_max_outdegree, orient_with_cap
from .exact_kcore import (
    core_numbers,
    degeneracy,
    max_coreness,
    parallel_core_numbers,
)
from .maxflow import Dinic
from .plds import LevelDataStructure
from .sawlani_wang import SawlaniWangOrientation
from .static_recompute import LazyRebuildCoreness, StaticRecompute

__all__ = [
    "BrodalFagerbergOrientation",
    "Dinic",
    "LazyRebuildCoreness",
    "LevelDataStructure",
    "SawlaniWangOrientation",
    "StaticRecompute",
    "arboricity",
    "can_partition_into_forests",
    "core_numbers",
    "degeneracy",
    "densest_subgraph",
    "exact_density",
    "greedy_peeling_density",
    "max_coreness",
    "min_max_outdegree",
    "orient_with_cap",
    "nash_williams_brute",
    "parallel_core_numbers",
]
