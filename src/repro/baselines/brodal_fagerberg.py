"""Amortized low out-degree orientation (Brodal–Fagerberg [BF99]).

The simple amortized scheme from Section 1.5: keep out-degrees at most
``cap`` (``cap ~= 5 * lambda``).  Insertion orients arbitrarily; when a
vertex exceeds the cap, *all* of its out-edges are flipped to incoming,
cascading.  Deletion does nothing.  Total work is amortized O(log n) flips
per update, but a single batch can trigger huge cascades — exactly the
bursty behaviour experiment E2 contrasts with our worst-case structure.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..errors import BatchError, ParameterError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel


class BrodalFagerbergOrientation:
    """Amortized orientation with hard out-degree cap."""

    def __init__(self, cap: int, cm: Optional[CostModel] = None) -> None:
        if cap < 1:
            raise ParameterError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self.out: dict[int, set[int]] = {}
        self.inn: dict[int, set[int]] = {}
        self.cm = cm
        self.flips_last_update = 0

    def outdeg(self, v: int) -> int:
        return len(self.out.get(v, ()))

    def max_outdegree(self) -> int:
        return max((len(s) for s in self.out.values()), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.out.get(u, set()) or u in self.out.get(v, set())

    def insert(self, u: int, v: int) -> None:
        norm_edge(u, v)
        if self.has_edge(u, v):
            raise BatchError(f"edge ({u}, {v}) already present")
        self._add_arc(u, v)
        self._tick()
        self.flips_last_update = self._cascade(u)

    def delete(self, u: int, v: int) -> None:
        if v in self.out.get(u, set()):
            self._remove_arc(u, v)
        elif u in self.out.get(v, set()):
            self._remove_arc(v, u)
        else:
            raise BatchError(f"edge ({u}, {v}) not present")
        self._tick()
        self.flips_last_update = 0  # BF does nothing on deletion

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.insert(u, v)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.delete(u, v)

    def _cascade(self, start: int) -> int:
        """Flip-all cascades until every vertex is within cap."""
        flips = 0
        q = deque([start])
        guard = 0
        total_arcs = sum(len(s) for s in self.out.values())
        # amortized analysis bounds a feasible cascade well below this;
        # an infeasible cap (below the arboricity regime) cycles forever
        limit = 10_000 + 200 * max(1, total_arcs)
        while q:
            guard += 1
            if guard > limit:
                raise RuntimeError(
                    "BF cascade did not settle — cap likely below the "
                    "graph's arboricity regime (the [BF99] precondition)"
                )
            x = q.popleft()
            if self.outdeg(x) <= self.cap:
                continue
            victims = list(self.out.get(x, ()))
            for y in victims:
                self._remove_arc(x, y)
                self._add_arc(y, x)
                flips += 1
                self._tick()
                if self.outdeg(y) > self.cap:
                    q.append(y)
        return flips

    def _add_arc(self, u: int, v: int) -> None:
        self.out.setdefault(u, set()).add(v)
        self.inn.setdefault(v, set()).add(u)

    def _remove_arc(self, u: int, v: int) -> None:
        self.out[u].discard(v)
        self.inn[v].discard(u)

    def _tick(self, w: int = 1) -> None:
        if self.cm is not None:
            self.cm.tick(w)

    def check_cap(self) -> None:
        bad = [v for v in self.out if self.outdeg(v) > self.cap]
        if bad:
            raise AssertionError(f"vertices over cap: {bad[:5]}")
