"""Exact arboricity via matroid partition (Edmonds augmenting paths).

``can_partition_into_forests(g, k)`` decides whether the edge set splits
into ``k`` forests by incrementally inserting edges with augmenting-path
relocation in the exchange graph of the k-fold graphic matroid union.
``arboricity`` searches the smallest feasible ``k`` starting from the
Nash-Williams lower bound ``max ceil(m/(n-1))`` and stopping at the
degeneracy upper bound.

Also provides :func:`nash_williams_brute` (exponential; tiny graphs only)
used by the tests to cross-validate, per Lemma 2.5.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from math import ceil
from typing import Optional

from ..errors import ParameterError
from ..graphs.graph import DynamicGraph, Edge, norm_edge
from .exact_kcore import degeneracy


class _Forest:
    """One forest of the partition: adjacency + path queries."""

    def __init__(self) -> None:
        self.adj: dict[int, set[int]] = {}

    def add(self, e: Edge) -> None:
        u, v = e
        self.adj.setdefault(u, set()).add(v)
        self.adj.setdefault(v, set()).add(u)

    def remove(self, e: Edge) -> None:
        u, v = e
        self.adj[u].discard(v)
        self.adj[v].discard(u)

    def path(self, src: int, dst: int) -> Optional[list[Edge]]:
        """Edge path src -> dst inside the forest, or None if disconnected."""
        if src not in self.adj or dst not in self.adj:
            return None
        parent: dict[int, int] = {src: src}
        q = deque([src])
        while q:
            u = q.popleft()
            if u == dst:
                out: list[Edge] = []
                while u != src:
                    out.append(norm_edge(u, parent[u]))
                    u = parent[u]
                return out
            for w in self.adj.get(u, ()):
                if w not in parent:
                    parent[w] = u
                    q.append(w)
        return None

    def creates_cycle(self, e: Edge) -> bool:
        return self.path(e[0], e[1]) is not None

    def is_acyclic(self) -> bool:
        seen: set[int] = set()
        for root in self.adj:
            if root in seen:
                continue
            parent: dict[int, int] = {root: root}
            seen.add(root)
            q = deque([root])
            while q:
                u = q.popleft()
                for w in self.adj.get(u, ()):
                    if w not in parent:
                        parent[w] = u
                        seen.add(w)
                        q.append(w)
                    elif w != parent[u]:
                        return False
        return True


def can_partition_into_forests(g: DynamicGraph, k: int) -> Optional[list[set[Edge]]]:
    """Partition edges into ``k`` forests, or None if impossible."""
    if k < 0:
        raise ParameterError("k must be >= 0")
    if g.m == 0:
        return [set() for _ in range(k)]
    if k == 0:
        return None
    forests = [_Forest() for _ in range(k)]
    where: dict[Edge, int] = {}

    for e in sorted(g.edges):
        if not _augment(forests, where, e, k):
            return None
    out: list[set[Edge]] = [set() for _ in range(k)]
    for edge, i in where.items():
        out[i].add(edge)
    return out


def _augment(forests: list[_Forest], where: dict[Edge, int], root: Edge, k: int) -> bool:
    """BFS in the exchange graph to make room for ``root``."""
    parent: dict[Edge, tuple[Edge, int]] = {}  # y -> (x, i): x enters i once y leaves
    visited: set[Edge] = {root}
    q: deque[Edge] = deque([root])
    while q:
        x = q.popleft()
        x_home = where.get(x)  # None only for the root
        for i in range(k):
            if i == x_home:
                continue
            cycle = forests[i].path(x[0], x[1])
            if cycle is None:
                # forest i accepts x directly -> unwind the chain
                _relocate(forests, where, x, i, parent)
                return True
            for y in cycle:
                if y not in visited:
                    visited.add(y)
                    parent[y] = (x, i)
                    q.append(y)
    return False


def _relocate(
    forests: list[_Forest],
    where: dict[Edge, int],
    x: Edge,
    dest: int,
    parent: dict[Edge, tuple[Edge, int]],
) -> None:
    """Move ``x`` into ``dest`` and cascade the parent chain."""
    while True:
        old = where.get(x)
        if old is not None:
            forests[old].remove(x)
        forests[dest].add(x)
        where[x] = dest
        if x not in parent:
            return
        nxt, into = parent[x]
        # x vacated its old forest, which is exactly the forest nxt waits on.
        if old is not None and old != into:
            raise AssertionError("exchange-chain bookkeeping broken")
        x, dest = nxt, into


def arboricity(g: DynamicGraph) -> int:
    """Exact arboricity (0 for edgeless graphs)."""
    if g.m == 0:
        return 0
    n_touched = len({v for e in g.edges for v in e})
    lower = max(1, ceil(g.m / max(1, n_touched - 1)))
    upper = max(lower, degeneracy(g))
    for k in range(lower, upper + 1):
        if can_partition_into_forests(g, k) is not None:
            return k
    return upper  # degeneracy always suffices


def nash_williams_brute(g: DynamicGraph) -> int:
    """Nash-Williams formula by brute force over vertex subsets (tiny n!)."""
    touched = sorted({v for e in g.edges for v in e})
    if len(touched) > 16:
        raise ParameterError("brute force limited to <= 16 touched vertices")
    best = 0
    for size in range(2, len(touched) + 1):
        for sub in combinations(touched, size):
            keep = set(sub)
            m_sub = sum(1 for (u, v) in g.edges if u in keep and v in keep)
            best = max(best, ceil(m_sub / (size - 1)))
    return best
