"""Exact and approximate densest subgraph — the ρ(G) oracle.

* :func:`densest_subgraph` — Goldberg's flow-based exact algorithm:
  binary search on the density ``g``; the min cut of the classic network
  equals ``n*m - 2 * max_S(|E[S]| - g*|S|)``, so a cut below ``n*m``
  certifies a subgraph of density > g.  Distinct subgraph densities are
  rationals with denominator <= n, hence the search stops once the interval
  is below ``1/(n*(n-1))``.  Used as the oracle in tests/benches (small to
  medium graphs).
* :func:`greedy_peeling_density` — Charikar's peeling 1/2-approximation,
  linear-time, used at larger scales and as a cross-check.
"""

from __future__ import annotations

from ..graphs.graph import DynamicGraph
from .maxflow import Dinic


def greedy_peeling_density(g: DynamicGraph) -> tuple[float, set[int]]:
    """Charikar's peeling: returns (density, S) with density >= rho(G)/2.

    Peels a minimum-degree vertex at a time; the best prefix density over
    the peeling order is returned.
    """
    import heapq

    alive = {v for v in range(g.n) if g.degree(v) > 0}
    # Include isolated vertices only if the graph is empty of edges.
    if not alive:
        return 0.0, set(range(g.n)) if g.n else set()
    cur = {v: g.degree(v) for v in sorted(alive)}
    edges_left = g.m
    heap = [(d, v) for v, d in cur.items()]
    heapq.heapify(heap)
    removed: set[int] = set()
    order: list[int] = []
    best_density = edges_left / len(alive)
    best_prefix = 0  # peel nothing
    while len(removed) < len(alive):
        d, v = heapq.heappop(heap)
        if v in removed or d != cur[v]:
            continue
        removed.add(v)
        order.append(v)
        edges_left -= cur[v]
        for w in g.neighbors(v):
            if w in alive and w not in removed:
                cur[w] -= 1
                heapq.heappush(heap, (cur[w], w))
        rest = len(alive) - len(removed)
        if rest > 0:
            density = edges_left / rest
            if density > best_density:
                best_density = density
                best_prefix = len(order)
    surviving = alive - set(order[:best_prefix])
    return best_density, surviving


def densest_subgraph(g: DynamicGraph) -> tuple[float, set[int]]:
    """Goldberg's exact densest subgraph: returns (rho(G), argmax S).

    Empty-edge graphs have density 0 (best S = any single vertex).
    """
    m = g.m
    if m == 0:
        return 0.0, {0} if g.n else set()
    vertices = sorted(g.touched_vertices())
    index = {v: i for i, v in enumerate(vertices)}
    nv = len(vertices)
    degs = {v: g.degree(v) for v in vertices}

    def min_cut_side(gamma: float) -> set[int]:
        """Source side (original vertex ids) of a min cut at density gamma."""
        # nodes: 0..nv-1 vertices, nv = source, nv+1 = sink
        s, t = nv, nv + 1
        net = Dinic(nv + 2)
        for v in vertices:
            net.add_edge(s, index[v], float(m))
            net.add_edge(index[v], t, float(m) + 2.0 * gamma - degs[v])
        for (u, v) in g.edges:
            net.add_edge(index[u], index[v], 1.0)
            net.add_edge(index[v], index[u], 1.0)
        net.max_flow(s, t)
        side = net.min_cut_side(s)
        return {vertices[i] for i in side if i < nv}

    lo, hi = 0.0, float(m)
    best_set: set[int] = set()
    # best starting point: whole touched graph
    best_set = set(vertices)
    gap = 1.0 / (nv * (nv + 1))
    while hi - lo > gap:
        gamma = (lo + hi) / 2.0
        side = min_cut_side(gamma)
        if side:
            best_set = side
            lo = gamma
        else:
            hi = gamma
    rho = g.density_of(best_set)
    # Polish: peeling can only help if flow numerics returned a slack set.
    greedy_rho, greedy_set = greedy_peeling_density(g)
    if greedy_rho > rho:
        rho, best_set = greedy_rho, greedy_set
    return rho, best_set


def exact_density(g: DynamicGraph) -> float:
    """``rho(G)``: the exact maximum subgraph density."""
    return densest_subgraph(g)[0]
