"""Exact coreness via peeling — the ground truth for every experiment.

Two implementations:

* :func:`core_numbers` — the classic O(m) bucket-peeling algorithm
  (Batagelj–Zaveršnik), sequential, used as the oracle in tests.
* :func:`parallel_core_numbers` — layer-synchronous peeling ("peel all
  vertices of degree <= k at once"), the standard parallel formulation
  (Julienne [DBS17] style), with work/depth accounting.  Its *depth* is
  Θ(peeling rounds), which can be Θ(n) on a path — this is exactly the
  reason the paper's batch-dynamic approach is interesting, and experiment
  E9 uses it as the static-parallel comparator.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.graph import DynamicGraph
from ..instrument.work_depth import CostModel


def core_numbers(g: DynamicGraph) -> dict[int, int]:
    """Exact coreness of every vertex (min-degree peeling, O(m log n)).

    Repeatedly removes a minimum-residual-degree vertex; the coreness of a
    vertex is the largest minimum degree seen up to its removal (the
    standard degeneracy-ordering argument).  Heap with lazy deletion.
    """
    import heapq

    cur = {v: g.degree(v) for v in range(g.n)}
    heap = [(d, v) for v, d in cur.items()]
    heapq.heapify(heap)
    removed = [False] * g.n if g.n else []
    core: dict[int, int] = {}
    k = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != cur[v]:
            continue  # stale entry
        removed[v] = True
        k = max(k, d)
        core[v] = k
        for w in g.neighbors(v):
            if not removed[w]:
                cur[w] -= 1
                heapq.heappush(heap, (cur[w], w))
    return core


def degeneracy(g: DynamicGraph) -> int:
    """The graph degeneracy = max coreness (0 for empty graphs)."""
    cores = core_numbers(g)
    return max(cores.values(), default=0)


def parallel_core_numbers(
    g: DynamicGraph, cm: Optional[CostModel] = None
) -> tuple[dict[int, int], int]:
    """Layer-synchronous peeling; returns (coreness map, #peel rounds).

    Each round removes *all* vertices whose residual degree is <= the
    current k in parallel (O(removed + their edges) work, O(1) depth per
    round after a parallel filter).  Depth is proportional to the number of
    rounds, which is the quantity the batch-dynamic algorithm avoids.
    """
    cur = {v: g.degree(v) for v in range(g.n)}
    alive = {v for v in range(g.n)}
    core: dict[int, int] = {v: 0 for v in range(g.n)}
    k = 0
    rounds = 0
    while alive:
        frontier = [v for v in sorted(alive) if cur[v] <= k]
        if cm is not None:
            cm.charge(work=len(alive), depth=1)  # the parallel filter
        if not frontier:
            k += 1
            continue
        while frontier:
            rounds += 1
            if cm is not None:
                work = len(frontier) + sum(len(g.neighbors(v)) for v in frontier)
                cm.charge(work=work, depth=1)
            next_frontier: list[int] = []
            for v in frontier:
                alive.discard(v)
                core[v] = k
            for v in frontier:
                for w in g.neighbors(v):
                    if w in alive:
                        cur[w] -= 1
            for v in sorted(set(w for u in frontier for w in g.neighbors(u) if w in alive)):
                if cur[v] <= k:
                    next_frontier.append(v)
            frontier = next_frontier
        k += 1
    return core, rounds


def max_coreness(g: DynamicGraph) -> int:
    """The degeneracy of ``g`` — equivalently its maximum coreness."""
    return degeneracy(g)


def verify_against_networkx(g: DynamicGraph) -> bool:
    """Cross-check :func:`core_numbers` against networkx (test helper)."""
    import networkx as nx

    ours = core_numbers(g)
    theirs = nx.core_number(g.to_networkx())
    return all(ours.get(v, 0) == theirs.get(v, 0) for v in range(g.n))
