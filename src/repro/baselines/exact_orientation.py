"""Exact minimum max-out-degree orientation (flow-based oracle).

The optimal low out-degree orientation problem the paper approximates has
a classic exact solution: orient with all out-degrees <= d iff the
bipartite flow network

    source --1--> (edge node) --1--> endpoint --d--> sink

saturates all m unit arcs.  Binary searching d gives the optimum
``d* = ceil(max_S |E[S]| / |S|)`` (Hakimi / Frank–Gyárfás), which
sandwiches the paper's certificate: rho(G) <= d* <= rho(G) + 1.
Used by the tests and experiment E7 as the orientation-quality oracle.
"""

from __future__ import annotations

from math import ceil
from typing import Optional

from ..errors import ParameterError
from ..graphs.graph import DynamicGraph, Edge
from .maxflow import Dinic


def orient_with_cap(g: DynamicGraph, d: int) -> Optional[dict[Edge, int]]:
    """An orientation with every out-degree <= d, or None if impossible.

    Returns a map edge -> tail vertex.
    """
    if d < 0:
        raise ParameterError("cap must be non-negative")
    edges = sorted(g.edges)
    if not edges:
        return {}
    if d == 0:
        return None
    vertices = sorted({v for e in edges for v in e})
    vid = {v: i for i, v in enumerate(vertices)}
    m, nv = len(edges), len(vertices)
    # nodes: 0..m-1 edges, m..m+nv-1 vertices, then source, sink
    s, t = m + nv, m + nv + 1
    net = Dinic(m + nv + 2)
    edge_arcs = []
    for i, (u, v) in enumerate(edges):
        net.add_edge(s, i, 1.0)
        a1 = net.add_edge(i, m + vid[u], 1.0)
        a2 = net.add_edge(i, m + vid[v], 1.0)
        edge_arcs.append((a1, a2))
    for v in vertices:
        net.add_edge(m + vid[v], t, float(d))
    flow = net.max_flow(s, t)
    if flow < m - 1e-9:
        return None
    orientation: dict[Edge, int] = {}
    for i, (u, v) in enumerate(edges):
        a1, _a2 = edge_arcs[i]
        # arc toward u consumed  <=>  u pays the out-degree  <=>  tail is u
        orientation[(u, v)] = u if net.cap[a1] < 0.5 else v
    return orientation


def min_max_outdegree(g: DynamicGraph) -> tuple[int, dict[Edge, int]]:
    """The optimal out-degree bound d* and a witness orientation."""
    if g.m == 0:
        return 0, {}
    touched = len({v for e in g.edges for v in e})
    lo = max(1, ceil(g.m / touched))  # density lower bound
    hi = max(lo, max(g.degree(v) for v in g.touched_vertices()))
    best: Optional[dict[Edge, int]] = None
    while lo < hi:
        mid = (lo + hi) // 2
        witness = orient_with_cap(g, mid)
        if witness is None:
            lo = mid + 1
        else:
            best = witness
            hi = mid
    if best is None:
        best = orient_with_cap(g, lo)
        if best is None:
            raise AssertionError("max degree cap must always be feasible")
    return lo, best


def verify_orientation(g: DynamicGraph, orientation: dict[Edge, int], cap: int) -> None:
    """Assert a returned orientation is complete, valid, and within cap."""
    if set(orientation) != g.edges:
        raise AssertionError("orientation does not cover the edge set")
    outdeg: dict[int, int] = {}
    for (u, v), tail in orientation.items():
        if tail not in (u, v):
            raise AssertionError(f"tail {tail} not an endpoint of {(u, v)}")
        outdeg[tail] = outdeg.get(tail, 0) + 1
    worst = max(outdeg.values(), default=0)
    if worst > cap:
        raise AssertionError(f"out-degree {worst} exceeds cap {cap}")
