"""Dinic's max-flow — the substrate under the exact densest-subgraph oracle.

Implemented from scratch (no networkx dependency in library code): level
BFS + blocking-flow DFS with the current-arc optimisation.  Capacities are
floats; the densest-subgraph construction uses values that keep the flows
numerically benign at test scale.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

INF = float("inf")


class Dinic:
    """Max-flow on a directed graph with ``add_edge(u, v, cap)``."""

    def __init__(self, num_nodes: int) -> None:
        self.n = num_nodes
        # Edge arrays: to[i], cap[i]; reverse edge is i ^ 1.
        self.to: list[int] = []
        self.cap: list[float] = []
        self.head: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge; returns its index (for later inspection)."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        idx = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self.head[u].append(idx)
        self.to.append(u)
        self.cap.append(0.0)
        self.head[v].append(idx + 1)
        return idx

    def _bfs(self, s: int, t: int) -> Optional[list[int]]:
        level = [-1] * self.n
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for idx in self.head[u]:
                v = self.to[idx]
                if self.cap[idx] > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    q.append(v)
        return level if level[t] >= 0 else None

    def _dfs(self, u: int, t: int, f: float, level: list[int], it: list[int]) -> float:
        if u == t:
            return f
        while it[u] < len(self.head[u]):
            idx = self.head[u][it[u]]
            v = self.to[idx]
            if self.cap[idx] > 1e-12 and level[v] == level[u] + 1:
                pushed = self._dfs(v, t, min(f, self.cap[idx]), level, it)
                if pushed > 1e-12:
                    self.cap[idx] -= pushed
                    self.cap[idx ^ 1] += pushed
                    return pushed
            it[u] += 1
        return 0.0

    def max_flow(self, s: int, t: int) -> float:
        """Total max flow from ``s`` to ``t`` (mutates residual capacities)."""
        flow = 0.0
        while True:
            level = self._bfs(s, t)
            if level is None:
                return flow
            it = [0] * self.n
            while True:
                pushed = self._dfs(s, t, INF, level, it)
                if pushed <= 1e-12:
                    break
                flow += pushed

    def min_cut_side(self, s: int) -> set[int]:
        """Source side of a min cut (call after :meth:`max_flow`)."""
        side: set[int] = {s}
        q = deque([s])
        while q:
            u = q.popleft()
            for idx in self.head[u]:
                v = self.to[idx]
                if self.cap[idx] > 1e-12 and v not in side:
                    side.add(v)
                    q.append(v)
        return side
