"""Simplified amortized level data structure (the Liu et al. comparator).

A sequential single-edge-at-a-time variant of the level data structure
(LDS) behind Liu, Shi, Yu, Dhulipala & Shun's amortized parallel
batch-dynamic coreness [LSY+22] (which in turn refines Bhattacharya et
al. [BHNT15] / Sun et al. [SCS20]).  This is the paper's primary point of
comparison: same style of estimate, but **amortized** update cost — a
single batch may trigger a large cascade of level moves, which is
precisely the behaviour experiment E2 exposes against our worst-case
structure.

Structure
---------
Vertices live on levels ``0 .. K``.  Levels are grouped; group ``j`` has
threshold ``T_j = (1 + delta)**j``.  With ``up(v)`` = number of neighbours
at level >= level(v) and ``up*(v)`` = number at level >= level(v) - 1:

* **Inv 1 (not too crowded):** ``up(v) <= C_UP * T_{g(level(v))}``
* **Inv 2 (high enough for a reason):** ``level(v) > 0  =>
  up*(v) >= T_{g(level(v) - 1)}``

``estimate(v) = T_{g(level(v))}`` tracks coreness within an O(1) factor
(up to the additive slack of small thresholds).  Updates fix invariant
violations by moving vertices up (Inv 1) or down (Inv 2) one level at a
time; each move perturbs only neighbours, which are re-examined via a
worklist.  Work is counted as neighbour examinations + moves.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..errors import BatchError, ConvergenceError, ParameterError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel

C_UP = 2.0


class LevelDataStructure:
    """Amortized coreness estimator via vertex levels."""

    def __init__(self, n: int, delta: float = 0.4, cm: Optional[CostModel] = None) -> None:
        if not (0 < delta <= 1):
            raise ParameterError(f"delta must be in (0, 1], got {delta}")
        self.n = max(2, n)
        self.delta = delta
        self.cm = cm
        self.levels_per_group = max(1, int(math.ceil(math.log(self.n, 1 + delta) / 4)))
        self.num_groups = max(1, int(math.ceil(math.log(self.n, 1 + delta))) + 2)
        self.max_level = self.levels_per_group * self.num_groups
        self.level: dict[int, int] = {}
        self.adj: dict[int, set[int]] = {}
        self.moves_last_update = 0

    # -- helpers -----------------------------------------------------------

    def _group(self, lvl: int) -> int:
        return lvl // self.levels_per_group

    def _threshold(self, group: int) -> float:
        return (1 + self.delta) ** group

    def _lvl(self, v: int) -> int:
        return self.level.get(v, 0)

    def _up(self, v: int) -> int:
        lv = self._lvl(v)
        self._tick(1 + len(self.adj.get(v, ())))
        return sum(1 for w in self.adj.get(v, ()) if self._lvl(w) >= lv)

    def _up_star(self, v: int) -> int:
        lv = self._lvl(v)
        self._tick(1 + len(self.adj.get(v, ())))
        return sum(1 for w in self.adj.get(v, ()) if self._lvl(w) >= lv - 1)

    def _tick(self, w: int = 1) -> None:
        if self.cm is not None:
            self.cm.tick(w)

    # -- public API -----------------------------------------------------------

    def estimate(self, v: int) -> float:
        """Coreness estimate (the group threshold of v's level)."""
        return self._threshold(self._group(self._lvl(v)))

    def insert(self, u: int, v: int) -> None:
        norm_edge(u, v)
        if v in self.adj.get(u, set()):
            raise BatchError(f"edge ({u}, {v}) already present")
        self.adj.setdefault(u, set()).add(v)
        self.adj.setdefault(v, set()).add(u)
        self._tick()
        self.moves_last_update = self._settle({u, v})

    def delete(self, u: int, v: int) -> None:
        if v not in self.adj.get(u, set()):
            raise BatchError(f"edge ({u}, {v}) not present")
        self.adj[u].discard(v)
        self.adj[v].discard(u)
        self._tick()
        self.moves_last_update = self._settle({u, v})

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> int:
        total = 0
        for u, v in edges:
            self.insert(u, v)
            total += self.moves_last_update
        self.moves_last_update = total
        return total

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> int:
        total = 0
        for u, v in edges:
            self.delete(u, v)
            total += self.moves_last_update
        self.moves_last_update = total
        return total

    # -- invariant restoration ---------------------------------------------------

    def _violates_inv1(self, v: int) -> bool:
        return self._up(v) > C_UP * self._threshold(self._group(self._lvl(v)))

    def _violates_inv2(self, v: int) -> bool:
        lv = self._lvl(v)
        if lv == 0:
            return False
        return self._up_star(v) < self._threshold(self._group(lv - 1))

    def _settle(self, dirty: set[int]) -> int:
        moves = 0
        stack = list(dirty)
        in_stack = set(dirty)
        budget = 200 * (len(self.adj) + 4) * self.max_level
        while stack:
            if moves > budget:
                raise ConvergenceError("LDS settle exceeded its move budget")
            v = stack.pop()
            in_stack.discard(v)
            moved = False
            if self._violates_inv1(v):
                if self._lvl(v) < self.max_level:
                    self.level[v] = self._lvl(v) + 1
                    moved = True
            elif self._violates_inv2(v):
                self.level[v] = self._lvl(v) - 1
                moved = True
            if moved:
                moves += 1
                self._tick()
                for z in list(self.adj.get(v, ())) + [v]:
                    if z not in in_stack:
                        stack.append(z)
                        in_stack.add(z)
        return moves

    # -- verification ---------------------------------------------------------------

    def check_invariants(self) -> None:
        for v in self.adj:
            if self._violates_inv1(v):
                raise AssertionError(f"Inv1 violated at {v} (level {self._lvl(v)})")
            if self._violates_inv2(v):
                raise AssertionError(f"Inv2 violated at {v} (level {self._lvl(v)})")
