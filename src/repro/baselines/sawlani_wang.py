"""Sequential worst-case balanced orientation (Sawlani–Wang-style).

The comparator from Section 1.5's technical overview: maintain the
orientation invariant that no edge drops more than one level in height
(height = out-degree) by fixing violated edges one at a time, per single
edge update.  Each fix flips one edge; the per-update flip count is the
quantity contrasted against our batch algorithm (experiments E2/E9: a
sequential algorithm has depth == work; no parallelism).

This is deliberately the *simple* reinterpretation the paper describes:
upon update, repeatedly flip any violated edge ``(x -> y)`` with
``delta+(x) > delta+(y) + 1``; the potential ``sum delta+(v)^2`` strictly
decreases with every flip, so the loop terminates and restores a balanced
orientation (Definition 3.1 with H = infinity).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import BatchError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel


class SawlaniWangOrientation:
    """Fully-dynamic balanced orientation, one edge update at a time."""

    def __init__(self, cm: Optional[CostModel] = None) -> None:
        self.out: dict[int, set[int]] = {}
        self.inn: dict[int, set[int]] = {}
        self.cm = cm
        self.flips_last_update = 0

    # -- queries ------------------------------------------------------------

    def outdeg(self, v: int) -> int:
        return len(self.out.get(v, ()))

    def max_outdegree(self) -> int:
        return max((len(s) for s in self.out.values()), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.out.get(u, set()) or u in self.out.get(v, set())

    def orientation_of(self, u: int, v: int) -> tuple[int, int]:
        if v in self.out.get(u, set()):
            return (u, v)
        if u in self.out.get(v, set()):
            return (v, u)
        raise BatchError(f"edge ({u}, {v}) not present")

    def edges(self) -> Iterable[tuple[int, int]]:
        for u, nbrs in self.out.items():
            for v in nbrs:
                yield (u, v)

    # -- updates ------------------------------------------------------------

    def insert(self, u: int, v: int) -> None:
        norm_edge(u, v)  # validates non-self-loop
        if self.has_edge(u, v):
            raise BatchError(f"edge ({u}, {v}) already present")
        if self.outdeg(u) > self.outdeg(v):
            u, v = v, u
        self._add_arc(u, v)
        self._tick()
        self.flips_last_update = self._fix_from({u, v})

    def delete(self, u: int, v: int) -> None:
        a, b = self.orientation_of(u, v)
        self._remove_arc(a, b)
        self._tick()
        self.flips_last_update = self._fix_from({a, b})

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.insert(u, v)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.delete(u, v)

    # -- rebalancing ----------------------------------------------------------

    def _fix_from(self, dirty: set[int]) -> int:
        """Flip violated edges until balanced; returns the flip count.

        Flipping (x -> y) only perturbs x and y, so a worklist of dirty
        vertices finds every violation.  Termination: each flip strictly
        decreases ``sum delta+(v)^2``.
        """
        flips = 0
        stack = list(dirty)
        in_stack = set(dirty)
        while stack:
            x = stack.pop()
            in_stack.discard(x)
            while True:
                self._tick(1 + self.outdeg(x) + len(self.inn.get(x, ())))
                flipped = self._fix_one(x)
                if flipped is None:
                    break
                flips += 1
                for z in flipped:
                    if z not in in_stack:
                        stack.append(z)
                        in_stack.add(z)
        return flips

    def _fix_one(self, x: int) -> Optional[tuple[int, int]]:
        """Fix one violation incident to x, if any; returns perturbed pair."""
        dx = self.outdeg(x)
        for y in self.out.get(x, ()):
            if dx > self.outdeg(y) + 1:
                self._flip(x, y)
                return (x, y)
        for w in self.inn.get(x, ()):
            if self.outdeg(w) > dx + 1:
                self._flip(w, x)
                return (w, x)
        return None

    def _add_arc(self, u: int, v: int) -> None:
        self.out.setdefault(u, set()).add(v)
        self.inn.setdefault(v, set()).add(u)

    def _remove_arc(self, u: int, v: int) -> None:
        self.out[u].discard(v)
        self.inn[v].discard(u)

    def _flip(self, x: int, y: int) -> None:
        self._remove_arc(x, y)
        self._add_arc(y, x)
        self._tick()

    def _tick(self, w: int = 1) -> None:
        if self.cm is not None:
            self.cm.tick(w)

    # -- verification -----------------------------------------------------------

    def check_balanced(self) -> None:
        for u, nbrs in self.out.items():
            for v in nbrs:
                if self.outdeg(u) > self.outdeg(v) + 1:
                    raise AssertionError(
                        f"violated edge ({u}->{v}): "
                        f"{self.outdeg(u)} > {self.outdeg(v)} + 1"
                    )
        for u, nbrs in self.out.items():
            for v in nbrs:
                if u not in self.inn.get(v, set()):
                    raise AssertionError("out/in adjacency out of sync")
