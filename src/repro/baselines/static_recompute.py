"""Recompute-from-scratch comparators.

* :class:`StaticRecompute` — runs exact peeling after **every** batch:
  perfect answers, Θ(n + m) work per batch regardless of batch size.  The
  "no dynamic algorithm" strawman every dynamic-algorithms paper measures
  against.
* :class:`LazyRebuildCoreness` — rebuilds only when the number of updates
  since the last rebuild exceeds ``tau * m``: the textbook *amortization*
  trick.  Mean per-batch work is low but individual batches spike to
  Θ(n + m) — a second, maximally transparent amortized comparator for
  experiment E2 (alongside the LDS).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..graphs.graph import DynamicGraph
from ..instrument.work_depth import CostModel
from .exact_kcore import core_numbers


class StaticRecompute:
    """Exact coreness, recomputed after every batch."""

    def __init__(self, n: int = 0, cm: Optional[CostModel] = None) -> None:
        self.graph = DynamicGraph(n)
        self.cm = cm
        self.core: dict[int, int] = {}

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        self.graph.insert_batch(edges)
        self._recompute()

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        self.graph.delete_batch(edges)
        self._recompute()

    def _recompute(self) -> None:
        if self.cm is not None:
            self.cm.charge(work=self.graph.n + 2 * self.graph.m, depth=self.graph.n + 1)
        self.core = core_numbers(self.graph)

    def estimate(self, v: int) -> int:
        return self.core.get(v, 0)


class LazyRebuildCoreness:
    """Exact-at-rebuild coreness with amortized (bursty) update cost."""

    def __init__(self, n: int = 0, tau: float = 0.25, cm: Optional[CostModel] = None) -> None:
        self.graph = DynamicGraph(n)
        self.tau = tau
        self.cm = cm
        self.core: dict[int, int] = {}
        self.pending = 0
        self.rebuilds = 0

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = self.graph.insert_batch(edges)
        self._maybe_rebuild(len(batch))

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = self.graph.delete_batch(edges)
        self._maybe_rebuild(len(batch))

    def _maybe_rebuild(self, batch_size: int) -> None:
        self.pending += batch_size
        if self.cm is not None:
            self.cm.charge(work=batch_size, depth=1)
        if self.pending > self.tau * max(1, self.graph.m) or not self.core:
            if self.cm is not None:
                self.cm.charge(
                    work=self.graph.n + 2 * self.graph.m, depth=self.graph.n + 1
                )
            self.core = core_numbers(self.graph)
            self.pending = 0
            self.rebuilds += 1

    def estimate(self, v: int) -> int:
        """Stale-but-bounded estimate (exact as of the last rebuild)."""
        return self.core.get(v, 0)
