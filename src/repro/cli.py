"""Command-line interface.

Core subcommands::

    repro generate --family planted --n 60 --m 200 --pattern churn \\
                   --batch-size 16 --out trace.txt
    repro run      --trace trace.txt --mode both --eps 0.35
    repro profile  --trace trace.txt --bench-out . --name smoke --check
    repro exact    --trace trace.txt
    repro chaos    --structure all --trials 10 --faults 2 --seed 0
    repro verify   --trace trace.txt --deep-every 8
    repro verify   diff --batches 200 --deep-every 25
    repro verify   --replay repro.json
    repro scenarios --scale ci --soak both
    repro scenarios --scenario sliding-window-churn --scale large \\
                    --trace-out window.trace
    repro serve     --data-dir state/ --port 9090 --serve-metrics 0

``generate`` writes a batch-update trace (see repro.graphs.tracefile);
``run`` replays it through the batch-dynamic structures and reports the
maintained estimates plus work/depth metrics (``--telemetry`` streams a
JSONL span/event log, ``--progress K`` logs every K-th batch); ``profile``
replays with phase-scoped telemetry armed and prints the phase tree
(docs/OBSERVABILITY.md), optionally writing ``BENCH_<name>.json``;
``exact`` replays it into a plain graph and reports the exact measures
for comparison; ``chaos`` soaks the structures under seeded fault
injection (docs/ROBUSTNESS.md) and reports which recovery tiers fired;
``verify`` audits a replay against the exact oracles, ``verify diff``
replays one stream through every execution configuration and diffs
per-batch outputs, and ``verify --replay`` re-runs a minimized repro
artifact (docs/VERIFICATION.md); ``scenarios`` drives the adversarial
scenario engine — soak a hardness-informed workload through chaos and/or
the differential panel, or spill it out-of-core to a trace file
(docs/SCENARIOS.md); ``serve`` runs the long-lived coreness service —
per-tenant ladders behind an asyncio JSON-lines protocol with
WAL-before-apply durability and epoch-snapshot queries
(docs/SERVICE.md).

``run`` streams its trace through the bounded-memory
:func:`~repro.graphs.tracefile.iter_trace` reader (one upfront
:func:`~repro.graphs.tracefile.scan_trace` validation pass), so replaying
a multi-million-edge trace holds only the live structures in memory —
never the op list.
"""

from __future__ import annotations

import argparse
import errno
import json
import pathlib
import sys
import threading
from typing import Optional, Sequence

from .baselines import core_numbers, exact_density, greedy_peeling_density
from .config import SUBSTRATES, Constants, ExecConfig
from .core import CorenessDecomposition, DensityEstimator
from .graphs import DynamicGraph, generators, streams
from .graphs.tracefile import (
    iter_trace,
    read_trace,
    scan_trace,
    validate_trace,
    write_trace,
)
from .instrument import BatchTimer, CostModel, render_table
from .instrument import trace as _trace
from .instrument.export import (
    JsonlSink,
    bench_payload,
    prometheus_text,
    render_phase_tree,
    write_bench_json,
)
from .instrument.telemetry import REGISTRY, Tracer

CONSTANTS = Constants(sample_c=0.5, min_B=4, duplication_cap=8)


def _make_edges(args) -> tuple[int, list]:
    if args.family == "er":
        return generators.erdos_renyi(args.n, args.m, seed=args.seed)
    if args.family == "ba":
        attach = max(1, args.m // max(1, args.n))
        return generators.barabasi_albert(args.n, attach, seed=args.seed)
    if args.family == "planted":
        block = max(4, args.n // 4)
        n, edges = generators.planted_dense(
            args.n, block=block, p_in=0.9, out_edges=args.m // 2, seed=args.seed
        )
        return n, edges
    raise SystemExit(f"unknown family {args.family!r}")


def cmd_generate(args) -> int:
    """Synthesise a batch-update trace and write it to ``--out``."""
    if args.pattern == "churn":
        # churn synthesizes its own edges; no base family needed
        ops = streams.churn(args.n, steps=args.steps, batch_size=args.batch_size, seed=args.seed)
    else:
        _n, edges = _make_edges(args)
        if args.pattern == "insert-only":
            ops = streams.insert_only(edges, args.batch_size)
        elif args.pattern == "window":
            ops = streams.sliding_window(edges, window=4, batch_size=args.batch_size)
        elif args.pattern == "insert-delete":
            ops = streams.insert_then_delete(edges, args.batch_size, seed=args.seed)
        else:
            raise SystemExit(f"unknown pattern {args.pattern!r}")
    validate_trace(ops)
    count = write_trace(ops, args.out)
    print(f"wrote {count} batches ({sum(op.size for op in ops)} edge updates) to {args.out}")
    return 0


def _exec_config(args) -> ExecConfig:
    """The execution-backend configuration the CLI flags describe."""
    return ExecConfig(
        workers=getattr(args, "workers", 1),
        rung_skip=bool(getattr(args, "rung_skip", False)),
        task_timeout=getattr(args, "task_timeout", None),
        task_retries=getattr(args, "task_retries", 2),
        substrate=getattr(args, "substrate", "treap"),
        shared_state=bool(getattr(args, "shared_state", False)),
    )


def _build_structures(
    args, n: int, cm: CostModel, executor: object = None
) -> list[tuple[str, object]]:
    rung_skip = bool(getattr(args, "rung_skip", False))
    substrate = getattr(args, "substrate", "treap")
    structures: list[tuple[str, object]] = []
    if args.mode in ("coreness", "both"):
        structures.append(
            (
                "coreness",
                CorenessDecomposition(
                    n, eps=args.eps, cm=cm, constants=CONSTANTS,
                    executor=executor, rung_skip=rung_skip, substrate=substrate,
                ),
            )
        )
    if args.mode in ("density", "both"):
        structures.append(
            (
                "density",
                DensityEstimator(
                    n, eps=args.eps, cm=cm, constants=CONSTANTS,
                    executor=executor, rung_skip=rung_skip, substrate=substrate,
                ),
            )
        )
    if not structures:
        raise SystemExit(f"unknown mode {args.mode!r}")
    return structures


def _replay(
    ops, structures, timer: BatchTimer, progress: int = 0, total: Optional[int] = None
) -> None:
    """Drive every batch through every structure (phase-span instrumented).

    ``ops`` may be any iterable — including a lazy
    :func:`~repro.graphs.tracefile.iter_trace` generator — so pass
    ``total`` (the known batch count) when progress events should report
    it without forcing materialisation.
    """
    for i, op in enumerate(ops):
        with _trace.span("batch", detail={"index": i, "kind": op.kind, "edges": op.size}):
            with timer.batch(op.kind, op.size):
                for name, st in structures:
                    with _trace.span("structure", structure=name):
                        if op.kind == "insert":
                            st.insert_batch(op.edges)
                        else:
                            st.delete_batch(op.edges)
        if progress and (i + 1) % progress == 0:
            _trace.event(
                "progress",
                batch=i + 1,
                batches=total if total is not None else len(ops),
                work=timer.cm.work,
                depth=timer.cm.depth,
            )


def _progress_sink(stream=None):
    """A tracer sink printing ``progress`` events to ``stream`` (stderr)."""
    stream = stream if stream is not None else sys.stderr

    def sink(ev: dict) -> None:
        if ev.get("type") == "event" and ev.get("name") == "progress":
            print(
                f"[progress] batch {ev['batch']}/{ev['batches']}"
                f"  work={ev['work']}  depth={ev['depth']}",
                file=stream,
            )

    return sink


def _serve_metrics_or_die(registry, port: int):
    """Start the metrics HTTP server; die with one clean line if the port
    is taken.  ``PORT 0`` asks the kernel for an ephemeral port — the one
    actually bound is in the printed URL (docs/OBSERVABILITY.md)."""
    from .instrument.live import serve_metrics

    try:
        server = serve_metrics(registry, port)
    except OSError as exc:
        if exc.errno == errno.EADDRINUSE:
            raise SystemExit(
                f"error: metrics port {port} is already in use "
                "(pass --serve-metrics 0 to bind an ephemeral port)"
            ) from None
        raise
    print(f"serving metrics on {server.url}", file=sys.stderr)
    return server


def cmd_run(args) -> int:
    """Replay a trace through the maintained structures; print metrics.

    Out-of-core: one :func:`scan_trace` pass validates the file and sizes
    the vertex universe, then the replay itself drains a lazy
    :func:`iter_trace` generator — the op list never materialises.

    ``--live`` attaches the terminal dashboard (progress, throughput,
    ETA, hottest spans — docs/OBSERVABILITY.md) as an extra tracer sink;
    ``--serve-metrics PORT`` additionally exposes the metrics registry as
    Prometheus text on ``http://127.0.0.1:PORT/metrics`` (``PORT 0`` binds
    an ephemeral port, printed to stderr).  The server used to vanish the
    instant the replay finished — too fast for any scraper on short runs —
    so ``--metrics-linger SECONDS`` now keeps it up after the summary
    prints.  Neither touches the cost model.
    """
    info = scan_trace(args.trace)
    n = max(info.vertices, 2)
    cm = CostModel()
    REGISTRY.clear()
    timer = BatchTimer(cm, registry=REGISTRY)
    executor = _exec_config(args).make_executor()
    live = bool(getattr(args, "live", False))
    serve_port = getattr(args, "serve_metrics", None)
    linger = max(0.0, getattr(args, "metrics_linger", 0.0) or 0.0)
    dashboard = None
    server = None
    try:
        if serve_port is not None:
            server = _serve_metrics_or_die(REGISTRY, serve_port)
        structures = _build_structures(args, n, cm, executor=executor)

        progress = getattr(args, "progress", 0)
        telemetry = getattr(args, "telemetry", None)
        jsonl = None
        if telemetry or progress or live:
            sinks: list = []
            if telemetry:
                jsonl = JsonlSink(telemetry)
                sinks.append(jsonl)
            if progress:
                sinks.append(_progress_sink())
            if live:
                from .instrument.live import LiveDashboard

                dashboard = LiveDashboard(
                    REGISTRY, sys.stderr, total_batches=info.batches
                )
                sinks.append(dashboard)
            tracer = Tracer(cm, sinks=sinks, registry=REGISTRY if live else None)
            try:
                with _trace.tracing(tracer):
                    _replay(
                        iter_trace(args.trace),
                        structures,
                        timer,
                        progress=progress,
                        total=info.batches,
                    )
            finally:
                if jsonl is not None:
                    jsonl.close()
            if telemetry:
                print(f"wrote {jsonl.events_written} telemetry events to {telemetry}")
        else:
            _replay(iter_trace(args.trace), structures, timer)
    finally:
        if dashboard is not None:
            dashboard.close()
        # on the happy path with --metrics-linger the server outlives the
        # replay (the satellite fix: short runs were un-scrape-able); an
        # exception still tears it down here.
        if server is not None and (not linger or sys.exc_info()[0] is not None):
            server.close()
            server = None
        executor.close()

    series = timer.series
    rows = [
        ("batches", len(series.records)),
        ("edge updates", series.total_edges()),
        ("mean work/edge", f"{series.mean_work_per_edge():.0f}"),
        ("p99 work/edge", f"{series.percentile_work_per_edge(99):.0f}"),
        ("max batch depth", series.max_depth()),
    ]
    for name, st in structures:
        if name == "coreness":
            ests = st.estimates()
            top = sorted(ests.items(), key=lambda kv: -kv[1])[: args.top]
            rows.append(("max core_alg", f"{st.max_estimate():.1f}"))
            rows.append(
                ("top vertices", " ".join(f"{v}:{e:.0f}" for v, e in top))
            )
        else:
            rows.append(("rho_alg", f"{st.density_estimate():.2f}"))
            rows.append(("lambda_alg", f"{st.arboricity_estimate():.2f}"))
            rows.append(("orientation max d+", st.max_outdegree()))
    print(render_table(["metric", "value"], rows))
    if server is not None:
        print(
            f"metrics stay up on {server.url} for {linger:.0f}s more "
            "(ctrl-C to release early)",
            file=sys.stderr,
        )
        try:
            threading.Event().wait(linger)
        except KeyboardInterrupt:
            pass
        server.close()
    return 0


def cmd_profile(args) -> int:
    """Replay a trace with telemetry armed; print the phase tree.

    ``--bench-out DIR`` writes the machine-readable ``BENCH_<name>.json``
    perf summary; ``--prom PATH`` dumps the metrics registry in Prometheus
    text exposition; ``--overhead`` prints the executor's wall-clock
    overhead ledger (per-rung pickle/queue/compute attribution plus the
    coordinator timeline — docs/OBSERVABILITY.md); ``--check`` replays a
    second time *disarmed* and fails if work, depth, or any counter
    differs — the tracing-never-perturbs-the-cost-model guarantee,
    enforced end to end.
    """
    ops = read_trace(args.trace)
    n = max(validate_trace(ops), 2)
    executor = _exec_config(args).make_executor()

    def measure(armed: bool):
        cm = CostModel()
        REGISTRY.clear()
        timer = BatchTimer(cm, registry=REGISTRY)
        structures = _build_structures(args, n, cm, executor=executor)
        if not armed:
            _replay(ops, structures, timer)
            return cm, timer, None
        jsonl = JsonlSink(args.telemetry) if args.telemetry else None
        tracer = Tracer(cm, sinks=[jsonl] if jsonl else [])
        try:
            with _trace.tracing(tracer):
                _replay(ops, structures, timer)
        finally:
            if jsonl is not None:
                jsonl.close()
        return cm, timer, tracer

    try:
        return _profile_body(args, measure, executor)
    finally:
        executor.close()


def _profile_body(args, measure, executor=None) -> int:
    cm, timer, tracer = measure(armed=True)
    root = tracer.root
    if root.work != cm.work or root.total_self_work() != root.work:
        print(
            f"phase-tree accounting broken: root={root.work} "
            f"self-sum={root.total_self_work()} cost-model={cm.work}",
            file=sys.stderr,
        )
        return 1
    print(render_phase_tree(root, min_share=args.min_share))
    print(
        f"\nphase-tree work {root.work} == cost-model work {cm.work} (exact); "
        f"depth {cm.depth}"
    )

    if getattr(args, "overhead", False) and executor is not None:
        # printed before any --check re-run so the ledger reflects the
        # armed replay only.
        print()
        print(executor.stats.render())

    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(REGISTRY))
        print(f"wrote metrics exposition to {args.prom}")
    if args.bench_out:
        payload = bench_payload(
            args.name,
            timer.series,
            tree=root,
            extra={"trace": args.trace, "mode": args.mode, "eps": args.eps},
        )
        path = write_bench_json(args.bench_out, payload)
        print(f"wrote {path}")

    if args.check:
        cm2, _timer2, _ = measure(armed=False)
        armed_view = (cm.work, cm.depth, dict(cm.counters))
        bare_view = (cm2.work, cm2.depth, dict(cm2.counters))
        if armed_view != bare_view:
            print(
                "check FAILED: telemetry perturbed the cost model\n"
                f"  armed:    work={cm.work} depth={cm.depth}\n"
                f"  disarmed: work={cm2.work} depth={cm2.depth}",
                file=sys.stderr,
            )
            return 1
        print("check: armed and disarmed replays are bit-identical")
    return 0


def cmd_exact(args) -> int:
    """Exact offline measures of a trace's final graph."""
    ops = read_trace(args.trace)
    validate_trace(ops)
    g = DynamicGraph(0)
    streams.replay(ops, g)
    cores = core_numbers(g)
    rows = [
        ("vertices touched", len(g.touched_vertices())),
        ("live edges", g.m),
        ("max coreness", max(cores.values(), default=0)),
    ]
    if g.m <= 3000:
        rows.append(("exact rho", f"{exact_density(g):.3f}"))
    else:
        rows.append(("greedy rho (1/2-approx)", f"{greedy_peeling_density(g)[0]:.3f}"))
    print(render_table(["metric", "value"], rows))
    return 0


def cmd_chaos(args) -> int:
    """Chaos-soak the dynamic structures under seeded fault injection."""
    from .resilience.chaos import STRUCTURES, chaos_soak, render_soak_summary

    targets = list(STRUCTURES) if args.structure == "all" else [args.structure]
    reports = []
    for structure in targets:
        report = chaos_soak(
            structure,
            trials=args.trials,
            seed=args.seed,
            n=args.n,
            batches=args.batches,
            batch_size=args.batch_size,
            faults_per_trial=args.faults,
            constants=CONSTANTS,
            deep_audit=not args.no_deep_audit,
            minimize=args.minimize or bool(args.artifact_dir),
            artifact_dir=args.artifact_dir,
        )
        reports.append(report)
        print(report.render())
        print()
    print(render_soak_summary(reports))
    return 0 if all(r.ok for r in reports) else 1


def cmd_scenarios(args) -> int:
    """Drive the adversarial scenario engine (docs/SCENARIOS.md).

    Default: soak the catalog (or ``--scenario NAME``) through chaos
    fault injection and/or the five-config differential panel at the
    chosen ``--scale``; exit 0 iff every verdict is GREEN.
    ``--trace-out PATH`` instead spills one scenario's stream to a
    sealed trace file *out-of-core* — the stream is drained straight
    through a :class:`~repro.graphs.tracefile.TraceWriter`, so even the
    ``large`` (10^6 edge-update) scale never materialises in memory.
    """
    from .graphs.tracefile import write_stream
    from .scenarios import (
        get_scenario,
        params_for,
        render_scenario_summary,
        scenario_names,
        scenario_stream,
        soak_scenario,
    )

    if args.list:
        rows = [
            [name, "yes" if get_scenario(name).bounded_window else "no",
             get_scenario(name).summary]
            for name in scenario_names()
        ]
        print(render_table(["scenario", "windowed", "summary"], rows))
        return 0
    names = [args.scenario] if args.scenario else scenario_names()
    if args.trace_out:
        if len(names) != 1:
            raise SystemExit("scenarios: --trace-out requires an explicit --scenario")
        name = names[0]
        params = params_for(args.scale, seed=args.seed)
        with _trace.span("scenario.spill", scenario=name):
            write_stream(scenario_stream(name, params), args.trace_out)
        info = scan_trace(args.trace_out, strict=True)
        print(
            f"spilled {name} @ {args.scale} to {args.trace_out}: "
            f"{info.batches} batches, {info.edge_updates} edge updates, "
            f"max {info.max_live_edges} live edges, {info.vertices} vertices"
        )
        return 0
    dashboard = None
    server = None
    if getattr(args, "serve_metrics", None) is not None:
        server = _serve_metrics_or_die(REGISTRY, args.serve_metrics)
    if getattr(args, "live", False):
        # no tracer sink plumbing here — the dashboard ticks itself from
        # a daemon thread while the soak publishes into the registry.
        from .instrument.live import LiveDashboard

        dashboard = LiveDashboard(REGISTRY, sys.stderr)
        dashboard.start()
    reports = []
    try:
        for name in names:
            report = soak_scenario(
                name,
                scale=args.scale,
                seed=args.seed,
                mode=args.soak,
                trials=args.trials,
                faults_per_trial=args.faults,
                deep_every=args.deep_every,
                constants=CONSTANTS,
                minimize=args.minimize,
                artifact_dir=args.artifact_dir,
            )
            reports.append(report)
            print(report.render())
            print()
    finally:
        if dashboard is not None:
            dashboard.close()
        if server is not None:
            server.close()
    print(render_scenario_summary(reports))
    return 0 if all(r.ok for r in reports) else 1


def cmd_serve(args) -> int:
    """Run the coreness service (docs/SERVICE.md).

    A long-running asyncio server: per-tenant batch-dynamic ladders
    behind a JSON-lines TCP protocol — every accepted batch hits the
    tenant's WAL before it applies (the ack is the durability point),
    queries read an immutable epoch snapshot and never block on in-flight
    updates, restart recovers through checkpoint + WAL replay, and
    SIGTERM drains gracefully (commit the backlog, seal the WALs).
    ``--serve-metrics PORT`` exposes per-tenant ingest/query counters and
    latency histograms as Prometheus text; the metrics server lives as
    long as the service does.
    """
    import asyncio

    from .service import CorenessService

    service = CorenessService(
        args.data_dir,
        host=args.host,
        port=args.port,
        shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        sync=args.sync,
        max_pending=args.max_pending,
    )
    server = None
    if args.serve_metrics is not None:
        server = _serve_metrics_or_die(service.registry, args.serve_metrics)

    def ready() -> None:
        print(
            f"coreness service listening on {service.host}:{service.port} "
            f"({len(service.tenants)} tenants recovered)",
            flush=True,
        )

    try:
        asyncio.run(service.run(on_ready=ready))
    except OSError as exc:
        if exc.errno == errno.EADDRINUSE:
            raise SystemExit(
                f"error: service port {args.port} on {args.host} is already "
                "in use (pass --port 0 to bind an ephemeral port)"
            ) from None
        raise
    except KeyboardInterrupt:
        pass
    finally:
        if server is not None:
            server.close()
    print("coreness service drained and stopped", file=sys.stderr)
    return 0


def _load_bench_file(path: str) -> dict:
    """Read one ``BENCH_*.json`` payload (SystemExit on garbage)."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench: cannot read {path}: {exc}")
    if not isinstance(payload, dict):
        raise SystemExit(f"bench: {path} is not a JSON object")
    return payload


def cmd_bench(args) -> int:
    """Bench history: record runs, render trends, gate regressions.

    ``--record FILE...`` appends BENCH payloads into the history store
    (``--history-dir``, default ``.bench_history/``), keyed by
    (experiment, ``--config``, git sha).  ``--trend`` renders per-metric
    sparkline trends from the store.  ``--compare BASELINE`` gates
    ``--current`` payloads against a baseline file (or a directory of
    committed ``BENCH_*.json``), exiting 1 when wall-clock or peak-memory
    regresses beyond the noise threshold estimated from repeated-run
    variance (override with ``--threshold``).
    """
    from .instrument.history import BenchHistory, render_trend

    history = BenchHistory(args.history_dir)
    if args.record:
        for path in args.record:
            record = history.append(_load_bench_file(path), config=args.config)
            print(
                f"recorded {record['experiment']} @ {record['git_sha']} "
                f"({len(record['metrics'])} gated metrics)"
            )
        if not (args.trend or args.compare):
            return 0
    if args.trend:
        text = render_trend(
            history, experiment=args.experiment, metric=args.metric
        )
        print(text)
        if args.out:
            pathlib.Path(args.out).write_text(text + "\n")
            print(f"wrote trend table to {args.out}")
        if not args.compare:
            return 0
    if args.compare:
        if not args.current:
            raise SystemExit("bench: --compare requires --current FILE...")
        base_path = pathlib.Path(args.compare)
        regressions = []
        for path in args.current:
            current = _load_bench_file(path)
            if base_path.is_dir():
                candidate = base_path / f"BENCH_{current.get('name', '?')}.json"
                if not candidate.is_file():
                    print(f"no baseline for {current.get('name')}; skipping")
                    continue
                baseline = _load_bench_file(str(candidate))
            else:
                baseline = _load_bench_file(str(base_path))
            found = history.compare(
                baseline, current, config=args.config, threshold=args.threshold
            )
            gated = [
                m for m in sorted(set(history_metrics(baseline)))
                if m in history_metrics(current)
            ]
            name = current.get("name", path)
            if found:
                for reg in found:
                    print("REGRESSION " + reg.describe())
            else:
                print(f"{name}: {len(gated)} gated metric(s) within threshold")
            regressions.extend(found)
        if regressions:
            print(f"\n{len(regressions)} regression(s) past the noise gate")
            return 1
        print("\nno regressions")
        return 0
    raise SystemExit("bench: nothing to do (use --record, --trend, or --compare)")


def history_metrics(payload: dict) -> dict:
    """The gated metrics of one payload (re-exported for cmd_bench)."""
    from .instrument.history import extract_metrics

    return extract_metrics(payload)


def cmd_lint(args) -> int:
    """Run reprolint (see docs/STATIC_ANALYSIS.md) over the given paths.

    Every argument after ``lint`` is forwarded verbatim to the reprolint
    CLI, so new flags (``--fix``, ``--statistics``, ``--format sarif``,
    baseline/cache options) work without re-declaring them here.
    """
    from .analysis.cli import main as lint_main

    return lint_main(list(args.lint_args))


def cmd_verify(args) -> int:
    """Replay a trace auditing structure invariants after every batch.

    ``--replay ARTIFACT`` instead re-runs a minimized repro artifact
    (written by ``verify diff --artifact-out`` or the chaos harness) and
    exits 0 iff the recorded failure still reproduces.
    """
    from .verify import replay_artifact
    from .verify.audits import replay_audit

    if args.replay:
        reproduced, text = replay_artifact(args.replay)
        print(text)
        if reproduced:
            print("repro artifact REPRODUCED the recorded failure")
            return 0
        print("repro artifact did NOT reproduce — the failure moved or is fixed")
        return 1
    if not args.trace:
        raise SystemExit("verify: --trace is required (or use --replay ARTIFACT)")
    ops = read_trace(args.trace)
    validate_trace(ops)
    report = replay_audit(
        ops,
        H=args.height,
        constants=CONSTANTS,
        deep_every=args.deep_every,
        exec_config=_exec_config(args),
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_verify_diff(args) -> int:
    """Differential replay: one stream, every execution config, zero drift."""
    from .verify import (
        RunnerConfig,
        configs_by_name,
        default_configs,
        minimize_diff,
        run_diff,
        write_artifact,
    )

    if args.trace:
        ops = read_trace(args.trace)
    else:
        ops = streams.churn(
            args.n, steps=args.batches, batch_size=args.batch_size, seed=args.seed
        )
    n = max(validate_trace(ops), 2)
    if args.configs:
        panel = configs_by_name(
            [s.strip() for s in args.configs.split(",") if s.strip()]
        )
    else:
        panel = default_configs()
    if args.inject:
        site, _, rest = args.inject.partition(":")
        hit_s, _, action = rest.partition(":")
        panel = panel + [
            RunnerConfig(
                "injected",
                faults=((site, int(hit_s) if hit_s else 1, action or "raise"),),
                cost_class=None,
            )
        ]
    report = run_diff(
        ops,
        configs=panel,
        eps=args.eps,
        constants=CONSTANTS,
        seed=args.seed,
        n=n,
        deep_every=args.deep_every,
    )
    print(report.render())
    if report.ok:
        return 0
    if args.minimize or args.artifact_out:
        minimal, probe = minimize_diff(
            ops,
            report,
            configs=panel,
            eps=args.eps,
            constants=CONSTANTS,
            seed=args.seed,
            n=n,
            deep_every=args.deep_every,
        )
        print(
            f"\nminimized repro: {len(minimal)} batch(es), "
            f"{sum(op.size for op in minimal)} edge update(s)"
        )
        for op in minimal:
            print(f"  {op.kind} {list(op.edges)}")
        if args.artifact_out:
            path = write_artifact(
                args.artifact_out,
                kind="diff",
                ops=minimal,
                params={
                    "eps": args.eps,
                    "seed": args.seed,
                    "n": n,
                    "deep_every": args.deep_every,
                },
                configs=probe,
                constants=CONSTANTS,
                expected={
                    "divergences": [
                        f"batch {d.batch} [{d.config}] {d.observable}"
                        for d in report.divergences
                    ],
                    "oracle_findings": len(report.oracle_findings),
                },
            )
            print(f"wrote repro artifact to {path}")
    return 1


def _add_exec_args(sub: argparse.ArgumentParser) -> None:
    """Execution-backend flags shared by ``run`` and ``profile``."""
    sub.add_argument("--workers", type=int, default=1, metavar="N",
                     help="rung-sweep process count (1 = serial, the default)")
    sub.add_argument("--rung-skip", action="store_true",
                     help="defer provably-unaffected ladder rungs (perf opt)")
    sub.add_argument("--task-timeout", type=float, default=None, metavar="SEC",
                     help="treat a rung-task worker as hung after SEC seconds "
                          "(retried, then degraded to in-process; default: wait)")
    sub.add_argument("--task-retries", type=int, default=2, metavar="K",
                     help="pool-rebuild retry rounds before a failing rung "
                          "task degrades to in-process execution")
    sub.add_argument("--substrate", choices=SUBSTRATES, default="treap",
                     help="orientation-state storage layout (answers and "
                          "cost accounting are bit-identical; 'flat' is the "
                          "contiguous fast path, see docs/PERFORMANCE.md)")
    sub.add_argument("--shared-state", action="store_true",
                     help="with --workers > 1: keep rung state resident in "
                          "the workers and ship only per-rung deltas "
                          "(seeded once via multiprocessing.shared_memory)")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser with all subcommands attached."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write a batch-update trace file")
    g.add_argument("--family", default="er", choices=["er", "ba", "planted"])
    g.add_argument("--n", type=int, default=60)
    g.add_argument("--m", type=int, default=200)
    g.add_argument("--steps", type=int, default=40)
    g.add_argument("--batch-size", type=int, default=16)
    g.add_argument(
        "--pattern",
        default="insert-only",
        choices=["insert-only", "window", "churn", "insert-delete"],
    )
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", required=True)
    g.set_defaults(func=cmd_generate)

    r = sub.add_parser("run", help="replay a trace through the dynamic structures")
    r.add_argument("--trace", required=True)
    r.add_argument("--mode", default="both", choices=["coreness", "density", "both"])
    r.add_argument("--eps", type=float, default=0.35)
    r.add_argument("--top", type=int, default=5)
    r.add_argument("--telemetry", metavar="PATH",
                   help="write a JSONL span/event log to PATH")
    r.add_argument("--progress", type=int, default=0, metavar="K",
                   help="log every K-th batch via the telemetry event sink")
    r.add_argument("--live", action="store_true",
                   help="stream a live status line (progress, throughput, "
                        "ETA, hottest spans) to stderr")
    r.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="expose the metrics registry as Prometheus text on "
                        "http://127.0.0.1:PORT/metrics for the run "
                        "(PORT 0 = ephemeral; the bound URL is printed)")
    r.add_argument("--metrics-linger", type=float, default=0.0, metavar="SEC",
                   help="keep the --serve-metrics server up SEC seconds "
                        "after the replay so scrapers can still reach it")
    _add_exec_args(r)
    r.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "profile", help="replay a trace with phase-scoped telemetry armed"
    )
    p.add_argument("--trace", required=True)
    p.add_argument("--mode", default="both", choices=["coreness", "density", "both"])
    p.add_argument("--eps", type=float, default=0.35)
    p.add_argument("--min-share", type=float, default=0.01,
                   help="prune phase-tree rows below this work share")
    p.add_argument("--name", default="profile",
                   help="BENCH payload name (file becomes BENCH_<name>.json)")
    p.add_argument("--bench-out", metavar="DIR",
                   help="write BENCH_<name>.json under DIR")
    p.add_argument("--telemetry", metavar="PATH",
                   help="write a JSONL span/event log to PATH")
    p.add_argument("--prom", metavar="PATH",
                   help="dump the metrics registry as Prometheus text")
    p.add_argument("--overhead", action="store_true",
                   help="print the executor wall-clock overhead ledger "
                        "(per-rung pickle/queue/compute attribution)")
    p.add_argument("--check", action="store_true",
                   help="replay disarmed too; fail on any work/depth/counter drift")
    _add_exec_args(p)
    p.set_defaults(func=cmd_profile)

    e = sub.add_parser("exact", help="exact offline measures of a trace's final graph")
    e.add_argument("--trace", required=True)
    e.set_defaults(func=cmd_exact)

    v = sub.add_parser(
        "verify", help="replay a trace auditing structure invariants per batch"
    )
    v.add_argument("--trace", help="trace file to audit")
    v.add_argument("--height", type=int, default=5)
    v.add_argument("--deep-every", type=int, default=0,
                   help="also audit estimate bands every N batches (slow)")
    v.add_argument("--replay", metavar="ARTIFACT",
                   help="re-run a minimized repro artifact; exit 0 iff it "
                        "still reproduces the recorded failure")
    _add_exec_args(v)
    v.set_defaults(func=cmd_verify)
    v_sub = v.add_subparsers(dest="verify_cmd")
    d = v_sub.add_parser(
        "diff",
        help="replay one stream through every execution config and diff "
             "per-batch outputs (docs/VERIFICATION.md)",
    )
    d.add_argument("--trace", help="trace file (default: generate a churn stream)")
    d.add_argument("--n", type=int, default=32,
                   help="vertex count of the generated churn stream")
    d.add_argument("--batches", type=int, default=200,
                   help="batch count of the generated churn stream")
    d.add_argument("--batch-size", type=int, default=6)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--eps", type=float, default=0.35)
    d.add_argument("--deep-every", type=int, default=0,
                   help="audit the baseline vs the exact oracles every N batches")
    d.add_argument("--configs", metavar="A,B,...",
                   help="comma-separated panel (default: serial, process-2, "
                        "telemetry, rung-skip, chaos-recovered)")
    d.add_argument("--inject", metavar="SITE[:HIT[:ACTION]]",
                   help="add an un-recovered fault-injected config (the "
                        "harness must catch and shrink it)")
    d.add_argument("--minimize", action="store_true",
                   help="on divergence, ddmin-shrink the stream to a minimal repro")
    d.add_argument("--artifact-out", metavar="PATH",
                   help="write the minimized repro as a replayable artifact")
    d.set_defaults(func=cmd_verify_diff)

    c = sub.add_parser(
        "chaos", help="soak the structures under seeded fault injection"
    )
    c.add_argument(
        "--structure",
        default="all",
        choices=["all", "balanced", "coreness", "density"],
    )
    c.add_argument("--trials", type=int, default=10)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--n", type=int, default=24)
    c.add_argument("--batches", type=int, default=20)
    c.add_argument("--batch-size", type=int, default=6)
    c.add_argument("--faults", type=int, default=2,
                   help="planned fault injections per trial")
    c.add_argument("--no-deep-audit", action="store_true",
                   help="skip the exact-oracle band audits")
    c.add_argument("--minimize", action="store_true",
                   help="ddmin-shrink every failing trial's stream")
    c.add_argument("--artifact-dir", metavar="DIR",
                   help="write minimized repro artifacts under DIR "
                        "(implies --minimize)")
    c.set_defaults(func=cmd_chaos)

    sc = sub.add_parser(
        "scenarios",
        help="soak or spill the adversarial scenario catalog (docs/SCENARIOS.md)",
    )
    sc.add_argument("--list", action="store_true",
                    help="list the scenario catalog and exit")
    sc.add_argument("--scenario", metavar="NAME",
                    help="one scenario (default: the whole catalog)")
    sc.add_argument("--scale", default="ci",
                    choices=["tiny", "ci", "bench", "large"],
                    help="named parameter preset (large = 10^6 edge updates)")
    sc.add_argument("--seed", type=int, default=0)
    sc.add_argument("--soak", default="both", choices=["chaos", "diff", "both"],
                    help="which verdict machinery to run")
    sc.add_argument("--trials", type=int, default=3,
                    help="chaos fault-injection trials per scenario")
    sc.add_argument("--faults", type=int, default=2,
                    help="planned fault injections per chaos trial")
    sc.add_argument("--deep-every", type=int, default=0,
                    help="exact-oracle deep audit every N diff batches")
    sc.add_argument("--minimize", action="store_true",
                    help="ddmin-shrink every failing chaos trial's stream")
    sc.add_argument("--artifact-dir", metavar="DIR",
                    help="write minimized repro artifacts under DIR "
                         "(implies --minimize)")
    sc.add_argument("--trace-out", metavar="PATH",
                    help="spill the scenario stream out-of-core to a sealed "
                         "trace file instead of soaking")
    sc.add_argument("--live", action="store_true",
                    help="tick a live status line to stderr while soaking")
    sc.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                    help="expose the metrics registry as Prometheus text on "
                         "http://127.0.0.1:PORT/metrics while soaking "
                         "(PORT 0 = ephemeral; the bound URL is printed)")
    sc.set_defaults(func=cmd_scenarios)

    sv = sub.add_parser(
        "serve",
        help="run the coreness service: async ingest/query over per-tenant "
             "ladders (docs/SERVICE.md)",
    )
    sv.add_argument("--data-dir", required=True, metavar="DIR",
                    help="durable state root (one subdirectory per tenant: "
                         "meta.json + wal.trace + checkpoint.json)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral; the bound port is printed "
                         "on the ready line)")
    sv.add_argument("--shards", type=int, default=4,
                    help="parallel apply lanes; tenants map to lanes by "
                         "name hash")
    sv.add_argument("--checkpoint-every", type=int, default=32, metavar="K",
                    help="full checkpoint every K committed batches per tenant")
    sv.add_argument("--max-pending", type=int, default=256, metavar="N",
                    help="per-lane bound on accepted-but-unapplied batches; "
                         "at the bound, ingest acks stall (backpressure) "
                         "instead of growing an unbounded apply backlog")
    sv.add_argument("--sync", action="store_true",
                    help="fsync every WAL append before acking "
                         "(power-loss durability, slower ingest)")
    sv.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                    help="expose per-tenant service metrics as Prometheus "
                         "text (PORT 0 = ephemeral; the bound URL is printed)")
    sv.set_defaults(func=cmd_serve)

    b = sub.add_parser(
        "bench",
        help="bench history: record runs, sparkline trends, regression gates",
    )
    b.add_argument("--history-dir", default=".bench_history", metavar="DIR",
                   help="the append-only JSONL history store")
    b.add_argument("--config", default="default",
                   help="config label the records are keyed under")
    b.add_argument("--record", nargs="+", metavar="FILE",
                   help="append BENCH_*.json payload(s) to the store")
    b.add_argument("--trend", action="store_true",
                   help="render per-metric trend tables with sparklines")
    b.add_argument("--experiment", metavar="NAME",
                   help="restrict --trend to one experiment")
    b.add_argument("--metric", metavar="NAME",
                   help="restrict --trend to one (dotted-path) metric")
    b.add_argument("--out", metavar="PATH",
                   help="also write the --trend table to PATH (CI artifact)")
    b.add_argument("--compare", metavar="BASELINE",
                   help="gate --current payloads against a baseline BENCH "
                        "file (or a directory of committed ones); exit 1 on "
                        "wall-clock / peak-memory regression")
    b.add_argument("--current", nargs="+", metavar="FILE",
                   help="the freshly measured BENCH_*.json payload(s)")
    b.add_argument("--threshold", type=float, default=None,
                   help="relative regression threshold (default: estimated "
                        "from repeated-run variance in the history store)")
    b.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="run reprolint (static invariant checks) over the tree",
        description=(
            "All arguments are forwarded to the reprolint CLI; see "
            "'python -m repro.analysis --help' for the full flag set."
        ),
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="paths and reprolint flags (forwarded verbatim)")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
