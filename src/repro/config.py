"""Tunable constants of the reproduction.

The paper's bounds involve a threshold ``B = c * log(n) / eps**2`` for a
"sufficiently large constant" ``c`` (Section 5) and a geometric ladder of
height hints ``H_i = (1 + eps)**i`` (Section 5.2).  Taken literally, the
constants are far beyond laptop scale (``n = 10**4`` with ``eps = 0.1``
gives ``B ~ 10**5``), so — as every implementation of this line of theory
does, including Liu et al.'s own PLDS code — we expose the constants and
default them small.  EXPERIMENTS.md reports results for the defaults below
and notes where the theory/practice constant gap matters.

All dynamic structures accept an optional :class:`Constants` so experiments
can sweep them; ``Constants()`` gives the library defaults.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ParameterError


@dataclass(frozen=True)
class Constants:
    """Knobs controlling the theory-constants of the algorithms.

    Attributes
    ----------
    sample_c:
        The ``c`` in ``B = c * log2(n) / eps**2``.  The paper needs a large
        ``c`` for the w.h.p. statements; the default keeps structures small
        enough to exercise *both* regimes of Theorem 5.1 at test scale.
    min_B:
        Floor for ``B`` so tiny graphs still get a nontrivial threshold.
    phase_safety:
        Multiplier applied to the proven phase bounds (Lemmas 4.8/4.18,
        ``O(H**3)`` phases) before :class:`~repro.errors.ConvergenceError`
        is raised.  The hidden constants in the lemmas are small; 8 is
        generous.
    bundle_safety:
        Same for bundle-extraction rounds (Lemma 4.15, ``O(H**2)`` rounds).
    convergence_slack:
        Additive slack on every :class:`~repro.errors.ConvergenceError`
        round bound (the bound is ``safety * poly(H) + convergence_slack``),
        covering the degenerate ``H = 0``-ish corners where the polynomial
        term alone rounds to nothing.  The chaos harness sets this (and the
        multiplicative factors) to 0 to provoke the error path
        deterministically; see docs/ROBUSTNESS.md.
    ladder_base_eps:
        Default ``eps`` used by the unconditional ladders (Theorems 1.1 and
        1.2) when the caller does not pass one.
    duplication_cap:
        Upper bound on the duplication factor ``K`` of Corollary 5.4 that
        the estimators will tolerate.  Corollary 5.4's work bound carries a
        poly(K) factor, so an uncapped ``K ~ B/H`` makes low rungs of the
        ladder brutally expensive; the default keeps duplication useful
        (error shrinks ~1/K, see benchmark E16) without runaway cost.
        Raise it deliberately for accuracy-critical workloads.
    """

    sample_c: float = 0.5
    min_B: int = 4
    phase_safety: int = 8
    bundle_safety: int = 8
    convergence_slack: int = 3
    ladder_base_eps: float = 0.25
    duplication_cap: int = 9
    # Ablation switch (benchmark E15): revert deviation D1 and run the
    # token-pushing game with the paper's literal transparency rule
    # (transparent only via tr = H+1 arcs).  Known unsound — see DESIGN.md.
    strict_paper_transparency: bool = False

    def B(self, n: int, eps: float) -> int:
        """The sampling/duplication threshold ``B = c log2(n)/eps^2``.

        ``n`` is the number of vertices of the host graph; the returned value
        is at least :attr:`min_B`.
        """
        if n < 1:
            raise ParameterError(f"n must be positive, got {n}")
        check_eps(eps)
        raw = self.sample_c * math.log2(max(n, 2)) / (eps * eps)
        return max(self.min_B, int(math.ceil(raw)))


DEFAULT_CONSTANTS = Constants()

#: Storage substrates for the orientation state (docs/PERFORMANCE.md).
#: ``treap`` is the historical per-object [PP01]-substitute; ``flat`` keeps
#: the same ordered-set semantics on contiguous bisect-backed slabs
#: (:mod:`repro.substrate`).  Answers, work, depth and counters are
#: bit-identical across substrates — only wall-clock changes.
SUBSTRATES = ("treap", "flat")


def check_substrate(substrate: str) -> str:
    """Validate a substrate name against :data:`SUBSTRATES`."""
    if substrate not in SUBSTRATES:
        raise ParameterError(
            f"substrate must be one of {SUBSTRATES}, got {substrate!r}"
        )
    return substrate


@dataclass(frozen=True)
class ExecConfig:
    """Execution-backend configuration for the ladder sweeps.

    Orthogonal to :class:`Constants` (which shape the *answers*): these
    knobs only change how the independent rung sweeps are scheduled and
    filtered, never what any query returns.  The default — one in-process
    worker, no filtering — reproduces the historical inline loops
    bit-for-bit; ``workers > 1`` fans rungs out to a process pool with
    merged cost/telemetry deltas, and ``rung_skip`` defers provably
    unaffected rungs (docs/PERFORMANCE.md).  The CLI maps ``--workers``
    and ``--rung-skip`` onto this.

    Attributes
    ----------
    workers:
        Process count for the rung sweep; ``<= 1`` means serial.
    rung_skip:
        Enable rung-relevance filtering (degree-bound skip certificates).
    task_timeout:
        Seconds to wait for one rung task's worker result before treating
        the worker as hung (``None`` = wait forever, the historical
        behaviour).  Timed-out tasks are retried and ultimately degrade
        to in-process execution — answers never change, only where the
        work runs (docs/ROBUSTNESS.md).
    task_retries:
        Pool-rebuild retry rounds before a failing task degrades to
        in-process execution.
    substrate:
        Storage substrate for the orientation state (:data:`SUBSTRATES`):
        ``treap`` (historical per-object trees) or ``flat`` (contiguous
        bisect-backed slabs).  Purely a wall-clock knob — all answers and
        cost accounting are bit-identical across substrates.
    shared_state:
        With ``workers > 1``: use the resident-state backend
        (:class:`~repro.pram.shmexec.SharedStateExecutor`) — rung state
        is seeded into persistent workers once over
        ``multiprocessing.shared_memory`` and every later batch ships
        only the per-rung ops and a scalar accounting delta, instead of
        pickling whole structures both ways per task.  Answers and cost
        accounting stay bit-identical to the serial backend.
    """

    workers: int = 1
    rung_skip: bool = False
    task_timeout: float | None = None
    task_retries: int = 2
    substrate: str = "treap"
    shared_state: bool = False

    def make_executor(self):
        """Build the executor this configuration describes.

        Returns a fresh :class:`~repro.pram.executor.SerialExecutor`,
        :class:`~repro.pram.executor.ProcessExecutor`, or
        :class:`~repro.pram.shmexec.SharedStateExecutor`; the caller owns
        it (``close()`` releases pooled workers).
        """
        from .pram.executor import ProcessExecutor, SerialExecutor

        if self.workers > 1:
            if self.shared_state:
                from .pram.shmexec import SharedStateExecutor

                return SharedStateExecutor(
                    max_workers=self.workers,
                    task_timeout=self.task_timeout,
                )
            return ProcessExecutor(
                max_workers=self.workers,
                task_timeout=self.task_timeout,
                task_retries=self.task_retries,
            )
        return SerialExecutor()


DEFAULT_EXEC = ExecConfig()


def check_eps(eps: float) -> float:
    """Validate an approximation parameter.

    The paper restricts ``eps`` to ``(0, 0.1)``; we accept the full ``(0, 1)``
    because experiments deliberately run with larger ``eps`` to keep the
    constants laptop-sized.  Anything outside ``(0, 1)`` is rejected.
    """
    if not (0.0 < eps < 1.0):
        raise ParameterError(f"eps must lie in (0, 1), got {eps!r}")
    return eps


def check_height(H: int) -> int:
    """Validate a height/arboricity hint ``H >= 1``."""
    if H < 1:
        raise ParameterError(f"H must be >= 1, got {H!r}")
    return int(H)


def ladder_heights(n: int, eps: float, h_max: int | None = None) -> list[int]:
    """The geometric ladder ``H_i = ceil((1+eps)^i)`` of Section 5.2.

    Returns strictly increasing integer heights covering ``[1, h_max]``
    (``h_max`` defaults to ``n``, the largest possible coreness/density).
    Deduplicated because at small scale consecutive powers round to the
    same integer.
    """
    check_eps(eps)
    top = n if h_max is None else h_max
    heights: list[int] = []
    h = 1.0
    while True:
        ih = int(math.ceil(h))
        if not heights or ih > heights[-1]:
            heights.append(ih)
        if ih >= top:
            break
        h *= 1.0 + eps
    return heights
