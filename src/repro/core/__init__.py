"""The paper's contribution: balanced orientations and the estimators."""

from .balanced import BalancedOrientation
from .bulk import from_graph, static_balanced_orientation
from .coreness import CorenessDecomposition
from .coreness_fixed import FixedHCorenessEstimator
from .density import DensityEstimator
from .density_fixed import FixedHDensityGuard
from .duplicated import DuplicatedBalanced
from .levels import is_h_balanced_edge, levkey
from .lowoutdegree import LowOutDegree
from .queries import CorenessMonitor, extract_dense_set, pseudoforest_decomposition
from .stats import coreness_stats, density_stats, orientation_stats
from .verify import AuditReport, audit_coreness, audit_density, audit_orientation, replay_audit
from .sampling import ConcentrationBand, EdgeSampler, expected_band, sample_graph
from . import snapshot

__all__ = [
    "BalancedOrientation",
    "ConcentrationBand",
    "CorenessDecomposition",
    "CorenessMonitor",
    "DensityEstimator",
    "DuplicatedBalanced",
    "EdgeSampler",
    "FixedHCorenessEstimator",
    "FixedHDensityGuard",
    "LowOutDegree",
    "expected_band",
    "extract_dense_set",
    "is_h_balanced_edge",
    "levkey",
    "pseudoforest_decomposition",
    "sample_graph",
    "snapshot",
    "AuditReport",
    "audit_coreness",
    "audit_density",
    "audit_orientation",
    "coreness_stats",
    "density_stats",
    "orientation_stats",
    "replay_audit",
    "from_graph",
    "static_balanced_orientation",
]
