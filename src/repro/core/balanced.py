"""``BALANCED(H)`` — batch-dynamic H-balanced orientation (Theorem 4.1).

The data structure of Section 4: every vertex keeps a ranked out-edge set
(:class:`~repro.core.outset.OutSet`) and an incoming-edge index
(:class:`~repro.core.inindex.InIndex`) keyed by (truncated rank, label) and
bucketed by the tail's truncated level.  Batch insertions run the
token-dropping game on token bundles (Section 4.2); batch deletions run the
token-pushing game (Section 4.3).  Between batches the structure satisfies
the H-balancedness invariant of Definition 3.1::

    for every arc (u -> v):   min(H, d+(u)) <= min(H, d+(v)) + 1

**Multigraph support.**  Arcs are keyed ``(head, copy)``; simple graphs use
``copy = 0`` everywhere, while Corollary 5.4's K-duplicated graphs insert
copies ``0..K-1`` of each undirected edge.  Levels, tokens and balancedness
always refer to *vertices*, exactly as in the paper.

**Levels vs out-set sizes.**  ``self.level[v]`` is the *recorded*
out-degree.  While a token game runs, levels are frozen (the game's whole
point) and ``len(out[v]) - level[v]`` equals the signed token surplus;
settlement reconciles them.  Between batches ``level[v] == len(out[v])``
for every vertex — ``check_invariants`` verifies this along with full
index consistency.

**Cost accounting** matches the paper's lemma granularity: every arc
mutation charges the Lemma 4.3/4.4 rate of ``O(H log n)`` work and depth
(callers parallelise over edges, so per-batch depth is the max); in-index
lookups charge one BST unit; games count phases/rounds into
``cm.counters``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional

from ..config import DEFAULT_CONSTANTS, Constants, check_height, check_substrate
from ..errors import BatchError, InvariantViolation
from ..graphs.graph import Edge, norm_edge
from ..instrument import trace as _trace
from ..instrument.work_depth import CostModel
from ..resilience.guard import Transactional
from ..substrate import inindex_cls, outset_cls
from .inindex import InIndex
from .levels import is_h_balanced_edge, levkey
from .outset import OutSet

# An arc is (tail, head, copy); an arc key inside an OutSet is (head, copy).
ArcKey = tuple[int, int]


class BalancedOrientation(Transactional):
    """Deterministic batch-dynamic H-balanced orientation."""

    def __init__(
        self,
        H: int,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        n_hint: int = 64,
        substrate: str = "treap",
    ) -> None:
        self.H = check_height(H)
        self.cm = cm if cm is not None else CostModel()
        self.constants = constants
        self.substrate = check_substrate(substrate)
        self._outset_cls = outset_cls(substrate)
        self._inx_cls = inindex_cls(substrate)
        self.out: dict[int, OutSet] = {}
        self.inx: dict[int, InIndex] = {}
        self.level: dict[int, int] = {}
        # per-arc filing state, keyed (tail, head, copy)
        self.tr_of: dict[tuple[int, int, int], int] = {}
        self.label_of: dict[tuple[int, int, int], int] = {}
        # vertex label applied to out-arcs of rank <= H (deletion game)
        self.vertex_label: dict[int, int] = {}
        # undirected (min, max, copy) -> current tail
        self.tail_of: dict[tuple[int, int, int], int] = {}
        self._n_hint = max(2, n_hint)
        self._logn_size = -1  # len(self.level) the cached _logn was computed at
        self._logn_val = 1
        # change journal for Lemma 6.1's D_ins / D_del interfaces
        self.last_reversed: list[tuple[int, int, int]] = []  # (tail, head, copy) post-flip
        self.last_inserted: list[tuple[int, int, int]] = []
        self.last_deleted: list[tuple[int, int, int]] = []

    # ------------------------------------------------------------------ queries

    def outdegree(self, v: int) -> int:
        """Recorded out-degree (== true out-degree between batches)."""
        return self.level.get(v, 0)

    def max_outdegree(self) -> int:
        return max(self.level.values(), default=0)

    def num_arcs(self) -> int:
        return len(self.tail_of)

    def has_edge(self, u: int, v: int, copy: int = 0) -> bool:
        a, b = norm_edge(u, v)
        return (a, b, copy) in self.tail_of

    def orientation_of(self, u: int, v: int, copy: int = 0) -> tuple[int, int]:
        """Current (tail, head) of the undirected edge ``{u, v}``."""
        a, b = norm_edge(u, v)
        tail = self.tail_of.get((a, b, copy))
        if tail is None:
            raise BatchError(f"edge ({u}, {v}, copy={copy}) not present")
        return (tail, b if tail == a else a)

    def out_neighbors(self, v: int) -> list[int]:
        """Heads of v's out-arcs (with multiplicity), in rank order."""
        outset = self.out.get(v)
        if outset is None:
            return []
        return [head for head, _copy in outset]

    def arcs(self) -> Iterator[tuple[int, int, int]]:
        """All arcs as (tail, head, copy)."""
        for (a, b, copy), tail in self.tail_of.items():
            head = b if tail == a else a
            yield (tail, head, copy)

    # ------------------------------------------------------------------ internals

    def _outset(self, v: int) -> OutSet:
        outset = self.out.get(v)
        if outset is None:
            outset = self._outset_cls()
            self.out[v] = outset
        return outset

    def _inx(self, v: int) -> InIndex:
        index = self.inx.get(v)
        if index is None:
            index = self._inx_cls()
            self.inx[v] = index
        return index

    def _reset_storage(self) -> None:
        """Drop every container to empty, preserving the substrate choice.

        The single funnel through which snapshot restore and guard
        rollback wipe the structure before replaying arcs — keeping the
        rebuilt containers on the same substrate as the original.
        """
        self.out = {}
        self.inx = {}
        self.level = {}
        self.tr_of = {}
        self.label_of = {}
        self.vertex_label = {}
        self.tail_of = {}

    def _logn(self) -> int:
        # cached on len(self.level): recomputing ceil(log2) per charge was
        # measurable at game scale, and the value only moves when the
        # vertex-universe size does.  Same formula, same values.
        size = len(self.level)
        if size != self._logn_size:
            self._logn_size = size
            n = max(self._n_hint, size)
            self._logn_val = max(1, int(math.ceil(math.log2(n))))
        return self._logn_val

    def _charge_arc_op(self) -> None:
        """The Lemma 4.3/4.4 per-edge rate: O(H log n) work and depth."""
        unit = (self.H + 2) * self._logn()
        self.cm.charge(work=unit, depth=unit)

    def _charge_lookup(self) -> None:
        unit = self._logn()
        self.cm.charge(work=unit, depth=unit)

    def _expected_filing(self, tail: int, position: int) -> tuple[int, int, int]:
        """(tr, label, lev) an arc at 1-indexed ``position`` must be filed at."""
        tr = position if position <= self.H else self.H + 1
        label = self.vertex_label.get(tail, 0) if position <= self.H else 0
        return tr, label, levkey(self.level.get(tail, 0), self.H)

    def _refile(self, tail: int, lo: int, hi: int) -> None:
        """Re-file arcs of ``tail`` at positions ``lo..hi`` (clamped).

        Recomputes the expected (tr, label, lev) of each arc and diffs with
        the stored filing — the single funnel through which rank shifts,
        label changes and level changes all flow (keeps the index correct
        by construction).
        """
        outset = self.out.get(tail)
        if outset is None:
            return
        hi = min(hi, len(outset))
        lo = max(1, lo)
        # the positions re-file independently: O(span log n) work at one
        # O(log n) level of depth (a parallel scan over the window).
        span = hi - lo + 1
        if span > 0:
            logn = self._logn()
            self.cm.charge(work=span * logn, depth=logn)
        # the stored and expected levels agree inside a window (both are
        # levkey(level[tail])), so only (tr, label) can differ — this loop
        # is _expected_filing unrolled with the level component hoisted.
        lev = self._stored_lev(tail)
        H = self.H
        label_v = self.vertex_label.get(tail, 0)
        tr_of, label_of, inx = self.tr_of, self.label_of, self.inx
        position = lo - 1
        for head, copy in outset.window(lo, hi):
            position += 1
            if position <= H:
                tr, label = position, label_v
            else:
                tr, label = H + 1, 0
            arc = (tail, head, copy)
            stored_tr = tr_of[arc]
            stored_label = label_of[arc]
            if stored_tr != tr or stored_label != label:
                # a filed arc's head always has an in-index — direct hit
                inx[head].move(
                    (tail, copy), (stored_tr, stored_label, lev), (tr, label, lev)
                )
                tr_of[arc] = tr
                label_of[arc] = label

    def _stored_lev(self, tail: int) -> int:
        return levkey(self.level.get(tail, 0), self.H)

    # -- arc mutations -----------------------------------------------------------

    def _arc_add(self, tail: int, head: int, copy: int) -> None:
        """Add arc (tail -> head, copy); does NOT touch levels."""
        outset = self._outset(tail)
        outset.add((head, copy))
        position = outset.rank((head, copy))
        arc = (tail, head, copy)
        tr, label, lev = self._expected_filing(tail, position)
        self.tr_of[arc] = tr
        self.label_of[arc] = label
        self._inx(head).add(tail_key(tail, copy), tr, label, lev)
        # ranks of later arcs shifted up by one; only first H+1 positions file.
        self._refile(tail, position + 1, self.H + 1)
        a, b = norm_edge(tail, head)
        self.tail_of[(a, b, copy)] = tail
        self.level.setdefault(tail, 0)
        self.level.setdefault(head, 0)
        self._charge_arc_op()

    def _arc_remove(self, tail: int, head: int, copy: int) -> None:
        """Remove arc (tail -> head, copy); does NOT touch levels."""
        outset = self.out.get(tail)
        arc = (tail, head, copy)
        if outset is None or (head, copy) not in outset:
            raise InvariantViolation(f"arc {arc} missing from out-set")
        position = outset.rank((head, copy))
        stored = (self.tr_of.pop(arc), self.label_of.pop(arc), self._stored_lev(tail))
        self.inx[head].remove(tail_key(tail, copy), *stored)
        outset.remove((head, copy))
        self._refile(tail, position, self.H + 1)
        a, b = norm_edge(tail, head)
        del self.tail_of[(a, b, copy)]
        self._charge_arc_op()

    def _flip(self, tail: int, head: int, copy: int) -> None:
        """Reverse arc (tail -> head) to (head -> tail); levels untouched."""
        self._arc_remove(tail, head, copy)
        self._arc_add(head, tail, copy)
        self.last_reversed.append((head, tail, copy))
        self.cm.count("reversals")

    def _set_level(self, v: int, new: int) -> None:
        """Record a new out-degree for ``v`` and re-file its out-arcs'
        level buckets if the truncated level changed."""
        old = self.level.get(v, 0)
        if new < 0:
            raise InvariantViolation(f"negative level for {v}")
        self.level[v] = new
        if levkey(old, self.H) != levkey(new, self.H):
            outset = self.out.get(v)
            if outset is not None:
                old_lev = levkey(old, self.H)
                new_lev = levkey(new, self.H)
                tr_of, label_of, inx = self.tr_of, self.label_of, self.inx
                for head, copy in outset:  # moves touch the index, not the set
                    arc = (v, head, copy)
                    tr, label = tr_of[arc], label_of[arc]
                    inx[head].move(
                        (v, copy), (tr, label, old_lev), (tr, label, new_lev)
                    )
            self._charge_arc_op()
        else:
            self.cm.charge(work=1, depth=1)

    def _apply_vertex_label(self, v: int, label: int) -> None:
        """Set the deletion-game label of ``v`` on its rank <= H out-arcs."""
        if self.vertex_label.get(v, 0) == label:
            return
        if label:
            self.vertex_label[v] = label
        else:
            self.vertex_label.pop(v, None)
        self._refile(v, 1, self.H)
        unit = (self.H + 1) * self._logn()
        self.cm.charge(work=unit, depth=unit)

    # ------------------------------------------------------------------ batch API

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        """Insert a batch of undirected simple edges (Theorem 4.1, insert)."""
        batch = self._validate_insert(edges, copy=0)
        self._begin_journal()
        self._insert_arcs(batch)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        """Delete a batch of undirected simple edges (Theorem 4.1, delete)."""
        batch = self._validate_delete(edges, copy=0)
        self._begin_journal()
        self._delete_arcs(batch)

    def update_batch(
        self,
        insertions: Iterable[tuple[int, int]] = (),
        deletions: Iterable[tuple[int, int]] = (),
    ) -> None:
        """One mixed batch: deletions apply first, then insertions.

        Deletions are validated against the pre-batch graph and insertions
        against the post-deletion graph, so an edge may be deleted and
        re-inserted within one call.  Each half carries its Theorem 4.1
        worst-case guarantee; the change journals of both halves are
        merged.
        """
        insertions, deletions = list(insertions), list(deletions)
        # the batch envelope itself — validation and journal merge — is
        # O(|insertions| + |deletions|) work even when one half is empty
        self.cm.charge(work=len(insertions) + len(deletions) + 1, depth=1)
        reversed_, inserted, deleted = [], [], []
        if deletions:
            self.delete_batch(deletions)
            reversed_ += self.last_reversed
            inserted += self.last_inserted
            deleted += self.last_deleted
        if insertions:
            self.insert_batch(insertions)
            reversed_ += self.last_reversed
            inserted += self.last_inserted
            deleted += self.last_deleted
        self.last_reversed = reversed_
        self.last_inserted = inserted
        self.last_deleted = deleted

    def insert_multi_batch(self, arcs: list[tuple[int, int, int]]) -> None:
        """Insert (u, v, copy) multi-edges — the Corollary 5.4 entry point."""
        seen = set()
        for u, v, copy in arcs:
            a, b = norm_edge(u, v)
            key = (a, b, copy)
            if key in seen or key in self.tail_of:
                raise BatchError(f"multi-edge {key} duplicate or already present")
            seen.add(key)
        self._begin_journal()
        self._insert_arcs([(u, v, copy) for u, v, copy in arcs])

    def delete_multi_batch(self, arcs: list[tuple[int, int, int]]) -> None:
        seen = set()
        for u, v, copy in arcs:
            a, b = norm_edge(u, v)
            key = (a, b, copy)
            if key in seen:
                raise BatchError(f"multi-edge {key} duplicated in batch")
            if key not in self.tail_of:
                raise BatchError(f"multi-edge {key} not present")
            seen.add(key)
        self._begin_journal()
        self._delete_arcs([(u, v, copy) for u, v, copy in arcs])

    def _validate_insert(self, edges: Iterable[tuple[int, int]], copy: int):
        seen: set[Edge] = set()
        batch = []
        for u, v in edges:
            e = norm_edge(u, v)
            if e in seen:
                raise BatchError(f"duplicate edge {e} within batch")
            if (e[0], e[1], copy) in self.tail_of:
                raise BatchError(f"edge {e} already present")
            seen.add(e)
            batch.append((e[0], e[1], copy))
        return batch

    def _validate_delete(self, edges: Iterable[tuple[int, int]], copy: int):
        seen: set[Edge] = set()
        batch = []
        for u, v in edges:
            e = norm_edge(u, v)
            if e in seen:
                raise BatchError(f"duplicate edge {e} within batch")
            if (e[0], e[1], copy) not in self.tail_of:
                raise BatchError(f"edge {e} not present")
            seen.add(e)
            batch.append((e[0], e[1], copy))
        return batch

    def _begin_journal(self) -> None:
        self.last_reversed = []
        self.last_inserted = []
        self.last_deleted = []

    # -- drivers (Sections 4.2.2 / 4.3.2); game logic lives in tokens.py --------

    def _insert_arcs(self, batch: list[tuple[int, int, int]]) -> None:
        with _trace.span("balanced.insert", detail={"edges": len(batch)}):
            self._insert_arcs_inner(batch)

    def _insert_arcs_inner(self, batch: list[tuple[int, int, int]]) -> None:
        from .bundles import extract_token_bundle
        from .tokens import run_drop_game

        pending = list(batch)
        rounds = 0
        bound = (
            self.constants.bundle_safety * (self.H + 1) ** 2
            + self.constants.convergence_slack
        )
        while pending:
            # edges whose endpoints are both saturated insert freely (§4.2.2)
            free = [
                (u, v, c)
                for (u, v, c) in pending
                if min(self.outdegree(u), self.outdegree(v)) >= self.H
            ]
            if free:
                free_keys = set(free)
                with _trace.span("balanced.free"):
                    with self.cm.parallel() as region:
                        for u, v, c in free:
                            with region.branch():
                                tail, head = (
                                    (u, v)
                                    if self.outdegree(u) <= self.outdegree(v)
                                    else (v, u)
                                )
                                self._arc_add(tail, head, c)
                                self._set_level(tail, self.level.get(tail, 0) + 1)
                                self.last_inserted.append((tail, head, c))
                pending = [e for e in pending if e not in free_keys]
            if not pending:
                break
            rounds += 1
            if rounds > bound:
                raise _convergence(
                    f"bundle extraction exceeded {bound} rounds (Lemma 4.15)"
                )
            bundle = extract_token_bundle(self, pending)
            run_drop_game(self, bundle)
            self.cm.count("insert_bundle_rounds")
        self.cm.count("insert_batches")

    def _delete_arcs(self, batch: list[tuple[int, int, int]]) -> None:
        with _trace.span("balanced.delete", detail={"edges": len(batch)}):
            self._delete_arcs_inner(batch)

    def _delete_arcs_inner(self, batch: list[tuple[int, int, int]]) -> None:
        from .bundles import partition_deletion_tokens
        from .tokens import run_push_game

        # orient every doomed edge
        directed: dict[int, list[tuple[int, int]]] = {}
        for u, v, copy in batch:
            a, b = norm_edge(u, v)
            tail = self.tail_of[(a, b, copy)]
            head = b if tail == a else a
            directed.setdefault(tail, []).append((head, copy))

        # free deletions at saturated tails (§4.3.2): the first
        # d+(tail) - H doomed arcs of each tail leave without tokens.
        tokens: dict[int, int] = {}
        with _trace.span("balanced.free"):
            with self.cm.parallel() as region:
                for tail, heads in sorted(directed.items()):
                    with region.branch():
                        lvl = self.level.get(tail, 0)
                        free_count = min(len(heads), max(0, lvl - self.H))
                        for head, copy in heads[:free_count]:
                            self._arc_remove(tail, head, copy)
                            self._set_level(tail, self.level[tail] - 1)
                            self.last_deleted.append((tail, head, copy))
                        for head, copy in heads[free_count:]:
                            self._arc_remove(tail, head, copy)
                            self.last_deleted.append((tail, head, copy))
                            tokens[tail] = tokens.get(tail, 0) + 1

        for bundle in partition_deletion_tokens(tokens):
            run_push_game(self, bundle)
            self.cm.count("delete_bundles")
        self.cm.count("delete_batches")

    # ------------------------------------------------------------------ checking

    def check_invariants(self) -> None:
        """Full structural verification (I1/I2 of DESIGN.md §5).

        Raises :class:`InvariantViolation` on the first inconsistency.
        Intended for tests — O(m * H) time.
        """
        # levels match out-set sizes; H-balancedness on every arc
        for v, outset in self.out.items():
            if self.level.get(v, 0) != len(outset):
                raise InvariantViolation(
                    f"level[{v}] = {self.level.get(v, 0)} != |out| = {len(outset)}"
                )
        for v, lvl in self.level.items():
            if lvl and v not in self.out:
                raise InvariantViolation(
                    f"level[{v}] = {lvl} but {v} has no out-set"
                )
        for v, outset in self.out.items():
            lv = self.level.get(v, 0)
            for head, copy in outset:
                if not is_h_balanced_edge(lv, self.level.get(head, 0), self.H):
                    raise InvariantViolation(
                        f"arc ({v}->{head},{copy}): min(H,{lv}) > "
                        f"min(H,{self.level.get(head, 0)}) + 1 (H={self.H})"
                    )
        # filing consistency: every arc filed exactly once, at the right key
        filed = 0
        for head, index in self.inx.items():
            for tkey, tr, label, lev in index.entries():
                tail, copy = tkey
                arc = (tail, head, copy)
                if arc not in self.tr_of:
                    raise InvariantViolation(f"stray in-index entry {arc}")
                outset = self.out.get(tail)
                if outset is None or (head, copy) not in outset:
                    raise InvariantViolation(f"in-index entry {arc} has no arc")
                position = outset.rank((head, copy))
                expected = self._expected_filing(tail, position)
                if (tr, label, lev) != expected:
                    raise InvariantViolation(
                        f"arc {arc} filed at {(tr, label, lev)}, expected {expected}"
                    )
                filed += 1
        total_arcs = sum(len(o) for o in self.out.values())
        if filed != total_arcs or filed != len(self.tail_of):
            raise InvariantViolation(
                f"arc counts disagree: filed={filed}, out={total_arcs}, "
                f"tail_of={len(self.tail_of)}"
            )
        # orientation map consistency
        for (a, b, copy), tail in self.tail_of.items():
            head = b if tail == a else a
            outset = self.out.get(tail)
            if outset is None or (head, copy) not in outset:
                raise InvariantViolation(f"tail_of says {tail}->{head} but arc missing")
        # no leftover labels between batches
        if self.vertex_label:
            raise InvariantViolation(f"leftover vertex labels: {self.vertex_label}")


def tail_key(tail: int, copy: int) -> tuple[int, int]:
    """How a tail is identified inside an in-index bucket."""
    return (tail, copy)


def _convergence(msg: str):
    from ..errors import ConvergenceError

    return ConvergenceError(msg)
