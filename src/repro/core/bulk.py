"""Bulk construction of an H-balanced orientation from a static graph.

The paper initialises from an *empty* graph and inserts batches; loading
an existing graph through that path costs the full token-game machinery.
When a graph is already in hand, a static two-phase build is much
cheaper:

1. **seed** — orient along a min-degree peeling order (every edge points
   from the earlier-peeled endpoint), which bounds out-degrees by the
   degeneracy;
2. **repair** — flip any arc violating Definition 3.1.  Every violated
   arc ``u -> v`` has an *untruncated* out-degree gap >= 2 (truncation
   can only mask gaps at the top), so each flip decreases
   ``sum d+(v)^2`` by at least 2 and the worklist terminates.

The result is loaded into a fully indexed
:class:`~repro.core.balanced.BalancedOrientation` via the snapshot
restore path, which re-verifies all invariants.  Benchmark E18 measures
the speedup over incremental insertion.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants, check_height
from ..errors import BatchError
from ..graphs.graph import Edge, norm_edge
from ..instrument.work_depth import CostModel
from .balanced import BalancedOrientation
from .levels import levkey


def static_balanced_orientation(
    edges: Iterable[tuple[int, int]], H: int
) -> tuple[dict[Edge, int], dict[int, int]]:
    """Compute (edge -> tail, vertex -> out-degree) satisfying Def. 3.1."""
    check_height(H)
    edge_list: list[Edge] = []
    seen: set[Edge] = set()
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        e = norm_edge(u, v)
        if e in seen:
            raise BatchError(f"duplicate edge {e}")
        seen.add(e)
        edge_list.append(e)
        adj.setdefault(e[0], set()).add(e[1])
        adj.setdefault(e[1], set()).add(e[0])

    # ---- phase 1: peeling-order seed orientation --------------------------
    order: dict[int, int] = {}
    cur = {v: len(nbrs) for v, nbrs in adj.items()}
    heap = [(d, v) for v, d in cur.items()]
    heapq.heapify(heap)
    removed: set[int] = set()
    position = 0
    while heap:
        d, v = heapq.heappop(heap)
        if v in removed or d != cur[v]:
            continue
        removed.add(v)
        order[v] = position
        position += 1
        for w in adj[v]:
            if w not in removed:
                cur[w] -= 1
                heapq.heappush(heap, (cur[w], w))

    tail_of: dict[Edge, int] = {}
    out: dict[int, set[int]] = {v: set() for v in adj}
    for a, b in edge_list:
        tail = a if order[a] < order[b] else b
        head = b if tail == a else a
        tail_of[(a, b)] = tail
        out[tail].add(head)

    # ---- phase 2: repair flips until H-balanced ----------------------------
    deg = {v: len(s) for v, s in out.items()}

    def violated_from(x: int) -> Optional[tuple[int, int]]:
        mx = levkey(deg[x], H)
        for y in out[x]:
            if mx > levkey(deg[y], H) + 1:
                return (x, y)
        return None

    worklist = sorted(adj)
    pending = set(worklist)
    while worklist:
        x = worklist.pop()
        pending.discard(x)
        while True:
            hit = violated_from(x)
            if hit is None:
                break
            _x, y = hit
            out[x].discard(y)
            out[y].add(x)
            tail_of[norm_edge(x, y)] = y
            deg[x] -= 1
            deg[y] += 1
            for z in (x, y):
                if z not in pending:
                    pending.add(z)
                    worklist.append(z)
    # one more sweep: flipping y upward may create in-violations at y's
    # out-neighbours; the worklist above already re-queues both endpoints,
    # but in-neighbours of x (whose head dropped) must be rechecked too.
    stable = False
    guard = 0
    while not stable:
        guard += 1
        # every non-final sweep performs >= 1 flip and each flip lowers
        # sum d+^2 by >= 2, so sweeps are bounded by that potential
        if guard > len(edge_list) * (len(edge_list) + 4) + 64:
            raise AssertionError("repair loop failed to stabilise")
        stable = True
        for (a, b), tail in list(tail_of.items()):
            head = b if tail == a else a
            if levkey(deg[tail], H) > levkey(deg[head], H) + 1:
                out[tail].discard(head)
                out[head].add(tail)
                tail_of[(a, b)] = head
                deg[tail] -= 1
                deg[head] += 1
                stable = False
    return tail_of, deg


def from_graph(
    edges: Iterable[tuple[int, int]],
    H: int,
    cm: Optional[CostModel] = None,
    constants: Constants = DEFAULT_CONSTANTS,
) -> BalancedOrientation:
    """Build a fully indexed BALANCED(H) from a static edge list."""
    from .snapshot import restore

    tail_map, deg = static_balanced_orientation(edges, H)
    arcs = []
    for (a, b), tail in sorted(tail_map.items()):
        head = b if tail == a else a
        arcs.append((tail, head, 0))
    snap = {"H": H, "arcs": arcs, "levels": deg}
    return restore(snap, cm=cm, constants=constants)
