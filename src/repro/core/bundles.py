"""Token-bundle construction (Sections 4.2.2 and 4.3.2).

* :func:`extract_token_bundle` — the ``ExtractTokenBundle`` procedure:
  every pending inserted edge proposes a token at its lower-out-degree
  endpoint; each vertex accepts one proposal (CRCW arbitrary write after a
  lexicographic sort, as in Lemma 4.16); accepted edges leave the pending
  set oriented from the accepting vertex toward the higher one, which
  yields exactly the Definition 4.6 conditions (distinct tails,
  ``d+(tail) <= d+(head)``).
* :func:`partition_deletion_tokens` — splits per-vertex deletion token
  counts (each <= H after the free deletions) into at most H bundles of
  distinct vertices (Definition 4.17), round-robin.
"""

from __future__ import annotations

from ..instrument import trace as _trace
from ..pram.primitives import arbitrary_winners
from ..pram.sorting import parallel_sort
from ..resilience import faults as _faults
from .balanced import BalancedOrientation


def extract_token_bundle(
    st: BalancedOrientation, pending: list[tuple[int, int, int]]
) -> list[tuple[int, int, int]]:
    """Extract one token bundle from ``pending`` (mutates ``pending``).

    Returns directed bundle arcs ``(tail, head, copy)``.
    """
    with _trace.span("bundles.extract", detail={"pending": len(pending)}):
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("bundles.extract", st)
        proposals: list[tuple[int, tuple[int, int, int]]] = []
        for u, v, c in pending:
            du, dv = st.outdegree(u), st.outdegree(v)
            cand = u if (du, u) <= (dv, v) else v
            proposals.append((cand, (u, v, c)))
            st.cm.tick()
        proposals = parallel_sort(proposals, cm=st.cm)
        winners = arbitrary_winners(proposals, cm=st.cm)
        bundle: list[tuple[int, int, int]] = []
        taken: set[tuple[int, int, int]] = set()
        for cand in sorted(winners):
            u, v, c = winners[cand]
            head = v if cand == u else u
            bundle.append((cand, head, c))
            taken.add((u, v, c))
        pending[:] = [e for e in pending if e not in taken]
        return bundle


def partition_deletion_tokens(tokens: dict[int, int]) -> list[list[int]]:
    """Round-robin the token multiset into bundles of distinct vertices."""
    with _trace.span("bundles.partition", detail={"tokens": len(tokens)}):
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("bundles.partition")
        if not tokens:
            return []
        rounds = max(tokens.values())
        return [
            sorted(v for v, count in tokens.items() if count > j) for j in range(rounds)
        ]
