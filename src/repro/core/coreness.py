"""Unconditional coreness decomposition (Theorem 1.1).

Runs the fixed-height estimator of Theorem 5.1 for every rung of the
geometric ladder ``H_i = (1 + eps)^i`` and reads off, per vertex, the first
rung whose estimate drops below its hint.  The sandwich

    core(v) >= (1/2 - O(eps)) (1+eps)^k      (rung k-1 was saturated)
    core(v) <= (2 + O(eps)) (1+eps)^k        (rung k is not)

gives the ``4 + eps``-approximation
``core_ALG(v) in [(1/2 - eps) core(v), (2 + eps) core(v)]`` w.h.p.

Rung sweeps route through a pluggable executor and optionally skip
provably-unaffected rungs; queries binary-search the saturation-monotone
ladder and memoise per vertex (see :mod:`repro.core.ladder` and
docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from ..config import DEFAULT_CONSTANTS, Constants, check_eps, ladder_heights
from ..instrument.work_depth import CostModel
from ..resilience.guard import Transactional
from .coreness_fixed import FixedHCorenessEstimator
from .ladder import RungLadder


class CorenessDecomposition(RungLadder, Transactional):
    """Batch-dynamic ``(4 + eps)``-approximate coreness for all vertices."""

    # insert/delete_batch charge the O(|batch|) dispatch themselves.
    _dispatch_precharged = True

    def __init__(
        self,
        n: int,
        eps: float = DEFAULT_CONSTANTS.ladder_base_eps,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
        h_max: Optional[int] = None,
        executor: Optional[Any] = None,
        rung_skip: bool = False,
        substrate: str = "treap",
    ) -> None:
        self.n = n
        self.eps = check_eps(eps)
        self.cm = cm if cm is not None else CostModel()
        self.constants = constants
        self.seed = seed
        self.h_max = h_max
        self.substrate = substrate
        self.heights: list[int] = ladder_heights(n, eps, h_max)
        self.rungs: list[FixedHCorenessEstimator] = [
            FixedHCorenessEstimator(
                H, eps, n, cm=self.cm, constants=constants, seed=seed + 31 * i,
                substrate=substrate,
            )
            for i, H in enumerate(self.heights)
        ]
        self._touched: set[int] = set()
        self._init_ladder(executor, rung_skip)

    # -- updates (the rungs are independent — the parallel ladder) -------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = list(edges)
        # ladder dispatch + touched-set bookkeeping: O(|batch|) work, O(1) depth
        self.cm.charge(work=len(edges) + 1, depth=1)
        for u, v in edges:
            self._touched.add(u)
            self._touched.add(v)
        self._ladder_dispatch("insert_batch", edges)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = list(edges)
        self.cm.charge(work=len(edges) + 1, depth=1)
        self._ladder_dispatch("delete_batch", edges)

    def update_batch(self, insertions=(), deletions=()) -> None:
        """One mixed batch: deletions first, then insertions."""
        deletions, insertions = list(deletions), list(insertions)
        if deletions:
            self.delete_batch(deletions)
        if insertions:
            self.insert_batch(insertions)

    # -- queries ---------------------------------------------------------------

    def _rung_unsaturated(self, i: int, v: int) -> bool:
        """Is rung ``i`` unsaturated at ``v``?  Deferred rungs provably are."""
        self.cm.tick()  # one rung probe (queries are charged per probe)
        if self.rung_skip and not self._live[i]:
            return True
        return self.rungs[i].estimate(v) < self.heights[i]

    def _compute_estimate(self, v: int) -> float:
        """Binary-search the first unsaturated rung (saturation-monotone).

        Rung saturation is monotone down the ladder — a vertex saturating
        height ``H`` saturates every smaller hint w.h.p. — so the linear
        first-unsaturated scan is a predicate flip the search finds with
        O(log #rungs) rung probes instead of O(#rungs).
        """
        hi = len(self.rungs) - 1
        if not self._rung_unsaturated(hi, v):
            return float(self.heights[-1])
        lo = 0
        while lo < hi:
            mid = (lo + hi) // 2
            if self._rung_unsaturated(mid, v):
                hi = mid
            else:
                lo = mid + 1
        return float(self.heights[lo])

    def estimate(self, v: int) -> float:
        """``core_ALG(v)``: the first unsaturated rung's height (memoised)."""
        cached = self._est_cache.get(v)
        if cached is not None:
            return cached
        value = self._compute_estimate(v)
        self._est_cache[v] = value
        return value

    def estimates(self, vertices: Optional[Sequence[int]] = None) -> dict[int, float]:
        vs = list(vertices) if vertices is not None else sorted(self._touched)
        return {v: self.estimate(v) for v in vs}

    def max_estimate(self) -> float:
        if self._max_est is None:
            self._max_est = max(
                (self.estimate(v) for v in self._touched),
                default=float(self.heights[0]),
            )
        return self._max_est

    def check_invariants(self) -> None:
        for rung in self.rungs:
            rung.check_invariants()
