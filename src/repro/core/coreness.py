"""Unconditional coreness decomposition (Theorem 1.1).

Runs the fixed-height estimator of Theorem 5.1 for every rung of the
geometric ladder ``H_i = (1 + eps)^i`` and reads off, per vertex, the first
rung whose estimate drops below its hint.  The sandwich

    core(v) >= (1/2 - O(eps)) (1+eps)^k      (rung k-1 was saturated)
    core(v) <= (2 + O(eps)) (1+eps)^k        (rung k is not)

gives the ``4 + eps``-approximation
``core_ALG(v) in [(1/2 - eps) core(v), (2 + eps) core(v)]`` w.h.p.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..config import DEFAULT_CONSTANTS, Constants, check_eps, ladder_heights
from ..instrument import trace as _trace
from ..instrument.work_depth import CostModel
from ..resilience.guard import Transactional
from .coreness_fixed import FixedHCorenessEstimator


class CorenessDecomposition(Transactional):
    """Batch-dynamic ``(4 + eps)``-approximate coreness for all vertices."""

    def __init__(
        self,
        n: int,
        eps: float = DEFAULT_CONSTANTS.ladder_base_eps,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
        h_max: Optional[int] = None,
    ) -> None:
        self.n = n
        self.eps = check_eps(eps)
        self.cm = cm if cm is not None else CostModel()
        self.constants = constants
        self.seed = seed
        self.h_max = h_max
        self.heights: list[int] = ladder_heights(n, eps, h_max)
        self.rungs: list[FixedHCorenessEstimator] = [
            FixedHCorenessEstimator(
                H, eps, n, cm=self.cm, constants=constants, seed=seed + 31 * i
            )
            for i, H in enumerate(self.heights)
        ]
        self._touched: set[int] = set()

    # -- updates (the rungs are independent — the parallel ladder) -------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = list(edges)
        # ladder dispatch + touched-set bookkeeping: O(|batch|) work, O(1) depth
        self.cm.charge(work=len(edges) + 1, depth=1)
        for u, v in edges:
            self._touched.add(u)
            self._touched.add(v)
        with self.cm.parallel() as region:
            for rung, H in zip(self.rungs, self.heights):
                with region.branch():
                    with _trace.span("ladder.rung", H=H):
                        rung.insert_batch(edges)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = list(edges)
        self.cm.charge(work=len(edges) + 1, depth=1)
        with self.cm.parallel() as region:
            for rung, H in zip(self.rungs, self.heights):
                with region.branch():
                    with _trace.span("ladder.rung", H=H):
                        rung.delete_batch(edges)

    def update_batch(self, insertions=(), deletions=()) -> None:
        """One mixed batch: deletions first, then insertions."""
        deletions, insertions = list(deletions), list(insertions)
        if deletions:
            self.delete_batch(deletions)
        if insertions:
            self.insert_batch(insertions)

    # -- queries ---------------------------------------------------------------

    def estimate(self, v: int) -> float:
        """``core_ALG(v)``: the first unsaturated rung's height."""
        for rung, H in zip(self.rungs, self.heights):
            if rung.estimate(v) < H:
                return float(H)
        return float(self.heights[-1])

    def estimates(self, vertices: Optional[Sequence[int]] = None) -> dict[int, float]:
        vs = list(vertices) if vertices is not None else sorted(self._touched)
        return {v: self.estimate(v) for v in vs}

    def max_estimate(self) -> float:
        return max(
            (self.estimate(v) for v in self._touched),
            default=float(self.heights[0]),
        )

    def check_invariants(self) -> None:
        for rung in self.rungs:
            rung.check_invariants()
