"""Fixed-height coreness estimator (Theorem 5.1).

Given a height hint ``H`` and accuracy ``eps``, maintains an estimate
``f(v)`` such that w.h.p.:

* if ``f(v) < H``:   ``f(v) in [(1/2 - eps) core(v) - eps H,
  (2 + eps) core(v) + eps H]``
* if ``f(v) >= H``:  ``core(v) >= (1/2 - eps) H``

Two regimes around the threshold ``B = c log n / eps^2``:

* ``H <= B`` — **duplication** (Lemma 5.3 / Corollary 5.4): every edge is
  duplicated ``K = ceil(B / H)`` times and a ``(1+eps) H K``-balanced
  orientation is maintained; ``f(v) = d+(v) / K``.
* ``H > B`` — **sampling** (Appendix A): each edge is kept with probability
  ``p = B / H`` and a ``B``-balanced orientation of the sample is
  maintained; ``f(v) = (H / B) d+(v)``.

The Section 3 lemmas (3.4/3.5) connect the out-degrees of the balanced
orientation to coreness in both regimes.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants, check_eps, check_height
from ..instrument.work_depth import CostModel
from .balanced import BalancedOrientation
from .duplicated import DuplicatedBalanced
from .ladder import RungOps
from .sampling import EdgeSampler


class FixedHCorenessEstimator(RungOps):
    """Theorem 5.1's data structure for one height hint ``H``."""

    def __init__(
        self,
        H: int,
        eps: float,
        n: int,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
        substrate: str = "treap",
    ) -> None:
        self.H = check_height(H)
        self.eps = check_eps(eps)
        self.n = n
        self.constants = constants
        self.B = constants.B(n, eps)
        self.cm = cm if cm is not None else CostModel()
        self.substrate = substrate

        if self.H <= self.B:
            # duplication regime
            self.K = max(1, math.ceil(self.B / self.H))
            self.K = min(self.K, constants.duplication_cap)
            inner_H = max(1, math.ceil((1 + eps) * self.H * self.K))
            self.regime = "duplication"
            self.dup = DuplicatedBalanced(
                inner_H, self.K, cm=self.cm, constants=constants, n_hint=n,
                substrate=substrate,
            )
            self.sampler: Optional[EdgeSampler] = None
            self.bal: Optional[BalancedOrientation] = None
        else:
            # sampling regime
            self.K = 1
            self.regime = "sampling"
            self.dup = None
            self.sampler = EdgeSampler(self.B / self.H, seed=seed ^ 0x5A17)
            self.bal = BalancedOrientation(
                self.B, cm=self.cm, constants=constants, n_hint=n,
                substrate=substrate,
            )

    # -- updates ------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = list(edges)
        if self.regime == "duplication":
            self.dup.insert_batch(edges)
        else:
            kept = self.sampler.filter(edges)
            if kept:
                self.bal.insert_batch(kept)
            # unkept edges still cost O(1) each (the sampling decision)
            self.cm.charge(work=len(edges), depth=1)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = list(edges)
        if self.regime == "duplication":
            self.dup.delete_batch(edges)
        else:
            kept = self.sampler.filter(edges)
            if kept:
                self.bal.delete_batch(kept)
            self.cm.charge(work=len(edges), depth=1)

    # -- estimates ------------------------------------------------------------

    def estimate(self, v: int) -> float:
        """The Theorem 5.1 estimate ``f(v)``."""
        if self.regime == "duplication":
            return self.dup.fractional_outdegree(v)
        return (self.H / self.B) * self.bal.outdegree(v)

    def saturated(self, v: int) -> bool:
        """True when ``f(v) >= H`` (only a lower bound on core(v) is known)."""
        return self.estimate(v) >= self.H

    def skip_threshold(self) -> int:
        """Max-degree bound below which this rung is provably unsaturated.

        Duplication: ``f(v) = d+(v)/K <= deg(v)`` (each of the K copies
        contributes at most one out-arc per incident edge), so every
        estimate stays below ``H`` while the max degree does.  Sampling:
        ``f(v) = (H/B) d+(v) <= (H/B) deg(v) < H`` iff ``deg(v) < B``.
        A batch arriving while the ladder's running degree bound sits
        under this threshold cannot change any query answer.
        """
        return self.H if self.regime == "duplication" else self.B

    def journal_vertices(self) -> set[int]:
        """Vertices whose out-degree the last batch may have changed.

        Endpoints of every arc the inner orientation inserted, deleted or
        reversed — the exact invalidation set for the ladder's per-vertex
        estimate cache.
        """
        inner = self.dup.inner if self.dup is not None else self.bal
        touched: set[int] = set()
        for journal in (inner.last_reversed, inner.last_inserted, inner.last_deleted):
            for tail, head, _copy in journal:
                touched.add(tail)
                touched.add(head)
        return touched

    def check_invariants(self) -> None:
        if self.regime == "duplication":
            self.dup.check_invariants()
        else:
            self.bal.check_invariants()
