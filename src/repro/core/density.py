"""Unconditional density / arboricity / low out-degree (Theorem 1.2).

Runs the fixed-height density guard of Theorem 5.2 for every rung of the
geometric ladder.  The first rung whose verdict is "low" pins the density:

    rho_ALG = H_k  in  [(1 - eps) rho(G), (1 + eps) rho(G)]

and exports that rung's orientation, in which every out-degree is at most
``(2 + eps) rho(G)``.  The arboricity estimate is ``lambda_ALG = 2 rho_ALG``
(Nash-Williams sandwiches ``rho <= lambda <= 2 rho``).

Rung sweeps route through a pluggable executor and optionally skip
provably-"low" rungs; the first-"low" query binary-searches the
verdict-monotone ladder and memoises its index (see
:mod:`repro.core.ladder` and docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants, check_eps, ladder_heights
from ..errors import InvariantViolation
from ..instrument.work_depth import CostModel
from ..resilience.guard import Transactional
from .density_fixed import FixedHDensityGuard
from .ladder import RungLadder


class DensityEstimator(RungLadder, Transactional):
    """Batch-dynamic ``(1 + eps)`` density estimate + low out-degree orientation."""

    def __init__(
        self,
        n: int,
        eps: float = DEFAULT_CONSTANTS.ladder_base_eps,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
        h_max: Optional[int] = None,
        executor: Optional[Any] = None,
        rung_skip: bool = False,
        substrate: str = "treap",
    ) -> None:
        self.n = n
        self.eps = check_eps(eps)
        self.cm = cm if cm is not None else CostModel()
        self.constants = constants
        self.seed = seed
        self.h_max = h_max
        self.substrate = substrate
        self.heights: list[int] = ladder_heights(n, eps, h_max)
        self.rungs: list[FixedHDensityGuard] = [
            FixedHDensityGuard(
                H, eps, n, cm=self.cm, constants=constants, seed=seed + 97 * i,
                substrate=substrate,
            )
            for i, H in enumerate(self.heights)
        ]
        self._init_ladder(executor, rung_skip)

    # -- updates ------------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        self._ladder_dispatch("insert_batch", list(edges))

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        self._ladder_dispatch("delete_batch", list(edges))

    def update_batch(self, insertions=(), deletions=()) -> None:
        """One mixed batch: deletions first, then insertions."""
        deletions, insertions = list(deletions), list(insertions)
        if deletions:
            self.delete_batch(deletions)
        if insertions:
            self.insert_batch(insertions)

    # -- queries --------------------------------------------------------------------

    def _rung_low(self, i: int) -> bool:
        """Rung ``i``'s verdict; deferred rungs are provably "low"."""
        self.cm.tick()  # one verdict probe (queries are charged per probe)
        if self.rung_skip and not self._live[i]:
            return True
        return self.rungs[i].guarantees_low()

    def _first_low(self) -> int:
        """Index of the first "low" rung (verdict-monotone binary search).

        The verdict is monotone up the ladder — a rung certifying
        ``rho <= (1+eps) H`` implies every taller hint certifies too —
        so the first-"low" scan is a predicate flip found with O(log
        #rungs) verdict probes.  The winning rung is materialised (its
        deferred queue flushed) because callers read its concrete
        orientation; rungs above and below keep their savings.
        """
        if self._fl_cache is None:
            hi = len(self.rungs) - 1
            if not self._rung_low(hi):
                raise InvariantViolation(
                    "no ladder rung certifies a density upper bound — the top "
                    "rung should always be 'low' since H_top >= n >= rho(G)"
                )
            lo = 0
            while lo < hi:
                mid = (lo + hi) // 2
                if self._rung_low(mid):
                    hi = mid
                else:
                    lo = mid + 1
            self._fl_cache = lo
        k = self._fl_cache
        if self.rung_skip and not self._live[k]:
            self._flush_rung(k)  # still "low": its skip certificate held throughout
            self._fl_cache = k  # _flush_rung clears the caches; the index stands
        return k

    def density_estimate(self) -> float:
        """``rho_ALG`` (the first 'low' rung's height)."""
        return float(self.heights[self._first_low()])

    def arboricity_estimate(self) -> float:
        """``lambda_ALG = 2 rho_ALG``."""
        return 2.0 * self.density_estimate()

    def orientation_out(self, v: int) -> list[int]:
        """Out-neighbours of ``v`` in the exported low out-degree orientation."""
        return self.rungs[self._first_low()].out_neighbors(v)

    def orientation_of(self, u: int, v: int) -> tuple[int, int]:
        return self.rungs[self._first_low()].orientation_of(u, v)

    def max_outdegree(self) -> int:
        return self.rungs[self._first_low()].max_out_export()

    def check_invariants(self) -> None:
        for rung in self.rungs:
            rung.check_invariants()
