"""Fixed-height density guard (Theorem 5.2).

Given a height hint ``H`` and accuracy ``eps``, after every batch the guard
answers one of:

* ``"low"`` — a certificate that ``rho(G) <= (1 + eps) H``, together with an
  orientation in which every out-degree is at most ``(2 + eps) H``;
* ``"high"`` — a certificate that ``rho(G) > (1 - eps) H``.

Two regimes around ``B = c log n / eps^2``:

* ``H >= B / eps`` — **bucket partition**: ``T = H / B`` independent
  ``BALANCED(B)`` structures; every edge lands in a uniformly random bucket
  (deterministic per-edge hash so deletions find their bucket).  If every
  bucket's max out-degree stays below ``B``, the union of the bucket
  orientations has out-degree < ``B T <= (1+eps) H`` — the "low" case;
  otherwise some bucket witnesses a dense sampled subgraph and Lemma 3.2 +
  Lemma A.4 certify "high".
* ``H < B / eps`` — **duplication**: ``BALANCED(H, K)`` with
  ``K ~ B / (eps H)``; max multigraph out-degree below ``H K`` certifies
  ``rho <= H`` and the majority orientation has out-degree <= 2H; otherwise
  "high" (Lemma 3.2 on the trimmed balanced sub-orientation).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Literal, Optional

from ..config import DEFAULT_CONSTANTS, Constants, check_eps, check_height
from ..errors import BatchError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel
from ..pram.executor import RungTask, SerialExecutor
from .balanced import BalancedOrientation
from .duplicated import DuplicatedBalanced
from .ladder import RungOps

Verdict = Literal["low", "high"]


class FixedHDensityGuard(RungOps):
    """Theorem 5.2's data structure for one height hint ``H``."""

    def __init__(
        self,
        H: int,
        eps: float,
        n: int,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
        executor: Optional[object] = None,
        substrate: str = "treap",
    ) -> None:
        self.H = check_height(H)
        self.eps = check_eps(eps)
        self.n = n
        self.constants = constants
        self.seed = seed
        self.B = constants.B(n, eps)
        self.cm = cm if cm is not None else CostModel()
        self.executor = executor if executor is not None else SerialExecutor()
        self.substrate = substrate
        self.changed_edges: set[tuple[int, int]] = set()

        if self.H >= self.B / eps:
            self.regime = "buckets"
            self.T = max(1, math.ceil(self.H / self.B))
            self.H_adj = self.B * self.T
            self._buckets: dict[int, BalancedOrientation] = {}  # lazy (Lemma 4.5)
            self.dup: Optional[DuplicatedBalanced] = None
        else:
            self.regime = "duplication"
            self.T = 1
            unit = max(1, math.ceil(self.B / (eps * self.H)))
            K = min(max(1, unit), constants.duplication_cap)
            if K % 2 == 0:
                # Lemma 6.1: odd K makes the majority unambiguous
                K = K + 1 if K + 1 <= constants.duplication_cap else K - 1
            self.K = K
            self.dup = DuplicatedBalanced(
                self.H * self.K, self.K, cm=self.cm, constants=constants, n_hint=n,
                substrate=substrate,
            )
            self._buckets = {}

    # -- bucket helpers -----------------------------------------------------------

    def _bucket_of(self, u: int, v: int) -> int:
        a, b = norm_edge(u, v)
        digest = hashlib.blake2b(
            f"{self.seed}:{a}:{b}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.T

    def _bucket(self, i: int) -> BalancedOrientation:
        bucket = self._buckets.get(i)
        if bucket is None:
            bucket = BalancedOrientation(
                self.B, cm=self.cm, constants=self.constants, n_hint=self.n,
                substrate=self.substrate,
            )
            self._buckets[i] = bucket
        return bucket

    # -- updates -------------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = [norm_edge(u, v) for u, v in edges]
        self.changed_edges = set(edges)
        if self.regime == "duplication":
            self.dup.insert_batch(edges)
            self._absorb_journal(self.dup.inner)
            return
        self._bucket_sweep("insert_batch", edges)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = [norm_edge(u, v) for u, v in edges]
        self.changed_edges = set(edges)
        if self.regime == "duplication":
            self.dup.delete_batch(edges)
            self._absorb_journal(self.dup.inner)
            return
        self._bucket_sweep("delete_batch", edges)

    def _bucket_sweep(self, method: str, edges: list[tuple[int, int]]) -> None:
        """Run each bucket's share as an independent executor task.

        The buckets are the ``T`` independent BALANCED(B) structures of
        the partition regime — the same shape as the ladder's rung sweep,
        so they share the executor protocol.  Journal absorption happens
        coordinator-side inside each task's accounting branch (``finish``)
        exactly where the inline loop charged it.
        """
        groups: dict[int, list[tuple[int, int]]] = {}
        for e in edges:
            groups.setdefault(self._bucket_of(*e), []).append(e)
        tasks = [
            RungTask(
                structure=self._bucket(i),
                method=method,
                args=(groups[i],),
                finish=self._absorb_journal,
                install=self._bucket_installer(i),
            )
            for i in sorted(groups)
        ]
        self.executor.run_structures(self.cm, tasks)

    def _bucket_installer(self, i: int):
        def install(bucket: BalancedOrientation) -> None:
            self._buckets[i] = bucket

        return install

    def _absorb_journal(self, inner: BalancedOrientation) -> None:
        """Record undirected edges whose orientation may have changed —
        the raw material of Lemma 6.1's D_ins/D_del tables."""
        self.cm.charge(work=len(inner.last_reversed) + 1, depth=1)
        for tail, head, _copy in inner.last_reversed:
            self.changed_edges.add(norm_edge(tail, head))

    # -- verdict (the Theorem 5.2 interface) ------------------------------------------

    def verdict(self) -> Verdict:
        if self.regime == "duplication":
            limit = self.H * self.K
            return "low" if self.dup.inner.max_outdegree() < limit else "high"
        return (
            "low"
            if all(b.max_outdegree() < self.B for b in self._buckets.values())
            else "high"
        )

    def guarantees_low(self) -> bool:
        return self.verdict() == "low"

    def skip_threshold(self) -> int:
        """Max-degree bound below which the verdict is provably "low".

        Duplication: the inner multigraph out-degree of ``v`` is at most
        ``K deg(v) < K H`` while the max degree stays below ``H``.
        Buckets: each bucket's out-degree at ``v`` is bounded by ``v``'s
        degree inside the bucket, below ``B`` while the max degree is.
        A batch arriving under this threshold cannot flip the verdict.
        """
        return self.H if self.regime == "duplication" else self.B

    # -- exported orientation (valid when verdict() == "low") ---------------------------

    def out_neighbors(self, v: int) -> list[int]:
        if self.regime == "duplication":
            return self.dup.majority_out_neighbors(v)
        out: list[int] = []
        for bucket in self._buckets.values():
            out.extend(bucket.out_neighbors(v))
        return out

    def orientation_of(self, u: int, v: int) -> tuple[int, int]:
        if self.regime == "duplication":
            return self.dup.majority_orientation(u, v)
        # .get, not _bucket(): a query must never materialise a bucket —
        # reads have to leave the structure byte-for-byte unchanged so
        # resident worker copies (SharedStateExecutor) stay coherent.
        bucket = self._buckets.get(self._bucket_of(u, v))
        if bucket is None:
            raise BatchError(f"edge ({u}, {v}, copy=0) not present")
        return bucket.orientation_of(u, v)

    def max_out_export(self) -> int:
        """Max out-degree of the exported orientation."""
        vertices: set[int] = set()
        if self.regime == "duplication":
            vertices.update(self.dup.inner.level)
        else:
            for bucket in self._buckets.values():
                vertices.update(bucket.level)
        return max((len(self.out_neighbors(v)) for v in vertices), default=0)

    def out_degree_bound(self) -> float:
        """The bound the "low" certificate promises for the export."""
        if self.regime == "duplication":
            return 2.0 * self.H
        return float(self.H_adj)

    def check_invariants(self) -> None:
        if self.regime == "duplication":
            self.dup.check_invariants()
        else:
            for bucket in self._buckets.values():
                bucket.check_invariants()
