"""``BALANCED(H, K)`` — the K-duplicated structure (Corollary 5.4).

Lemma 5.3: duplicating every edge K times multiplies every coreness by
exactly K, so a ``K*H``-balanced orientation of the duplicated multigraph
estimates ``K * core(v)`` with the *same additive error* ``O(log n / eps)``
— relative to the K-times-larger measure, the error shrinks by K.  That is
how Theorem 5.1 gets a useful estimate for heights below the threshold
``B``.

This wrapper inserts copies ``0..K-1`` of every undirected edge into one
:class:`~repro.core.balanced.BalancedOrientation` (which supports
multi-arcs natively) and exports:

* ``fractional_outdegree(v) = d+(v) / K`` — the estimate feeding Thm 5.1;
* a *majority* simple-graph orientation (each undirected edge points the
  way >= K/2 of its copies point), the Theorem 5.2 device giving max
  out-degree <= 2H from an HK-bounded multigraph orientation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants, check_height
from ..errors import ParameterError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel
from .balanced import BalancedOrientation


class DuplicatedBalanced:
    """K-fold duplicated balanced orientation."""

    def __init__(
        self,
        inner_H: int,
        K: int,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        n_hint: int = 64,
        substrate: str = "treap",
    ) -> None:
        if K < 1:
            raise ParameterError(f"K must be >= 1, got {K}")
        if K > constants.duplication_cap:
            raise ParameterError(
                f"K = {K} exceeds duplication_cap = {constants.duplication_cap}; "
                "raise the cap via Constants if this is intentional"
            )
        self.K = K
        self.inner = BalancedOrientation(
            check_height(inner_H), cm=cm, constants=constants, n_hint=n_hint,
            substrate=substrate,
        )

    @property
    def cm(self) -> CostModel:
        return self.inner.cm

    # -- updates (one undirected edge = K multigraph copies) ------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        arcs = [
            (u, v, c) for (u, v) in (norm_edge(a, b) for a, b in edges)
            for c in range(self.K)
        ]
        self.inner.insert_multi_batch(arcs)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        arcs = [
            (u, v, c) for (u, v) in (norm_edge(a, b) for a, b in edges)
            for c in range(self.K)
        ]
        self.inner.delete_multi_batch(arcs)

    # -- estimates ---------------------------------------------------------------

    def fractional_outdegree(self, v: int) -> float:
        return self.inner.outdegree(v) / self.K

    def max_fractional_outdegree(self) -> float:
        return self.inner.max_outdegree() / self.K

    def has_edge(self, u: int, v: int) -> bool:
        return self.inner.has_edge(u, v, 0)

    def majority_orientation(self, u: int, v: int) -> tuple[int, int]:
        """(tail, head) that at least half the copies agree on."""
        a, b = norm_edge(u, v)
        toward_b = 0
        for c in range(self.K):
            tail, _head = self.inner.orientation_of(a, b, c)
            if tail == a:
                toward_b += 1
        return (a, b) if 2 * toward_b >= self.K else (b, a)

    def majority_out_neighbors(self, v: int) -> list[int]:
        """Out-neighbours of ``v`` under the majority orientation.

        v points at w iff a strict majority of the copies leave v; exact
        ties (possible only for even K — the paper assumes K odd, Lemma
        6.1) break toward the smaller endpoint so that exactly one side
        claims every edge, consistent with :meth:`majority_orientation`.
        """
        counts: dict[int, int] = {}
        for head in self.inner.out_neighbors(v):
            counts[head] = counts.get(head, 0) + 1
        out = []
        for w, c in counts.items():
            if 2 * c > self.K or (2 * c == self.K and v < w):
                out.append(w)
        return out

    def check_invariants(self) -> None:
        self.inner.check_invariants()
        # every undirected edge has exactly K copies
        per_edge: dict[tuple[int, int], int] = {}
        for (a, b, _copy) in self.inner.tail_of:
            per_edge[(a, b)] = per_edge.get((a, b), 0) + 1
        for e, count in per_edge.items():
            if count != self.K:
                raise ParameterError(f"edge {e} has {count} copies, expected {self.K}")
