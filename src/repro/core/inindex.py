"""Per-vertex incoming-edge index (Section 4.1).

For each vertex ``v``, each truncated rank ``i in 1..H+1`` and each label
``c in 0..3``, the paper keeps a BST of the incoming edges ``(w -> v)``
with that truncated rank and label, ordered by ``min(H, d+(w))``.  The
only query ever issued is "give me an incoming edge with truncated rank
``i``, label ``c``, whose tail sits at truncated level exactly ``L``" —
i.e. a lookup of the *minimum-level* element after checking its key, so a
bucketed index (nested dicts: ``(tr, label) -> level -> treap of tails``)
supports the identical access pattern.  Levels are bounded by ``H`` after
truncation, so buckets are exact, not approximations.

Each bucket is a :class:`~repro.pbst.treap.Treap` (the paper's BST) rather
than a hash set, and ``any_at`` answers with the *minimum* filed tail.  The
games only need *some* tail, but the choice must be a pure function of the
bucket's contents: a hash set's iteration order depends on its internal
table history, which a pickle round-trip rebuilds differently -- the
process executor ships structures across workers, and replicas must take
identical trajectories for serial and process runs to report identical
work/depth/counters (docs/PERFORMANCE.md).  Treaps are history-independent
(one shape per key set, priorities derived from keys), so the pick is
canonical.

Cost parity: every mutation here is one dictionary/treap operation, charged
by the enclosing structure at the [PP01] rate the paper charges
(``O(log n)`` per edge touched; Lemmas 4.3/4.4).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..pbst.treap import Treap


class InIndex:
    """Incoming-edge index of one vertex."""

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        # (tr, label) -> { levkey -> Treap(tails) }
        self._buckets: dict[tuple[int, int], dict[int, Treap]] = {}

    def add(self, tail: int, tr: int, label: int, lev: int) -> None:
        by_level = self._buckets.setdefault((tr, label), {})
        bucket = by_level.setdefault(lev, Treap())
        if not bucket.insert(tail):
            raise AssertionError(f"in-edge from {tail} already filed at {(tr, label, lev)}")

    def remove(self, tail: int, tr: int, label: int, lev: int) -> None:
        by_level = self._buckets.get((tr, label))
        bucket = by_level.get(lev) if by_level else None
        if bucket is None or not bucket.delete(tail):
            raise AssertionError(
                f"in-edge from {tail} not filed at {(tr, label, lev)}"
            )
        if not bucket:
            del by_level[lev]
        if not by_level:
            del self._buckets[(tr, label)]

    def move(
        self,
        tail: int,
        old: tuple[int, int, int],
        new: tuple[int, int, int],
    ) -> None:
        """Re-file one in-edge under new (tr, label, lev)."""
        if old == new:
            return
        self.remove(tail, *old)
        self.add(tail, *new)

    def any_at(self, tr: int, label: int, lev: int) -> Optional[int]:
        """The minimum tail filed at exactly (tr, label, lev), else None.

        Canonical (content-determined) so replicas shipped across process
        boundaries take the same game trajectory -- see the module docstring.
        """
        by_level = self._buckets.get((tr, label))
        if not by_level:
            return None
        bucket = by_level.get(lev)
        if not bucket:
            return None
        return bucket.min()

    def any_truncated(self, tr: int, lev: int) -> Optional[int]:
        """Any tail with truncated rank ``tr`` at level ``lev``, any label.

        Used for the ``tr = H + 1`` step of the deletion game, where the
        paper notes all labels are 0 anyway; scanning the 4 label values is
        O(1).
        """
        for label in range(4):
            tail = self.any_at(tr, label, lev)
            if tail is not None:
                return tail
        return None

    def entries(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield (tail, tr, label, lev) of every filed in-edge (for checks)."""
        for (tr, label), by_level in self._buckets.items():
            for lev, bucket in by_level.items():
                for tail in bucket:
                    yield tail, tr, label, lev

    def __len__(self) -> int:
        return sum(
            len(bucket)
            for by_level in self._buckets.values()
            for bucket in by_level.values()
        )
