"""Ladder sharding: executor routing, rung-skip filtering, query caching.

The unconditional ladders (Theorems 1.1/1.2) sweep ``O(log n / eps)``
*independent* fixed-H rungs per batch.  This module is the shared layer
both ladder classes mix in:

* **Executor routing** — every batch becomes one :class:`~repro.pram.
  executor.RungTask` per participating rung, handed to a pluggable
  executor (:class:`~repro.pram.executor.SerialExecutor` by default —
  bit-identical to the historical inline loop — or
  :class:`~repro.pram.executor.ProcessExecutor` for real parallelism
  with merged cost/telemetry deltas).

* **Rung-skip filtering** (opt-in, ``rung_skip=True``) — a rung whose
  hint ``H`` sits provably above what the graph can saturate defers its
  updates instead of processing them.  The certificate is a running
  max-degree upper bound ``deg_bound`` (monotone: inserts raise it,
  deletes leave it stale-high, so it never under-estimates): while
  ``deg_bound < rung.skip_threshold()`` the rung's estimate/verdict is
  known without running it — every coreness estimate stays below ``H``
  (``f(v) <= deg(v)`` in the duplication regime, and ``f(v) < H`` iff
  ``deg(v) < B`` in the sampling regime) and every density verdict is
  "low" (each inner out-degree is bounded by the max degree).  Deferred
  batches queue in arrival order; the first batch that lifts the bound
  past the threshold (or a query that needs the rung's concrete state)
  replays the queue — deterministically identical to never deferring,
  because samplers and bucket assignment hash per edge.  Skips are
  counted on the cost model as ``ladder_rungs_skipped`` (mirrored by the
  batch timer as ``repro_ladder_rungs_skipped_total``).  A batch that is
  effectively empty after normalisation skips every rung outright.

* **Query caching** — per-vertex coreness estimates, the ladder max, and
  the density first-"low" index memoise between batches; a batch
  invalidates exactly the vertices it could have changed (its endpoints
  plus every vertex an executed rung's reversal/insertion/deletion
  journals touched).  A deferred-rung flush clears the caches wholesale
  (journals of intermediate replayed batches are not retained).

Cost-model semantics are frozen in the default configuration: with the
serial executor and filtering off, work/depth/counters are bit-identical
to the pre-sharding inline loops (``repro profile --check`` holds under
both backends).  Filtering changes the cost *because that is its point*;
its bookkeeping is charged at O(|batch|) work, O(1) depth per dispatch.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..pram.executor import RungTask, SerialExecutor


class RungStore(list):
    """Rung list that materialises resident-state placeholders on read.

    The shared-state executor installs lazy handles (objects exposing
    ``__materialize__``) where rung structures used to live, so steady
    batches never pull worker-resident state back.  Every *read* of a
    rung — queries, invariant checks, checkpoint capture, flushes —
    resolves the handle in place; the dispatch loop uses :meth:`raw` so
    routing a batch stays O(1) per rung regardless of residency.
    """

    def __getitem__(self, i):
        item = list.__getitem__(self, i)
        resolve = getattr(item, "__materialize__", None)
        if resolve is not None:
            item = resolve()
            list.__setitem__(self, i, item)
        return item

    def __iter__(self):
        return (self[i] for i in range(len(self)))

    def raw(self, i: int):
        """The stored entry (possibly a handle), without materialising."""
        return list.__getitem__(self, i)


class RungOps:
    """Mixin for rung structures: replay a deferred ``(method, edges)`` queue."""

    def apply_ops(self, ops: Iterable[tuple[str, list[tuple[int, int]]]]) -> None:
        """Apply queued batches in arrival order (the defer-replay funnel).

        A single-element queue is exactly one direct batch call, so the
        executor can route *every* update through this one entry point
        without perturbing the cost model.
        """
        for method, edges in ops:
            if method == "insert_batch":
                self.insert_batch(edges)
            elif method == "delete_batch":
                self.delete_batch(edges)
            else:  # pragma: no cover - the ladder only queues batch methods
                raise ValueError(f"unknown deferred rung op {method!r}")


class RungLadder:
    """Mixin for the ladder classes: sharding, filtering, and caching state."""

    #: subclasses that already charge O(|batch|) dispatch work set this True
    #: so filtering bookkeeping is not double-charged.
    _dispatch_precharged = False

    def _init_ladder(self, executor: Optional[Any], rung_skip: bool) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.rung_skip = bool(rung_skip)
        #: handle-aware storage for the rungs (see :class:`RungStore`).
        self.rungs = RungStore(self.rungs)
        #: skip thresholds are pure functions of (H, B, regime) — cached at
        #: init so the dispatch loop never has to materialise a rung.
        self._skip_thresholds: list[int] = [
            rung.skip_threshold() for rung in self.rungs
        ]
        #: per-rung deferred (method, edges) queues (filtering only).
        self._pending: list[list[tuple[str, list]]] = [[] for _ in self.rungs]
        #: live[i] — rung i has processed every update so far.
        self._live: list[bool] = [not self.rung_skip] * len(self.rungs)
        #: exact current degrees (filtering only; empty otherwise).
        self._deg: dict[int, int] = {}
        #: monotone upper bound on the max degree ever seen.
        self._deg_bound: int = 0
        # query memo caches (see _invalidate_queries)
        self._est_cache: dict[int, float] = {}
        self._max_est: Optional[float] = None
        self._fl_cache: Optional[int] = None

    # -- dispatch -----------------------------------------------------------

    def _ladder_dispatch(self, method: str, edges: list[tuple[int, int]]) -> None:
        """Route one batch through the executor, deferring filtered rungs."""
        skipped = 0
        tasks: list[RungTask] = []
        executed: list[int] = []
        flushed = False
        if self.rung_skip:
            if not self._dispatch_precharged:
                # filtering bookkeeping: O(|batch|) work, O(1) depth
                self.cm.charge(work=len(edges) + 1, depth=1)
            self._track_degrees(method, edges)
        if self.rung_skip and not edges:
            skipped = len(self.rungs)  # empty effective bundle: nothing to do
        else:
            for i, H in enumerate(self.heights):
                if (
                    self.rung_skip
                    and not self._live[i]
                    and self._deg_bound < self._skip_thresholds[i]
                ):
                    self._pending[i].append((method, edges))
                    skipped += 1
                    continue
                ops: list[tuple[str, list]] = []
                if not self._live[i]:
                    ops.extend(self._pending[i])
                    self._pending[i].clear()
                    self._live[i] = True
                    flushed = True
                ops.append((method, edges))
                tasks.append(
                    RungTask(
                        # raw: a resident rung ships as its handle (ops-only)
                        structure=self.rungs.raw(i),
                        method="apply_ops",
                        args=(ops,),
                        span="ladder.rung",
                        attrs={"H": H},
                        install=self._rung_installer(i),
                    )
                )
                executed.append(i)
        if skipped:
            self.cm.count("ladder_rungs_skipped", skipped)
        if tasks:
            self.executor.run_structures(self.cm, tasks)
        self._invalidate_queries(edges, executed, flushed)

    def _rung_installer(self, i: int):
        def install(structure: Any) -> None:
            self.rungs[i] = structure

        return install

    def _track_degrees(self, method: str, edges: list[tuple[int, int]]) -> None:
        deg = self._deg
        if method == "insert_batch":
            bound = self._deg_bound
            for u, v in edges:
                for x in (u, v):
                    d = deg.get(x, 0) + 1
                    deg[x] = d
                    if d > bound:
                        bound = d
            self._deg_bound = bound
        else:
            # degrees shrink but the bound stays monotone — a stale-high
            # bound is still a sound skip certificate, and monotonicity
            # guarantees each rung flushes at most once, ever.
            for u, v in edges:
                for x in (u, v):
                    d = deg.get(x, 0)
                    if d > 0:
                        deg[x] = d - 1

    # -- deferred-rung flushing --------------------------------------------

    def _flush_rung(self, i: int) -> None:
        """Replay rung ``i``'s deferred queue in place (query materialisation)."""
        if self._live[i]:
            return
        ops = list(self._pending[i])
        self._pending[i].clear()
        self._live[i] = True
        if ops:
            self.rungs[i].apply_ops(ops)
        self._reset_query_caches()

    def flush_all_pending(self) -> None:
        """Bring every deferred rung up to date (checkpoints, audits)."""
        if not self.rung_skip:
            return
        for i in range(len(self.rungs)):  # reprolint: disable=REP-P001
            self._flush_rung(i)

    # -- query cache maintenance -------------------------------------------

    def _reset_query_caches(self) -> None:
        self._est_cache.clear()
        self._max_est = None
        self._fl_cache = None

    def _invalidate_queries(
        self, edges: list[tuple[int, int]], executed: list[int], flushed: bool
    ) -> None:
        """Drop exactly the memoised answers this batch could have changed.

        An estimate can only move when some rung's out-degree at the
        vertex moved, and every out-degree move is either an endpoint of
        the batch or an endpoint of an arc in an executed rung's
        insertion/deletion/reversal journals.  A flush replayed several
        batches whose intermediate journals are gone — clear everything.
        """
        self._max_est = None
        self._fl_cache = None
        if not self._est_cache:
            return
        if flushed:
            self._est_cache.clear()
            return
        dirty: set[int] = set()
        for u, v in edges:
            dirty.add(u)
            dirty.add(v)
        for i in executed:
            journal = getattr(self.rungs[i], "journal_vertices", None)
            if journal is None:  # pragma: no cover - all rungs provide it
                self._est_cache.clear()
                return
            dirty.update(journal())
        for v in dirty:
            self._est_cache.pop(v, None)


__all__ = ["RungLadder", "RungOps", "RungStore"]
