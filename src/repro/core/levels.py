"""Level/height helpers shared by the orientation machinery.

In the H-balanced structure (Definition 3.1) the *level* of a vertex is its
recorded out-degree, and every comparison is made through the truncation
``min(H, level)``.  Levels are deliberately frozen while a token game runs
(Sections 4.2/4.3) — the recorded level and the actual out-set size then
differ by exactly the token count — and are reconciled at settlement.
"""

from __future__ import annotations


def levkey(level: int, H: int) -> int:
    """The truncated level ``min(H, level)`` used by every in-index bucket."""
    return level if level < H else H


def is_h_balanced_edge(level_tail: int, level_head: int, H: int) -> bool:
    """Definition 3.1: ``min(H, d+(u)) <= min(H, d+(v)) + 1`` for ``u -> v``."""
    return levkey(level_tail, H) <= levkey(level_head, H) + 1
