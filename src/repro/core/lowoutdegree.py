"""``LOWOUTDEGREE(H, eps)`` — the application-facing interface (Lemma 6.1).

Wraps a fixed-height density guard (Theorem 5.2) and additionally maintains
the three hash tables the applications of Section 6 consume:

* ``D_out(v)`` — the out-neighbour set of every vertex under the exported
  orientation (kept incrementally, O(1) access);
* ``D_ins`` / ``D_del`` — after each batch, the set of undirected edges
  whose exported orientation may have changed, with the new orientation.

The guard's journals (arcs reversed/inserted/deleted inside the balanced
structures) bound the size of these tables by the structures' work, exactly
as the lemma states.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants
from ..errors import BatchError
from ..graphs.graph import norm_edge
from ..hashtable.batch_table import BatchHashTable
from ..instrument.work_depth import CostModel
from .density_fixed import FixedHDensityGuard, Verdict


class LowOutDegree:
    """Low out-degree orientation with change-notification tables."""

    def __init__(
        self,
        H: int,
        eps: float,
        n: int,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
        executor: Optional[object] = None,
        substrate: str = "treap",
    ) -> None:
        self.cm = cm if cm is not None else CostModel()
        # the guard's bucket sweep is this structure's parallel hot path;
        # the executor (serial by default) routes it (docs/PERFORMANCE.md)
        self.guard = FixedHDensityGuard(
            H, eps, n, cm=self.cm, constants=constants, seed=seed,
            executor=executor, substrate=substrate,
        )
        # exported orientation mirror: edge -> tail, vertex -> set of heads
        self._tail: dict[tuple[int, int], int] = {}
        self._out: dict[int, set[int]] = {}
        # change tables of the last batch
        self.d_ins = BatchHashTable(cm=self.cm)
        self.d_del = BatchHashTable(cm=self.cm)

    # -- updates ----------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = [norm_edge(u, v) for u, v in edges]
        self.guard.insert_batch(edges)
        self.d_ins = BatchHashTable(cm=self.cm)
        self.d_del = BatchHashTable(cm=self.cm)
        self._sync_changed(self.guard.changed_edges, self.d_ins)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        edges = [norm_edge(u, v) for u, v in edges]
        self.guard.delete_batch(edges)
        self.d_ins = BatchHashTable(cm=self.cm)
        self.d_del = BatchHashTable(cm=self.cm)
        self._sync_changed(self.guard.changed_edges, self.d_del)

    def _sync_changed(self, changed: set[tuple[int, int]], table: BatchHashTable) -> None:
        """Reconcile the exported mirror for every possibly-changed edge."""
        # mirror maintenance: O(|changed|) work at O(1) depth per edge
        self.cm.charge(work=len(changed) + 1, depth=1)
        updates = []
        for a, b in sorted(changed):
            old_tail = self._tail.get((a, b))
            try:
                new_tail, new_head = self.guard.orientation_of(a, b)
                present = True
            except BatchError:
                present = False  # the edge was deleted this batch
            if present:
                if old_tail != new_tail:
                    if old_tail is not None:
                        old_head = b if old_tail == a else a
                        self._out.get(old_tail, set()).discard(old_head)
                    self._tail[(a, b)] = new_tail
                    self._out.setdefault(new_tail, set()).add(new_head)
                    updates.append(((a, b), (new_tail, new_head)))
            else:
                if old_tail is not None:
                    old_head = b if old_tail == a else a
                    self._out.get(old_tail, set()).discard(old_head)
                    del self._tail[(a, b)]
                    updates.append(((a, b), None))
        table.batch_set(updates)

    # -- interfaces of Lemma 6.1 ----------------------------------------------------

    def verdict(self) -> Verdict:
        return self.guard.verdict()

    def guarantees_low(self) -> bool:
        return self.guard.guarantees_low()

    def d_out(self, v: int) -> set[int]:
        """The out-neighbour hash table of ``v`` (O(1) access)."""
        return self._out.get(v, set())

    def orientation_of(self, u: int, v: int) -> tuple[int, int]:
        a, b = norm_edge(u, v)
        tail = self._tail[(a, b)]
        return (tail, b if tail == a else a)

    def max_outdegree(self) -> int:
        return max((len(s) for s in self._out.values()), default=0)

    def check_invariants(self) -> None:
        self.guard.check_invariants()
        # mirror agrees with the guard's exported orientation
        for (a, b), tail in self._tail.items():
            g_tail, _g_head = self.guard.orientation_of(a, b)
            if g_tail != tail:
                from ..errors import InvariantViolation

                raise InvariantViolation(
                    f"export mirror stale for edge {(a, b)}: {tail} vs {g_tail}"
                )
        count = sum(len(s) for s in self._out.values())
        if count != len(self._tail):
            from ..errors import InvariantViolation

            raise InvariantViolation("out-mirror and tail-mirror disagree")
