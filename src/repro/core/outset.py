"""Per-vertex ranked out-edge set (Definition 4.2).

The *rank* of a directed edge ``(u -> v)`` is the 1-indexed position of
``v`` in the ordered set of ``u``'s out-neighbours; the *truncated rank* is
``min(H + 1, rank)``.  The order itself is immaterial ("the order of
storing edges is not important" — Section 4.1); we order by neighbour id,
which is stable and deterministic.

Backed by the [PP01]-substitute treap so that rank and select are genuine
O(log n) operations — the deletion game's "incoming edge of rank i" lookups
and the implicit-coloring forests ``F_{i,j}`` (Corollary 1.5) both rely on
rank/select.
"""

from __future__ import annotations

from typing import Iterator

from ..pbst.treap import Treap


class OutSet:
    """Ordered out-neighbour set of one vertex."""

    __slots__ = ("_treap",)

    def __init__(self) -> None:
        self._treap = Treap()

    def __len__(self) -> int:
        return len(self._treap)

    def __contains__(self, w: int) -> bool:
        return w in self._treap

    def add(self, w: int) -> None:
        if not self._treap.insert(w):
            raise AssertionError(f"out-edge to {w} already present")

    def remove(self, w: int) -> None:
        if not self._treap.delete(w):
            raise AssertionError(f"out-edge to {w} absent")

    def rank(self, w: int) -> int:
        """1-indexed rank of the edge to ``w`` (must be present)."""
        if w not in self._treap:
            raise AssertionError(f"out-edge to {w} absent")
        return self._treap.rank(w) + 1

    def select(self, rank: int) -> int:
        """Neighbour at 1-indexed ``rank``."""
        return self._treap.select(rank - 1)

    def first(self, k: int) -> list[int]:
        """The first ``min(k, len)`` neighbours in rank order."""
        top = min(k, len(self._treap))
        return [self._treap.select(i) for i in range(top)]

    def window(self, lo: int, hi: int) -> list[int]:
        """Neighbours at 1-indexed positions ``lo..hi`` inclusive (clamped)."""
        top = min(hi, len(self._treap))
        return [self._treap.select(i) for i in range(max(0, lo - 1), top)]

    def __iter__(self) -> Iterator[int]:
        return iter(self._treap)

    def check(self) -> None:
        self._treap.check()
