"""Query layer on top of the dynamic estimators.

The paper's introduction motivates coreness decomposition as a
*hierarchical* organisation of the graph: each k-core is a connected
component of the subgraph induced by vertices of coreness >= k.  This
module provides those consumer-facing queries over the batch-dynamic
estimates:

* :class:`CorenessMonitor` — owns a ground-truth edge mirror plus a
  :class:`~repro.core.coreness.CorenessDecomposition`, and answers
  k-core membership, induced k-core subgraphs, connected k-cores (via
  parallel label propagation, depth = O(rounds) in the cost model), and
  the full core hierarchy.
* :func:`extract_dense_set` — a densest-subgraph *witness* from a low
  out-degree orientation: the expansion-ball construction inside Lemma
  3.2's proof, run forward (start at a max-out-degree vertex, repeatedly
  absorb out-neighbourhoods, keep the densest prefix).
* :func:`pseudoforest_decomposition` — splits an orientation with max
  out-degree d into d pseudoforests (the F_j forests of Corollary 1.5),
  a certified arboricity-style decomposition usable downstream.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import DEFAULT_CONSTANTS, Constants
from ..graphs.graph import DynamicGraph
from ..instrument.work_depth import CostModel
from .coreness import CorenessDecomposition
from .density import DensityEstimator


class CorenessMonitor:
    """Batch-dynamic k-core queries (membership, subgraphs, components)."""

    def __init__(
        self,
        n: int,
        eps: float = DEFAULT_CONSTANTS.ladder_base_eps,
        cm: Optional[CostModel] = None,
        constants: Constants = DEFAULT_CONSTANTS,
        seed: int = 0,
    ) -> None:
        self.cm = cm if cm is not None else CostModel()
        self.decomposition = CorenessDecomposition(
            n, eps, cm=self.cm, constants=constants, seed=seed
        )
        self.graph = DynamicGraph(n)

    # -- updates ---------------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = self.graph.insert_batch(edges)
        self.decomposition.insert_batch(batch)

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        batch = self.graph.delete_batch(edges)
        self.decomposition.delete_batch(batch)

    def update_batch(self, insertions=(), deletions=()) -> None:
        """One mixed batch: deletions first, then insertions."""
        deletions, insertions = list(deletions), list(insertions)
        if deletions:
            self.delete_batch(deletions)
        if insertions:
            self.insert_batch(insertions)

    # -- queries ------------------------------------------------------------------

    def estimate(self, v: int) -> float:
        return self.decomposition.estimate(v)

    def vertices_with_core_at_least(self, k: float) -> set[int]:
        """Vertices whose *estimated* coreness reaches ``k``."""
        touched = self.graph.touched_vertices()
        self.cm.charge(work=max(1, len(touched)), depth=1)
        return {v for v in touched if self.decomposition.estimate(v) >= k}

    def core_subgraph(self, k: float) -> DynamicGraph:
        """Induced subgraph on the estimated k-core vertices."""
        keep = self.vertices_with_core_at_least(k)
        sub = self.graph.subgraph(keep)
        self.cm.charge(work=max(1, self.graph.m), depth=1)
        return sub

    def connected_k_cores(self, k: float, method: str = "contract") -> list[set[int]]:
        """Connected components of the estimated k-core.

        ``method="contract"`` (default) uses random hook-and-contract
        (:func:`repro.pram.connectivity.connected_components`): O(log n)
        rounds w.h.p., the genuinely parallel choice.
        ``method="propagate"`` uses min-label propagation: O(diameter)
        rounds, kept as the simple comparator.
        """
        keep = self.vertices_with_core_at_least(k)
        if method == "contract":
            from ..pram.connectivity import connected_components

            labels, _rounds = connected_components(
                keep, neighbors=self.graph.adj, cm=self.cm
            )
        elif method == "propagate":
            labels = self._propagate_labels(keep)
        else:
            raise ValueError(f"unknown method {method!r}")
        groups: dict[int, set[int]] = {}
        for v, lab in labels.items():
            groups.setdefault(lab, set()).add(v)
        return sorted(groups.values(), key=lambda s: (-len(s), min(s)))

    def _propagate_labels(self, keep: set[int]) -> dict[int, int]:
        # Jacobi rounds: every branch reads the pre-round labels, improved
        # labels are gathered and applied only after the region closes, so
        # the simulated phase matches a synchronous PRAM step.
        label = {v: v for v in keep}
        while True:
            updates: list[tuple[int, int]] = []
            with self.cm.parallel() as region:
                for v in sorted(keep):
                    with region.branch():
                        self.cm.tick(1 + self.graph.degree(v))
                        best = min(
                            [label[v]]
                            + [label[w] for w in self.graph.neighbors(v) if w in keep]
                        )
                        if best < label[v]:
                            updates.append((v, best))
            if not updates:
                return label
            for v, best in sorted(updates):
                label[v] = best

    def hierarchy(self) -> list[tuple[float, set[int]]]:
        """The nested core hierarchy: (level, vertices with estimate >= level).

        Levels are the distinct estimate values, ascending; each returned
        vertex set contains all later ones (the nesting the paper's intro
        describes).
        """
        touched = self.graph.touched_vertices()
        estimates = {v: self.decomposition.estimate(v) for v in touched}
        levels = sorted(set(estimates.values()))
        return [
            (lvl, {v for v, e in estimates.items() if e >= lvl}) for lvl in levels
        ]


def extract_dense_set(density: DensityEstimator) -> set[int]:
    """A densest-subgraph witness from the maintained orientation.

    Starts at a maximum-out-degree vertex of the exported orientation and
    repeatedly absorbs out-neighbourhoods (the expansion of Lemma 3.2);
    returns the densest set seen.  The lemma's argument guarantees the
    start vertex sits inside a region of density close to rho(G).
    """
    rung = density.rungs[density._first_low()]
    vertices: set[int] = set()
    if rung.regime == "duplication":
        vertices.update(rung.dup.inner.level)
    else:
        for bucket in rung._buckets.values():
            vertices.update(bucket.level)
    if not vertices:
        return set()
    start = max(vertices, key=lambda v: len(density.orientation_out(v)))
    ball = {start}
    best = set(ball)
    best_density = _export_density(density, ball)
    for _ in range(16):
        grown = set(ball)
        for v in ball:
            grown.update(density.orientation_out(v))
        if grown == ball:
            break
        ball = grown
        d = _export_density(density, ball)
        if d > best_density:
            best_density = d
            best = set(ball)
    return best


def _export_density(density: DensityEstimator, s: set[int]) -> float:
    if not s:
        return 0.0
    m = sum(1 for v in s for w in density.orientation_out(v) if w in s)
    return m / len(s)


def pseudoforest_decomposition(density: DensityEstimator) -> list[dict[int, int]]:
    """Split the exported orientation into pseudoforests.

    Part ``j`` maps each vertex to its j-th out-neighbour (sorted order);
    every vertex has at most one successor per part, and the parts cover
    every edge exactly once — the F_j structures of Corollary 1.5.
    """
    rung = density.rungs[density._first_low()]
    vertices: set[int] = set()
    if rung.regime == "duplication":
        vertices.update(rung.dup.inner.level)
    else:
        for bucket in rung._buckets.values():
            vertices.update(bucket.level)
    parts: list[dict[int, int]] = []
    for v in sorted(vertices):
        outs = sorted(density.orientation_out(v))
        for j, w in enumerate(outs):
            while len(parts) <= j:
                parts.append({})
            parts[j][v] = w
    return parts
