"""Edge sampling and the Appendix A concentration statements.

Theorem 5.1's high-height regime runs ``BALANCED(B)`` on a subgraph where
every edge is kept independently with probability ``p = B / H``; Appendix A
(Lemmas A.1–A.4) shows coreness, density and arboricity all scale by ``p``
up to ``(1 ± eps)`` and an additive ``O(log n / eps)``.  This module
provides the deterministic-per-edge sampler the dynamic structures need
(the *same* coin must come up for an edge at insert and delete time) and
the empirical-verification helpers benchmark E8 uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from ..config import check_eps
from ..errors import ParameterError
from ..graphs.graph import DynamicGraph, Edge, norm_edge


class EdgeSampler:
    """Independent per-edge Bernoulli(p) coins, deterministic per edge.

    The coin for an edge is a hash of (seed, edge), so deletions observe the
    same decision as insertions without storing per-edge state — this is the
    moral equivalent of the paper's "BST of the set of edges, along with the
    label denoting whether it is sampled", in O(1) per query.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not (0.0 <= p <= 1.0):
            raise ParameterError(f"sampling probability must be in [0,1], got {p}")
        self.p = p
        self.seed = seed

    def keeps(self, u: int, v: int) -> bool:
        if self.p >= 1.0:
            return True
        if self.p <= 0.0:
            return False
        a, b = norm_edge(u, v)
        digest = hashlib.blake2b(
            f"{self.seed}:{a}:{b}".encode(), digest_size=8
        ).digest()
        value = int.from_bytes(digest, "big") / float(1 << 64)
        return value < self.p

    def filter(self, edges: Iterable[tuple[int, int]]) -> list[Edge]:
        return [norm_edge(u, v) for u, v in edges if self.keeps(u, v)]


def sample_graph(g: DynamicGraph, p: float, seed: int = 0) -> DynamicGraph:
    """The sampled graph ``G_p`` of Appendix A."""
    sampler = EdgeSampler(p, seed)
    out = DynamicGraph(g.n)
    out.insert_batch(sampler.filter(g.edges))
    out.n = g.n
    return out


@dataclass(frozen=True)
class ConcentrationBand:
    """The Appendix A band ``[(1-eps) p x - slack, (1+eps) p x + slack]``."""

    lower: float
    upper: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def expected_band(measure: float, p: float, eps: float, n: int, c: float = 2.0) -> ConcentrationBand:
    """Band predicted by Lemmas A.1–A.4 for a sampled measure.

    ``c`` scales the additive ``O(log n / eps)`` slack (the lemmas hide a
    constant; the default matches what the experiments observe).
    """
    import math

    check_eps(eps)
    slack = c * math.log2(max(n, 2)) / eps
    return ConcentrationBand(
        lower=(1 - eps) * p * measure - slack,
        upper=(1 + eps) * p * measure + slack,
    )
