"""Checkpointing for the balanced-orientation structure.

A production dynamic service needs to survive restarts without replaying
the whole update history.  A snapshot captures the *logical* state of
``BALANCED(H)`` — the oriented arc set and the recorded levels — and
``restore`` rebuilds the full indexed structure (out-sets, ranks,
in-index buckets) from it directly, bypassing the token games.  Restoring
is O(m H log n), the cost of filing every arc once.

JSON helpers are included so checkpoints can live in files; tests verify
the roundtrip is exact (same orientation, same levels, invariants green,
and updates continue correctly afterwards).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..config import DEFAULT_CONSTANTS, Constants
from ..errors import InvariantViolation
from ..instrument.work_depth import CostModel
from .balanced import BalancedOrientation


def snapshot(st: BalancedOrientation) -> dict[str, Any]:
    """Capture the logical state (arcs + levels + H)."""
    return {
        "H": st.H,
        "arcs": sorted(st.arcs()),
        "levels": {v: lvl for v, lvl in sorted(st.level.items()) if lvl or v in st.out},
    }


def restore(
    snap: dict[str, Any],
    cm: Optional[CostModel] = None,
    constants: Constants = DEFAULT_CONSTANTS,
) -> BalancedOrientation:
    """Rebuild a structure from a snapshot and verify its invariants."""
    st = BalancedOrientation(int(snap["H"]), cm=cm, constants=constants)
    # Pre-seeding the recorded levels makes every _arc_add file its
    # in-index entry under the final level bucket immediately.
    st.level = {int(v): int(lvl) for v, lvl in dict(snap["levels"]).items()}
    for tail, head, copy in snap["arcs"]:
        st._arc_add(int(tail), int(head), int(copy))
    try:
        st.check_invariants()
    except InvariantViolation as exc:
        raise InvariantViolation(f"snapshot is not a valid state: {exc}") from exc
    return st


def to_json(st: BalancedOrientation) -> str:
    """Serialise a structure snapshot to a JSON string."""
    snap = snapshot(st)
    return json.dumps(
        {
            "H": snap["H"],
            "arcs": [list(a) for a in snap["arcs"]],
            "levels": {str(v): lvl for v, lvl in snap["levels"].items()},
        }
    )


def from_json(
    payload: str,
    cm: Optional[CostModel] = None,
    constants: Constants = DEFAULT_CONSTANTS,
) -> BalancedOrientation:
    """Rebuild a validated :class:`BalancedOrientation` from :func:`to_json` output."""
    raw = json.loads(payload)
    snap = {
        "H": raw["H"],
        "arcs": [tuple(a) for a in raw["arcs"]],
        "levels": {int(v): lvl for v, lvl in raw["levels"].items()},
    }
    return restore(snap, cm=cm, constants=constants)
