"""Checkpointing for the balanced-orientation structure.

A production dynamic service needs to survive restarts without replaying
the whole update history.  A snapshot captures the *logical* state of
``BALANCED(H)`` — the oriented arc set and the recorded levels — and
``restore`` rebuilds the full indexed structure (out-sets, ranks,
in-index buckets) from it directly, bypassing the token games.  Restoring
is O(m H log n), the cost of filing every arc once.

JSON helpers are included so checkpoints can live in files; tests verify
the roundtrip is exact (same orientation, same levels, invariants green,
and updates continue correctly afterwards).  Malformed or truncated
snapshots — the kind a torn write or a stale file produces — are rejected
with :class:`~repro.errors.BatchError` (shape/content problems) or
:class:`~repro.errors.ParameterError` (bad H) carrying a message that
names the offending field, never a bare ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..config import DEFAULT_CONSTANTS, Constants
from ..errors import BatchError, InvariantViolation
from ..instrument.work_depth import CostModel
from .balanced import BalancedOrientation


def snapshot(st: BalancedOrientation) -> dict[str, Any]:
    """Capture the logical state (arcs + levels + H + substrate).

    The substrate is recorded so :func:`restore` rebuilds on the same
    storage layout by default; it is *not* part of the logical state —
    a snapshot taken on one substrate restores cleanly onto the other
    (``restore(snap, substrate=...)``) with identical answers.
    """
    return {
        "H": st.H,
        "substrate": st.substrate,
        "arcs": sorted(st.arcs()),
        "levels": {v: lvl for v, lvl in sorted(st.level.items()) if lvl or v in st.out},
    }


def _checked_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise BatchError(f"snapshot {what} must be an integer, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise BatchError(f"snapshot {what} must be an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise BatchError(f"snapshot {what} must be an integer, got {value!r}") from exc


def _checked_snapshot(snap: Any) -> tuple[int, list[tuple[int, int, int]], dict[int, int]]:
    """Validate a snapshot mapping; raise BatchError naming what is wrong."""
    if not isinstance(snap, dict):
        raise BatchError(f"snapshot must be a mapping, got {type(snap).__name__}")
    for key in ("H", "arcs", "levels"):
        if key not in snap:
            raise BatchError(f"snapshot missing key {key!r}")
    H = _checked_int(snap["H"], "H")
    if not isinstance(snap["arcs"], (list, tuple)):
        raise BatchError("snapshot 'arcs' must be a list of (tail, head, copy)")
    arcs: list[tuple[int, int, int]] = []
    for i, entry in enumerate(snap["arcs"]):
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise BatchError(
                f"snapshot arc #{i} must be a (tail, head, copy) triple, "
                f"got {entry!r}"
            )
        arcs.append(tuple(_checked_int(x, f"arc #{i} field") for x in entry))
    if not isinstance(snap["levels"], dict):
        raise BatchError("snapshot 'levels' must be a vertex -> level mapping")
    levels: dict[int, int] = {}
    for v, lvl in snap["levels"].items():
        levels[_checked_int(v, "level vertex")] = _checked_int(lvl, f"level of {v}")
    return H, arcs, levels


def restore(
    snap: dict[str, Any],
    cm: Optional[CostModel] = None,
    constants: Constants = DEFAULT_CONSTANTS,
    substrate: Optional[str] = None,
) -> BalancedOrientation:
    """Rebuild a structure from a snapshot and verify its invariants.

    ``substrate`` overrides the recorded storage layout; by default the
    structure comes back on the substrate it was captured on (snapshots
    predating the knob restore onto ``treap``, the historical layout).
    """
    H, arcs, levels = _checked_snapshot(snap)
    if substrate is None:
        substrate = snap.get("substrate", "treap")
        if not isinstance(substrate, str):
            raise BatchError(
                f"snapshot 'substrate' must be a string, got {substrate!r}"
            )
    st = BalancedOrientation(H, cm=cm, constants=constants, substrate=substrate)
    # Pre-seeding the recorded levels makes every _arc_add file its
    # in-index entry under the final level bucket immediately.
    st.level = levels
    # the restore loop: one filing per arc plus the level pre-seed
    st.cm.charge(work=len(arcs) + len(levels) + 1, depth=1)
    for tail, head, copy in arcs:
        if tail == head:
            raise BatchError(f"snapshot arc ({tail}, {head}, {copy}) is a self-loop")
        st._arc_add(tail, head, copy)
    try:
        st.check_invariants()
    except InvariantViolation as exc:
        raise InvariantViolation(f"snapshot is not a valid state: {exc}") from exc
    return st


def to_json(st: BalancedOrientation) -> str:
    """Serialise a structure snapshot to a JSON string."""
    snap = snapshot(st)
    return json.dumps(
        {
            "H": snap["H"],
            "substrate": snap["substrate"],
            "arcs": [list(a) for a in snap["arcs"]],
            "levels": {str(v): lvl for v, lvl in snap["levels"].items()},
        }
    )


def from_json(
    payload: str,
    cm: Optional[CostModel] = None,
    constants: Constants = DEFAULT_CONSTANTS,
    substrate: Optional[str] = None,
) -> BalancedOrientation:
    """Rebuild a validated :class:`BalancedOrientation` from :func:`to_json` output."""
    try:
        raw = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise BatchError(f"snapshot is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise BatchError(f"snapshot must be a JSON object, got {type(raw).__name__}")
    snap = {
        "H": raw.get("H"),
        "arcs": [
            tuple(a) if isinstance(a, (list, tuple)) else a
            for a in raw.get("arcs", ())
        ]
        if isinstance(raw.get("arcs"), (list, tuple))
        else raw.get("arcs"),
        "levels": raw.get("levels"),
    }
    if "substrate" in raw:
        snap["substrate"] = raw["substrate"]
    for key in ("H", "arcs", "levels"):
        if snap[key] is None:
            raise BatchError(f"snapshot missing key {key!r}")
    return restore(snap, cm=cm, constants=constants, substrate=substrate)
