"""Introspection: human-readable statistics of the dynamic structures.

Operators of a long-running service want to see, without stopping it,
how big the structures are, how levels are distributed, and how much
work the recent batches cost.  Everything here is read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .balanced import BalancedOrientation
from .coreness import CorenessDecomposition
from .density import DensityEstimator


@dataclass(frozen=True)
class OrientationStats:
    """One ``BALANCED(H)`` structure's shape and accumulated cost."""

    H: int
    vertices: int
    arcs: int
    max_outdegree: int
    mean_outdegree: float
    level_histogram: dict[int, int]  # truncated level -> count
    saturated_vertices: int  # level >= H
    total_work: int
    total_depth: int
    counters: dict[str, int]

    def render(self) -> str:
        lines = [
            f"BALANCED(H={self.H}): {self.vertices} vertices, {self.arcs} arcs",
            f"  out-degree: max {self.max_outdegree}, mean {self.mean_outdegree:.2f}, "
            f"{self.saturated_vertices} saturated (level >= H)",
            "  level histogram: "
            + " ".join(f"{l}:{c}" for l, c in sorted(self.level_histogram.items())),
            f"  cost so far: work {self.total_work}, depth {self.total_depth}",
        ]
        if self.counters:
            lines.append(
                "  events: "
                + " ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            )
        return "\n".join(lines)


def orientation_stats(st: BalancedOrientation) -> OrientationStats:
    """Snapshot one orientation structure into an :class:`OrientationStats`."""
    levels = [lvl for lvl in st.level.values()]
    active = [lvl for v, lvl in st.level.items() if lvl or v in st.out]
    histogram: dict[int, int] = {}
    for lvl in active:
        key = min(lvl, st.H)
        histogram[key] = histogram.get(key, 0) + 1
    arcs = st.num_arcs()
    return OrientationStats(
        H=st.H,
        vertices=len(active),
        arcs=arcs,
        max_outdegree=st.max_outdegree(),
        mean_outdegree=(arcs / len(active)) if active else 0.0,
        level_histogram=histogram,
        saturated_vertices=sum(1 for lvl in active if lvl >= st.H),
        total_work=st.cm.work,
        total_depth=st.cm.depth,
        counters=dict(st.cm.counters),
    )


@dataclass(frozen=True)
class LadderStats:
    """Shape and cost of a geometric ladder of estimators."""

    rungs: int
    heights: tuple[int, ...]
    first_active_rung: Optional[int]
    total_work: int
    total_depth: int

    def render(self) -> str:
        active = (
            f"first active rung: H={self.heights[self.first_active_rung]}"
            if self.first_active_rung is not None
            else "no active rung"
        )
        return (
            f"ladder: {self.rungs} rungs over heights {self.heights[0]}..{self.heights[-1]}; "
            f"{active}; cost: work {self.total_work}, depth {self.total_depth}"
        )


def coreness_stats(cd: CorenessDecomposition) -> LadderStats:
    """Snapshot the coreness ladder into a :class:`LadderStats`."""
    first = None
    if cd._touched:
        top = cd.max_estimate()
        for i, h in enumerate(cd.heights):
            if h >= top:
                first = i
                break
    return LadderStats(
        rungs=len(cd.rungs),
        heights=tuple(cd.heights),
        first_active_rung=first,
        total_work=cd.cm.work,
        total_depth=cd.cm.depth,
    )


def density_stats(de: DensityEstimator) -> LadderStats:
    """Snapshot the density ladder into a :class:`LadderStats`."""
    from ..errors import InvariantViolation

    try:
        first = de._first_low()
    except InvariantViolation:
        first = None  # stats must not crash on a broken ladder
    return LadderStats(
        rungs=len(de.rungs),
        heights=tuple(de.heights),
        first_active_rung=first,
        total_work=de.cm.work,
        total_depth=de.cm.depth,
    )
