"""The token games (Sections 4.2.1 and 4.3.1).

Friend-module of :class:`~repro.core.balanced.BalancedOrientation`: both
games mutate the structure through its arc helpers, so every rank/label/
level re-filing happens in one audited code path.

Token-dropping (insertions)
---------------------------
Bundle arcs are added with levels frozen; each tail holds one token (a
pending out-degree increment).  Per phase, every occupied vertex ``v`` with
``level(v) < H`` scans its <= H out-arcs for an empty vertex one level
down, proposes, and each proposed vertex accepts one proposal (CRCW
arbitrary-write); accepted arcs flip and the tokens drop.  The game halts
within O(H^3) phases (Lemma 4.8); settlement bumps every resting token's
vertex level by one.

Token-pushing (deletions)
-------------------------
Tokens are pending out-degree *decrements* on distinct vertices (the arcs
are already gone).  Per phase, edge labels ``2*[tail in S] + [tail
occupied]`` are written onto out-arcs of rank <= H; then rank rounds
``i = 1..H`` move tokens up along in-arcs of exact rank ``i`` whose tail
has label 0 and truncated level exactly one higher, followed by the
truncated-rank ``H+1`` round whose received tokens are *transparent*
(absorbed immediately: removing an out-arc beyond rank ``H`` cannot change
``min(H, d+)``, the paper's dummy-vertex interpretation).  Halts within
O(H^3) phases (Lemma 4.18); settlement subtracts each vertex's absorbed
token count from its level.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConvergenceError
from ..instrument import trace as _trace
from ..pram.primitives import arbitrary_winners
from ..pram.sorting import parallel_sort
from ..resilience import faults as _faults
from .balanced import BalancedOrientation


def run_drop_game(st: BalancedOrientation, bundle: list[tuple[int, int, int]]) -> None:
    """Insert one token bundle (Definition 4.6) and settle it."""
    if not bundle:
        return
    with _trace.span("game.drop", detail={"tokens": len(bundle)}):
        _run_drop_game(st, bundle)


def _run_drop_game(st: BalancedOrientation, bundle: list[tuple[int, int, int]]) -> None:
    H = st.H
    # 1. add bundle arcs; levels stay frozen (Lemma 4.14 step one)
    with st.cm.parallel() as region:
        for u, v, c in bundle:
            with region.branch():
                st._arc_add(u, v, c)
                st.last_inserted.append((u, v, c))
    token: set[int] = {u for u, _v, _c in bundle}
    if len(token) != len(bundle):
        raise AssertionError("token bundle tails are not distinct (Def. 4.6)")

    bound = st.constants.phase_safety * (H + 1) ** 3 + st.constants.convergence_slack
    phases = 0
    while True:
        phases += 1
        if phases > bound:
            raise ConvergenceError(
                f"token-dropping exceeded {bound} phases (Lemma 4.8 bound)"
            )
        with _trace.span("game.drop.phase"):
            if _faults.ACTIVE is not None:
                _faults.ACTIVE.fire("tokens.drop.phase", st)
            frontier = sorted(v for v in token if st.level.get(v, 0) < H)
            proposals: list[tuple[int, tuple[int, int]]] = []
            # One tick per scanned arc, one branch per frontier vertex:
            # work = total arcs scanned, depth = the deepest single scan.
            # Charged in aggregate (identical fold to per-branch ticks) —
            # this scan runs millions of times and the per-branch frames
            # dominated its wall-clock.
            level_get = st.level.get
            out_get = st.out.get
            scanned_total = 0
            scanned_max = 0
            for v in frontier:
                lv = level_get(v, 0)
                outset = out_get(v)
                if outset is None:
                    continue
                scanned = 0
                for head, copy in outset:  # <= H arcs while v is occupied
                    scanned += 1
                    if head not in token and level_get(head, 0) == lv - 1:
                        proposals.append((head, (v, copy)))
                        break
                scanned_total += scanned
                if scanned > scanned_max:
                    scanned_max = scanned
            st.cm.charge(work=scanned_total, depth=scanned_max)
            if not proposals:
                break
            proposals = parallel_sort(proposals, cm=st.cm)
            winners = arbitrary_winners(proposals, cm=st.cm)
            with st.cm.parallel() as region:
                for w in sorted(winners):
                    v, copy = winners[w]
                    with region.branch():
                        st._flip(v, w, copy)  # the token drops from v to w
                        token.discard(v)
                        token.add(w)
        st.cm.count("drop_phases")

    # settlement (Lemma 4.14 closing step): resting tokens become +1 level
    with _trace.span("game.drop.settle"):
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("tokens.drop.settle", st)
        with st.cm.parallel() as region:
            for v in sorted(token):
                with region.branch():
                    st._set_level(v, st.level.get(v, 0) + 1)
    st.cm.count("drop_games")


def run_push_game(st: BalancedOrientation, bundle: Iterable[int]) -> None:
    """Settle one deletion token bundle (Definition 4.17)."""
    token: set[int] = set(bundle)
    if not token:
        return
    with _trace.span("game.push", detail={"tokens": len(token)}):
        _run_push_game(st, token)


def _run_push_game(st: BalancedOrientation, token: set[int]) -> None:
    H = st.H
    pending_dec: dict[int, int] = {v: 1 for v in token}
    labeled: set[int] = set()

    bound = st.constants.phase_safety * (H + 1) ** 3 + st.constants.convergence_slack
    phases = 0
    while True:
        phases += 1
        if phases > bound:
            raise ConvergenceError(
                f"token-pushing exceeded {bound} phases (Lemma 4.18 bound)"
            )
        with _trace.span("game.push.phase"):
            if _faults.ACTIVE is not None:
                _faults.ACTIVE.fire("tokens.push.phase", st)
            S = {v for v in token if st.level.get(v, 0) < H}
            # phase-start labels: 2*[in S] + [occupied] on every occupied vertex
            stale = sorted(labeled - token)
            with st.cm.parallel() as region:
                for u in stale:
                    with region.branch():
                        st._apply_vertex_label(u, 0)
                for u in sorted(token):
                    with region.branch():
                        st._apply_vertex_label(u, 2 * (u in S) + 1)
            labeled = set(token)
            moved = False
            # S is frozen for the whole phase; sort it once, not per round
            S_sorted = sorted(S)

            with _trace.span("game.push.ranks"):
                inx_get = st.inx.get
                level_get = st.level.get
                for i in range(1, H + 1):  # rank rounds
                    sends: list[tuple[int, tuple[int, int]]] = []
                    # One charged BST probe per branch, no mutations inside
                    # the region, so every branch costs exactly (logn, logn)
                    # — the fold is probes*logn work at logn depth, charged
                    # in aggregate (bit-identical to per-branch charges;
                    # the frames were the hot path).
                    probes = 0
                    for v in S_sorted:
                        if v not in token:
                            continue  # already sent its token this phase
                        probes += 1
                        index = inx_get(v)
                        if index is None:
                            continue
                        wkey = index.any_at(i, 0, level_get(v, 0) + 1)
                        if wkey is not None:
                            sends.append((v, wkey))
                    if probes:
                        logn = st._logn()
                        st.cm.charge(work=probes * logn, depth=logn)
                    # canonical order: each v sends at most once, so sorting makes
                    # the flip sequence a pure function of the phase's input.
                    for v, (w, copy) in sorted(sends):
                        st._flip(w, v, copy)  # arc (w -> v) becomes (v -> w)
                        token.discard(v)
                        pending_dec[v] = pending_dec.get(v, 0) - 1
                        pending_dec[w] = pending_dec.get(w, 0) + 1
                        st._apply_vertex_label(v, 2)  # still in frozen S, token gone
                        # Transparency is decided by the *receiver's* residual
                        # out-degree, not by which arc carried the token: while w
                        # still has >= H live out-arcs, its settlement decrement
                        # keeps min(H, d+(w)) = H — invisible to the truncated
                        # invariant, so the token is absorbed and w stays open
                        # (this is the same budget the paper's tr = H+1 rule
                        # enforces; see DESIGN.md "deviation D1").  The strict flag
                        # reverts to the paper's literal rule for ablation E15.
                        if st.constants.strict_paper_transparency or len(st.out.get(w, ())) < H:
                            token.add(w)
                            st._apply_vertex_label(w, 1)  # w not in S, now occupied
                            labeled.add(w)
                        moved = True

            # truncated-rank H+1 round: transparent tokens
            with _trace.span("game.push.truncated"):
                sends = []
                # same aggregate fold as the rank rounds above
                probes = 0
                for v in S_sorted:
                    if v not in token or st.level.get(v, 0) != H - 1:
                        continue
                    probes += 1
                    tindex = st.inx.get(v)
                    if tindex is None:
                        continue
                    twkey = tindex.any_truncated(H + 1, H)
                    if twkey is not None:
                        sends.append((v, twkey))
                if probes:
                    logn = st._logn()
                    st.cm.charge(work=probes * logn, depth=logn)
                for v, (w, copy) in sorted(sends):
                    st._flip(w, v, copy)
                    token.discard(v)
                    pending_dec[v] = pending_dec.get(v, 0) - 1
                    pending_dec[w] = pending_dec.get(w, 0) + 1  # absorbed, not occupied
                    st._apply_vertex_label(v, 2)
                    moved = True

        st.cm.count("push_phases")
        if not moved:
            break

    # clear all labels (end of Lemma 4.23's phase simulation)
    with st.cm.parallel() as region:
        for u in sorted(labeled):
            with region.branch():
                st._apply_vertex_label(u, 0)

    # settlement: every absorbed token is one out-degree decrement
    with _trace.span("game.push.settle"):
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("tokens.push.settle", st)
        with st.cm.parallel() as region:
            for v in sorted(pending_dec):
                dec = pending_dec[v]
                if dec == 0:
                    continue
                if dec < 0:
                    raise AssertionError("negative pending decrement")
                with region.branch():
                    st._set_level(v, st.level.get(v, 0) - dec)
    st.cm.count("push_games")
