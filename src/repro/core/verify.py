"""Compatibility shim — the audit layer moved to :mod:`repro.verify`.

``core/verify.py`` grew into the ``repro.verify`` package (differential
replay, ddmin trace minimization, repro artifacts); the absolute audits
now live in :mod:`repro.verify.audits`.  This module keeps the historical
import path working::

    from repro.core.verify import audit_orientation   # still fine
    from repro.core import replay_audit               # still fine

New code should import from :mod:`repro.verify`.
"""

from __future__ import annotations

from ..verify.audits import (
    AuditReport,
    audit_coreness,
    audit_density,
    audit_orientation,
    replay_audit,
)

__all__ = [
    "AuditReport",
    "audit_coreness",
    "audit_density",
    "audit_orientation",
    "replay_audit",
]
