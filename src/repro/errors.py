"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class InvariantViolation(ReproError):
    """An internal data-structure invariant was found broken.

    Raised by the ``check_invariants`` methods of the dynamic structures and
    by internal assertions guarding the token games.  Seeing this exception
    always indicates a bug (or deliberately injected corruption in the
    failure-injection tests), never bad user input.
    """


class BatchError(ReproError):
    """A batch update was malformed (duplicate edges, self-loops, unknown
    edges in a deletion batch, endpoints out of range, ...)."""


class ParameterError(ReproError):
    """An algorithm parameter is out of its documented domain (for example
    ``eps`` outside ``(0, 1)`` or a non-positive height ``H``)."""


class ConvergenceError(ReproError):
    """An iterative routine exceeded its proven round bound.

    The token games and bundle-extraction loops of the paper carry proven
    worst-case round bounds (Lemmas 4.8, 4.15, 4.18).  The implementations
    run with a generous safety factor over those bounds; exhausting it means
    the implementation no longer matches the analysis.
    """


class CapacityError(ReproError):
    """A density/arboricity hint was exceeded where the algorithm requires it
    as a hard promise (e.g. ``rho_max`` in the matching/coloring corollaries).
    """


class TraceError(ReproError):
    """A trace file is truncated or corrupt.

    Raised by :func:`repro.graphs.tracefile.read_trace` when a sealed trace's
    end marker is missing, its batch count disagrees with the body, or its
    checksum does not match — never silently yielding a partial stream, so
    WAL-style replay (``repro.resilience.recovery``) can trust what it reads.
    """


class ServiceError(ReproError):
    """The coreness service rejected a request or cannot serve it.

    Raised client-side by :class:`repro.service.client.ServiceClient` when
    the server answers ``ok: false`` (unknown tenant, malformed request,
    draining, ...) and server-side for protocol violations.  Validation
    failures of the batch itself surface as :class:`BatchError` text inside
    the response; the client re-raises them under this class so callers can
    tell "the service said no" apart from local usage errors.
    """


class FaultInjected(ReproError):
    """A deliberately injected fault fired (``repro.resilience.faults``).

    Only ever raised while a :class:`~repro.resilience.faults.FaultInjector`
    is active; production code paths never construct it.  Chaos tests catch
    it to verify the transactional rollback and recovery tiers.
    """

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"injected fault at site {site!r} (hit #{hit})")
        self.site = site
        self.hit = hit


class RecoveryError(ReproError):
    """Every recovery tier failed to restore a healthy structure.

    Raised by :class:`~repro.resilience.recovery.RecoveryManager` after
    rollback, checkpoint + replay *and* full rebuild all left the structure
    failing its audit — the batch could not be applied safely.
    """
