"""Dynamic graphs, synthetic generators, and batch-update streams."""

from .graph import DynamicGraph, Edge, norm_edge, normalize_batch
from . import generators, streams
from .streams import BatchOp

__all__ = [
    "BatchOp",
    "DynamicGraph",
    "Edge",
    "generators",
    "norm_edge",
    "normalize_batch",
    "streams",
]
