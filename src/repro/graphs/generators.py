"""Synthetic graph generators.

The paper has no dataset section (theory paper); these generators stand in
for the dynamic-graph traces an empirical evaluation would use (DESIGN.md
§2 item 4).  Families are chosen to exercise distinct regimes of the
algorithms:

* ``erdos_renyi`` — homogeneous density, coreness ≈ average degree.
* ``barabasi_albert`` — skewed degrees but low arboricity (≈ attachment m):
  the regime where small-H structures shine.
* ``rmat`` — heavy-tailed, community-ish; the canonical graph-mining bench.
* ``planted_dense`` — a known dense block inside a sparse sea: drives the
  ladder's crossover and gives known ground-truth ρ lower bounds.
* ``clique/star/path/cycle/grid/forest/complete_bipartite`` — extremal
  structures for unit tests and worst cases.

All functions return ``(n, edges)`` with canonical (min, max) edges, no
duplicates, no self-loops, reproducible under the given seed.
"""

from __future__ import annotations

import random

from ..errors import ParameterError
from ..rng import coerce_rng
from .graph import Edge, norm_edge


def _rng(seed: int | random.Random) -> random.Random:
    return coerce_rng(seed)


def erdos_renyi(n: int, m: int, seed: int | random.Random = 0) -> tuple[int, list[Edge]]:
    """G(n, m): ``m`` distinct uniform edges."""
    rng = _rng(seed)
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ParameterError(f"m={m} exceeds max {max_m} for n={n}")
    edges: set[Edge] = set()
    while len(edges) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.add(norm_edge(u, v))
    return n, sorted(edges)


def barabasi_albert(n: int, m_attach: int, seed: int | random.Random = 0) -> tuple[int, list[Edge]]:
    """Preferential attachment: each new vertex attaches to ``m_attach``
    distinct existing vertices sampled proportionally to degree."""
    rng = _rng(seed)
    if m_attach < 1 or n <= m_attach:
        raise ParameterError(f"need 1 <= m_attach < n, got m_attach={m_attach}, n={n}")
    edges: set[Edge] = set()
    # Repeated-vertex list implements degree-proportional sampling.
    targets = list(range(m_attach))
    repeated: list[int] = list(range(m_attach))
    for v in range(m_attach, n):
        chosen: set[int] = set()
        for t in targets:
            chosen.add(t)
        for t in chosen:
            edges.add(norm_edge(v, t))
            repeated.extend((v, t))
        # next targets: m_attach distinct degree-proportional picks
        nxt: set[int] = set()
        while len(nxt) < m_attach:
            nxt.add(rng.choice(repeated))
        targets = list(nxt)
    return n, sorted(edges)


def rmat(
    scale: int,
    m: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | random.Random = 0,
) -> tuple[int, list[Edge]]:
    """RMAT/Kronecker-style generator over ``n = 2**scale`` vertices."""
    rng = _rng(seed)
    d = 1.0 - a - b - c
    if d < 0:
        raise ParameterError("a + b + c must be <= 1")
    n = 1 << scale
    edges: set[Edge] = set()
    attempts = 0
    while len(edges) < m and attempts < 50 * m + 100:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            edges.add(norm_edge(u, v))
    return n, sorted(edges)


def planted_dense(
    n: int,
    block: int,
    p_in: float = 0.8,
    out_edges: int = 0,
    seed: int | random.Random = 0,
) -> tuple[int, list[Edge]]:
    """A dense block on vertices ``0..block-1`` (+ optional sparse sea).

    Ground truth: the block alone has expected density ≈ ``p_in*(block-1)/2``,
    giving a known lower bound for ρ(G) used by the density experiments.
    """
    rng = _rng(seed)
    if block > n:
        raise ParameterError(f"block={block} exceeds n={n}")
    edges: set[Edge] = set()
    for u in range(block):
        for v in range(u + 1, block):
            if rng.random() < p_in:
                edges.add((u, v))
    while out_edges > 0:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = norm_edge(u, v)
        if e in edges or (u < block and v < block):
            continue
        edges.add(e)
        out_edges -= 1
    return n, sorted(edges)


def clique(k: int, offset: int = 0) -> tuple[int, list[Edge]]:
    """K_k on vertices ``offset .. offset+k-1``."""
    edges = [(offset + u, offset + v) for u in range(k) for v in range(u + 1, k)]
    return offset + k, edges


def star(leaves: int, center: int = 0) -> tuple[int, list[Edge]]:
    """A star graph — coreness 1 everywhere."""
    edges = [norm_edge(center, center + 1 + i) for i in range(leaves)]
    return center + leaves + 1, edges


def path(n: int) -> tuple[int, list[Edge]]:
    """A simple path on ``n`` vertices."""
    return n, [(i, i + 1) for i in range(n - 1)]


def cycle(n: int) -> tuple[int, list[Edge]]:
    """A simple cycle — the minimal graph of coreness 2."""
    if n < 3:
        raise ParameterError("cycle needs n >= 3")
    return n, [(i, i + 1) for i in range(n - 1)] + [(0, n - 1)]


def grid(rows: int, cols: int) -> tuple[int, list[Edge]]:
    """rows x cols grid graph — arboricity 2, coreness ≤ 2."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return rows * cols, edges


def complete_bipartite(a: int, b: int) -> tuple[int, list[Edge]]:
    """``K_{a,b}`` — coreness min(a, b) on every vertex."""
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return a + b, edges


def random_forest(n: int, trees: int = 1, seed: int | random.Random = 0) -> tuple[int, list[Edge]]:
    """A uniform-ish random forest — arboricity exactly 1 (if any edge)."""
    rng = _rng(seed)
    if trees < 1 or trees > n:
        raise ParameterError("need 1 <= trees <= n")
    roots = set(rng.sample(range(n), trees))
    order = list(range(n))
    rng.shuffle(order)
    attached: list[int] = [v for v in order if v in roots]
    edges: list[Edge] = []
    for v in order:
        if v in roots:
            continue
        parent = rng.choice(attached)
        edges.append(norm_edge(v, parent))
        attached.append(v)
    return n, sorted(edges)
