"""Dynamic undirected simple graph with validated batch updates.

This is the *ground-truth* graph the dynamic structures are maintained
against: the structures receive the same batches, and tests compare their
answers to exact algorithms run on this graph.  Batches are validated the
way the batch-dynamic model assumes them (no self-loops, no duplicates
within a batch, inserts absent, deletes present) and violations raise
:class:`~repro.errors.BatchError`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import BatchError

Edge = tuple[int, int]


def norm_edge(u: int, v: int) -> Edge:
    """Canonical (min, max) form of an undirected edge."""
    if u == v:
        raise BatchError(f"self-loop ({u}, {v}) not allowed")
    return (u, v) if u < v else (v, u)


def normalize_batch(edges: Iterable[tuple[int, int]]) -> list[Edge]:
    """Canonicalize a batch and reject duplicates/self-loops."""
    out: list[Edge] = []
    seen: set[Edge] = set()
    for u, v in edges:
        e = norm_edge(u, v)
        if e in seen:
            raise BatchError(f"duplicate edge {e} within batch")
        seen.add(e)
        out.append(e)
    return out


class DynamicGraph:
    """Adjacency-set graph over integer vertex ids with batch updates."""

    def __init__(self, n: int = 0, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise BatchError(f"n must be non-negative, got {n}")
        self.n = n
        self.adj: dict[int, set[int]] = {}
        self.edges: set[Edge] = set()
        initial = normalize_batch(edges)
        if initial:
            self.insert_batch(initial)

    # -- batch updates ----------------------------------------------------------

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> list[Edge]:
        """Insert a batch of edges; returns the canonicalized batch."""
        batch = normalize_batch(edges)
        for e in batch:
            if e in self.edges:
                raise BatchError(f"edge {e} already present")
        for u, v in batch:
            self.edges.add((u, v))
            self.adj.setdefault(u, set()).add(v)
            self.adj.setdefault(v, set()).add(u)
            self.n = max(self.n, u + 1, v + 1)
        return batch

    def delete_batch(self, edges: Iterable[tuple[int, int]]) -> list[Edge]:
        """Delete a batch of edges; returns the canonicalized batch."""
        batch = normalize_batch(edges)
        for e in batch:
            if e not in self.edges:
                raise BatchError(f"edge {e} not present")
        for u, v in batch:
            self.edges.remove((u, v))
            self.adj[u].discard(v)
            self.adj[v].discard(u)
        return batch

    # -- queries ------------------------------------------------------------------

    @property
    def m(self) -> int:
        return len(self.edges)

    def degree(self, v: int) -> int:
        return len(self.adj.get(v, ()))

    def neighbors(self, v: int) -> set[int]:
        return self.adj.get(v, set())

    def has_edge(self, u: int, v: int) -> bool:
        return norm_edge(u, v) in self.edges

    def vertices(self) -> Iterator[int]:
        return iter(range(self.n))

    def touched_vertices(self) -> set[int]:
        """Vertices with at least one incident edge ever inserted."""
        return {v for v, nbrs in self.adj.items() if nbrs}

    def copy(self) -> "DynamicGraph":
        g = DynamicGraph(self.n)
        g.edges = set(self.edges)
        g.adj = {v: set(nbrs) for v, nbrs in self.adj.items()}
        return g

    def subgraph(self, vertices: Iterable[int]) -> "DynamicGraph":
        """Induced subgraph (vertex ids preserved)."""
        keep = set(vertices)
        g = DynamicGraph(self.n)
        g.insert_batch(
            (u, v) for (u, v) in self.edges if u in keep and v in keep
        )
        g.n = self.n
        return g

    def to_networkx(self):
        """Export to networkx (test/validation helper)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self.edges)
        return g

    # -- derived measures (exact, small-scale; see repro.baselines for fast) ------

    def density_of(self, vertices: Iterable[int]) -> float:
        """``|E[S]| / |S|`` of the induced subgraph."""
        keep = set(vertices)
        if not keep:
            raise BatchError("density of empty vertex set undefined")
        m = sum(1 for (u, v) in self.edges if u in keep and v in keep)
        return m / len(keep)
