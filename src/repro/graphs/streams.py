"""Batch-update streams: the dynamic workloads fed to every structure.

A *stream* is an iterable of :class:`BatchOp` — either an insert batch or a
delete batch of canonical edges, always valid against the running graph
(inserts absent, deletes present).  Streams are the reproduction's stand-in
for real dynamic traces (DESIGN.md §2 item 4) and include the adversarial
patterns that separate worst-case from amortized algorithms (experiment E2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Literal, Sequence

from ..errors import ParameterError
from ..rng import coerce_rng
from .generators import clique as make_clique
from .graph import Edge, norm_edge

Kind = Literal["insert", "delete"]


@dataclass(frozen=True)
class BatchOp:
    """One batch update."""

    kind: Kind
    edges: tuple[Edge, ...]

    @property
    def size(self) -> int:
        return len(self.edges)


def _chunks(seq: Sequence[Edge], size: int) -> Iterator[tuple[Edge, ...]]:
    if size < 1:
        raise ParameterError(f"batch size must be >= 1, got {size}")
    for i in range(0, len(seq), size):
        yield tuple(seq[i : i + size])


def insert_only(edges: Sequence[Edge], batch_size: int) -> list[BatchOp]:
    """Feed a fixed edge list as insert batches of the given size."""
    return [BatchOp("insert", chunk) for chunk in _chunks(edges, batch_size)]


def insert_then_delete(
    edges: Sequence[Edge], batch_size: int, seed: int | random.Random = 0
) -> list[BatchOp]:
    """Insert everything, then delete everything in shuffled batches."""
    rng = coerce_rng(seed)
    ops = insert_only(edges, batch_size)
    doomed = list(edges)
    rng.shuffle(doomed)
    ops.extend(BatchOp("delete", chunk) for chunk in _chunks(doomed, batch_size))
    return ops


def sliding_window(
    edges: Sequence[Edge], window: int, batch_size: int
) -> list[BatchOp]:
    """Temporal sliding window: insert batch i, delete batch i - window.

    Models the 'streaming with expiry' workloads that motivate batch-dynamic
    algorithms (e.g. interaction graphs over the last k hours).
    """
    if window < 1:
        raise ParameterError("window must be >= 1")
    chunks = list(_chunks(edges, batch_size))
    ops: list[BatchOp] = []
    for i, chunk in enumerate(chunks):
        ops.append(BatchOp("insert", chunk))
        if i >= window:
            ops.append(BatchOp("delete", chunks[i - window]))
    return ops


def churn(
    n: int,
    steps: int,
    batch_size: int,
    insert_bias: float = 0.55,
    seed: int | random.Random = 0,
) -> list[BatchOp]:
    """Random mixed workload on ``n`` vertices.

    Each step is one batch: with probability ``insert_bias`` an insert batch
    of fresh random edges, otherwise a delete batch of currently live edges.
    Always valid; degenerates to insert when nothing is live.
    """
    rng = coerce_rng(seed)
    live: set[Edge] = set()
    ops: list[BatchOp] = []
    for _ in range(steps):
        do_insert = rng.random() < insert_bias or not live
        if do_insert:
            fresh: set[Edge] = set()
            attempts = 0
            while len(fresh) < batch_size and attempts < 50 * batch_size + 100:
                attempts += 1
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                e = norm_edge(u, v)
                if e not in live and e not in fresh:
                    fresh.add(e)
            if not fresh:
                continue
            live |= fresh
            ops.append(BatchOp("insert", tuple(sorted(fresh))))
        else:
            k = min(batch_size, len(live))
            victims = tuple(sorted(rng.sample(sorted(live), k)))
            live -= set(victims)
            ops.append(BatchOp("delete", victims))
    return ops


def sawtooth_clique(
    k: int, repeats: int, small_batch: int = 1, offset: int = 0
) -> list[BatchOp]:
    """The amortization-killer (experiment E2).

    Repeatedly: build a k-clique in one large batch, then tear it down in
    many tiny batches (and rebuild...).  Amortized structures pay for the
    build during later tiny batches — their per-batch work spikes — while a
    worst-case structure keeps every tiny batch cheap.
    """
    _, edges = make_clique(k, offset)
    ops: list[BatchOp] = []
    for _ in range(repeats):
        ops.append(BatchOp("insert", tuple(edges)))
        for chunk in _chunks(edges, small_batch):
            ops.append(BatchOp("delete", chunk))
    return ops


def flip_flop(edges: Sequence[Edge], repeats: int) -> list[BatchOp]:
    """Insert and delete the same batch repeatedly — a degenerate stress
    pattern that catches stale-state bugs in dynamic structures."""
    ops: list[BatchOp] = []
    chunk = tuple(edges)
    for _ in range(repeats):
        ops.append(BatchOp("insert", chunk))
        ops.append(BatchOp("delete", chunk))
    return ops


def density_ramp(
    n: int, block: int, levels: int, per_level: int, seed: int | random.Random = 0
) -> list[BatchOp]:
    """Insert batches that progressively densify a planted block.

    Drives ρ(G) upward in known steps so the ladder structures (Thm 1.2)
    must hand over between rungs — exercises the crossover logic.
    """
    rng = coerce_rng(seed)
    if block > n:
        raise ParameterError("block must be <= n")
    all_block_edges = [
        (u, v) for u in range(block) for v in range(u + 1, block)
    ]
    rng.shuffle(all_block_edges)
    ops: list[BatchOp] = []
    idx = 0
    for _ in range(levels):
        chunk = all_block_edges[idx : idx + per_level]
        if not chunk:
            break
        idx += len(chunk)
        ops.append(BatchOp("insert", tuple(sorted(chunk))))
    return ops


def replay(ops: Iterable[BatchOp], graph) -> None:
    """Apply a stream to a :class:`~repro.graphs.graph.DynamicGraph`."""
    for op in ops:
        if op.kind == "insert":
            graph.insert_batch(op.edges)
        else:
            graph.delete_batch(op.edges)
