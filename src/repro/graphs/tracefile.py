"""On-disk batch-update traces.

A trace is a plain text file, one batch per line::

    # comments and blank lines are ignored
    I 0 1 0 2 1 2     <- insert batch {(0,1), (0,2), (1,2)}
    D 0 1             <- delete batch {(0,1)}

The format is deliberately trivial: it round-trips through
:func:`write_trace`/:func:`read_trace`, diffs cleanly, and any external
tool (or the CLI's ``generate`` subcommand) can produce it.

Sealed traces end with an integrity footer::

    # repro-trace-end batches=12 crc32=1a2b3c4d

covering every byte before it.  :func:`read_trace` verifies the footer
when present (truncated or corrupt files raise
:class:`~repro.errors.TraceError`) and tolerates its absence for
hand-written traces; ``strict=True`` demands it — the mode the recovery
manager uses for its write-ahead log, where a torn tail must never be
replayed silently.  :class:`TraceWriter` appends batches incrementally
(flushing each line, WAL-style) and writes the footer on ``close``.
"""

from __future__ import annotations

import pathlib
import zlib
from typing import Iterable, Optional, Sequence

from ..errors import BatchError, TraceError
from .graph import norm_edge
from .streams import BatchOp

_FOOTER_PREFIX = "# repro-trace-end "


def _footer(batches: int, crc: int) -> str:
    return f"{_FOOTER_PREFIX}batches={batches} crc32={crc & 0xFFFFFFFF:08x}"


def _format_op(op: BatchOp) -> str:
    letter = "I" if op.kind == "insert" else "D"
    flat = " ".join(f"{u} {v}" for u, v in op.edges)
    return f"{letter} {flat}"


def write_trace(
    ops: Iterable[BatchOp], path: str | pathlib.Path, footer: bool = True
) -> int:
    """Write a stream to a trace file; returns the number of batches.

    With ``footer=True`` (the default) the file is sealed with the
    integrity footer; pass ``footer=False`` for the bare legacy format.
    """
    lines = [_format_op(op) for op in ops]
    body = "\n".join(lines) + ("\n" if lines else "")
    text = body
    if footer:
        text += _footer(len(lines), zlib.crc32(body.encode())) + "\n"
    pathlib.Path(path).write_text(text)
    return len(lines)


class TraceWriter:
    """Incremental (write-ahead-log style) trace writer.

    Each :meth:`append` writes and flushes one batch line, so a crash
    loses at most the batch being written — and the missing footer marks
    the file as unsealed, which ``read_trace(strict=True)`` reports as a
    :class:`~repro.errors.TraceError` instead of silently replaying a
    torn log.  :meth:`close` seals the file with the integrity footer.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._fh = open(self.path, "w")
        self._crc = 0
        self.batches = 0

    def append(self, op: BatchOp) -> None:
        if self._fh is None:
            raise TraceError(f"{self.path}: trace already sealed")
        line = _format_op(op) + "\n"
        self._fh.write(line)
        self._fh.flush()
        self._crc = zlib.crc32(line.encode(), self._crc)
        self.batches += 1

    def close(self) -> None:
        """Seal the trace with the integrity footer (idempotent)."""
        if self._fh is None:
            return
        self._fh.write(_footer(self.batches, self._crc) + "\n")
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _split_footer(text: str, path: object) -> tuple[str, Optional[tuple[int, int]]]:
    """Split raw trace text into (body, footer-fields or None)."""
    lines = text.splitlines(keepends=True)
    for i, raw in enumerate(lines):
        if not raw.strip().startswith(_FOOTER_PREFIX.strip()):
            continue
        if any(line.strip() for line in lines[i + 1 :]):
            raise TraceError(f"{path}: content after end-of-trace footer")
        fields = dict(
            part.split("=", 1) for part in raw.strip().split() if "=" in part
        )
        try:
            batches = int(fields["batches"])
            crc = int(fields["crc32"], 16)
        except (KeyError, ValueError) as exc:
            raise TraceError(f"{path}: malformed end-of-trace footer") from exc
        return "".join(lines[:i]), (batches, crc)
    return text, None


def read_trace(path: str | pathlib.Path, strict: bool = False) -> list[BatchOp]:
    """Parse a trace file into a list of batch operations.

    When the file carries an end-of-trace footer, the batch count and
    CRC-32 are verified and any mismatch (truncation, corruption, torn
    writes) raises :class:`~repro.errors.TraceError`.  ``strict=True``
    additionally rejects files with no footer at all.
    """
    text = pathlib.Path(path).read_text()
    body, sealed = _split_footer(text, path)
    if sealed is None and strict:
        raise TraceError(
            f"{path}: missing end-of-trace footer — the trace was never "
            "sealed (torn write-ahead log?) or predates the footer format"
        )
    if sealed is not None:
        expected_batches, expected_crc = sealed
        actual_crc = zlib.crc32(body.encode())
        if actual_crc != expected_crc:
            raise TraceError(
                f"{path}: body CRC-32 {actual_crc:08x} does not match the "
                f"footer's {expected_crc:08x} — the trace is corrupt"
            )
    ops: list[BatchOp] = []
    for lineno, raw in enumerate(body.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind_letter, numbers = parts[0].upper(), parts[1:]
        if kind_letter not in ("I", "D"):
            raise BatchError(f"{path}:{lineno}: unknown batch kind {parts[0]!r}")
        if len(numbers) % 2 != 0 or not numbers:
            raise BatchError(f"{path}:{lineno}: odd number of endpoints")
        try:
            values = [int(x) for x in numbers]
        except ValueError as exc:
            raise BatchError(f"{path}:{lineno}: non-integer endpoint") from exc
        edges = tuple(
            norm_edge(values[i], values[i + 1]) for i in range(0, len(values), 2)
        )
        ops.append(BatchOp("insert" if kind_letter == "I" else "delete", edges))
    if sealed is not None and len(ops) != sealed[0]:
        raise TraceError(
            f"{path}: footer promises {sealed[0]} batches but the body "
            f"holds {len(ops)} — the trace is truncated or corrupt"
        )
    return ops


def validate_trace(ops: Sequence[BatchOp]) -> int:
    """Check a stream is replayable (inserts absent, deletes present).

    Returns the number of vertices mentioned.  Raises BatchError on the
    first inconsistent batch.
    """
    live: set = set()
    top = 0
    for i, op in enumerate(ops):
        seen_in_batch = set()
        for e in op.edges:
            if e in seen_in_batch:
                raise BatchError(f"batch {i}: duplicate edge {e}")
            seen_in_batch.add(e)
            top = max(top, e[1] + 1)
            if op.kind == "insert":
                if e in live:
                    raise BatchError(f"batch {i}: inserting live edge {e}")
                live.add(e)
            else:
                if e not in live:
                    raise BatchError(f"batch {i}: deleting absent edge {e}")
                live.remove(e)
    return top
