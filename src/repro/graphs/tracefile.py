"""On-disk batch-update traces.

A trace is a plain text file, one batch per line::

    # comments and blank lines are ignored
    I 0 1 0 2 1 2     <- insert batch {(0,1), (0,2), (1,2)}
    D 0 1             <- delete batch {(0,1)}

The format is deliberately trivial: it round-trips through
:func:`write_trace`/:func:`read_trace`, diffs cleanly, and any external
tool (or the CLI's ``generate`` subcommand) can produce it.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from ..errors import BatchError
from .graph import norm_edge
from .streams import BatchOp


def write_trace(ops: Iterable[BatchOp], path: str | pathlib.Path) -> int:
    """Write a stream to a trace file; returns the number of batches."""
    lines = []
    for op in ops:
        letter = "I" if op.kind == "insert" else "D"
        flat = " ".join(f"{u} {v}" for u, v in op.edges)
        lines.append(f"{letter} {flat}")
    pathlib.Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_trace(path: str | pathlib.Path) -> list[BatchOp]:
    """Parse a trace file into a list of batch operations."""
    ops: list[BatchOp] = []
    for lineno, raw in enumerate(pathlib.Path(path).read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind_letter, numbers = parts[0].upper(), parts[1:]
        if kind_letter not in ("I", "D"):
            raise BatchError(f"{path}:{lineno}: unknown batch kind {parts[0]!r}")
        if len(numbers) % 2 != 0 or not numbers:
            raise BatchError(f"{path}:{lineno}: odd number of endpoints")
        try:
            values = [int(x) for x in numbers]
        except ValueError as exc:
            raise BatchError(f"{path}:{lineno}: non-integer endpoint") from exc
        edges = tuple(
            norm_edge(values[i], values[i + 1]) for i in range(0, len(values), 2)
        )
        ops.append(BatchOp("insert" if kind_letter == "I" else "delete", edges))
    return ops


def validate_trace(ops: Sequence[BatchOp]) -> int:
    """Check a stream is replayable (inserts absent, deletes present).

    Returns the number of vertices mentioned.  Raises BatchError on the
    first inconsistent batch.
    """
    live: set = set()
    top = 0
    for i, op in enumerate(ops):
        seen_in_batch = set()
        for e in op.edges:
            if e in seen_in_batch:
                raise BatchError(f"batch {i}: duplicate edge {e}")
            seen_in_batch.add(e)
            top = max(top, e[1] + 1)
            if op.kind == "insert":
                if e in live:
                    raise BatchError(f"batch {i}: inserting live edge {e}")
                live.add(e)
            else:
                if e not in live:
                    raise BatchError(f"batch {i}: deleting absent edge {e}")
                live.remove(e)
    return top
