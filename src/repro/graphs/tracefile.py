"""On-disk batch-update traces.

A trace is a plain text file, one batch per line::

    # comments and blank lines are ignored
    I 0 1 0 2 1 2     <- insert batch {(0,1), (0,2), (1,2)}
    D 0 1             <- delete batch {(0,1)}

The format is deliberately trivial: it round-trips through
:func:`write_trace`/:func:`read_trace`, diffs cleanly, and any external
tool (or the CLI's ``generate`` subcommand) can produce it.

Sealed traces end with an integrity footer::

    # repro-trace-end batches=12 crc32=1a2b3c4d

covering every byte before it.  :func:`read_trace` verifies the footer
when present (truncated or corrupt files raise
:class:`~repro.errors.TraceError`) and tolerates its absence for
hand-written traces; ``strict=True`` demands it — the mode the recovery
manager uses for its write-ahead log, where a torn tail must never be
replayed silently.  :class:`TraceWriter` appends batches incrementally
(flushing each line, WAL-style) and writes the footer on ``close``.

Two reading disciplines:

* :func:`read_trace` materialises the whole stream (CRC verified against
  the full body *before* any batch is returned) — the all-or-nothing
  mode for small traces and repro artifacts.
* :func:`iter_trace` is the out-of-core path: the file is consumed in
  bounded byte chunks, the CRC is folded incrementally per chunk, and
  batches are yielded as they parse.  Memory stays O(chunk + one batch)
  no matter how long the trace is — the 10^6-edge scenario streams of
  docs/SCENARIOS.md never exist in memory at once.  Corruption is
  reported at the footer (truncation in ``strict`` mode at exhaustion),
  so consumers that must not observe a torn prefix either apply batches
  through a transactional layer (the recovery manager) or use
  :func:`read_trace`.  :func:`scan_trace` is the matching streaming
  validator: one bounded-memory pass returning the stream's shape.
"""

from __future__ import annotations

import os
import pathlib
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import BatchError, TraceError
from .graph import norm_edge
from .streams import BatchOp

_FOOTER_PREFIX = "# repro-trace-end "


def _footer(batches: int, crc: int) -> str:
    return f"{_FOOTER_PREFIX}batches={batches} crc32={crc & 0xFFFFFFFF:08x}"


def _format_op(op: BatchOp) -> str:
    letter = "I" if op.kind == "insert" else "D"
    flat = " ".join(f"{u} {v}" for u, v in op.edges)
    return f"{letter} {flat}"


def write_trace(
    ops: Iterable[BatchOp], path: str | pathlib.Path, footer: bool = True
) -> int:
    """Write a stream to a trace file; returns the number of batches.

    With ``footer=True`` (the default) the file is sealed with the
    integrity footer; pass ``footer=False`` for the bare legacy format.
    """
    lines = [_format_op(op) for op in ops]
    body = "\n".join(lines) + ("\n" if lines else "")
    text = body
    if footer:
        text += _footer(len(lines), zlib.crc32(body.encode())) + "\n"
    pathlib.Path(path).write_text(text)
    return len(lines)


class TraceWriter:
    """Incremental (write-ahead-log style) trace writer.

    Each :meth:`append` writes and flushes one batch line, so a crash
    loses at most the batch being written — and the missing footer marks
    the file as unsealed, which ``read_trace(strict=True)`` reports as a
    :class:`~repro.errors.TraceError` instead of silently replaying a
    torn log.  :meth:`close` seals the file with the integrity footer.

    ``append=True`` resumes an existing trace instead of truncating it —
    the service-restart move.  A *sealed* trace is detected on open: with
    ``unseal=True`` (the default) the footer is verified, stripped, and
    the CRC/batch count resumed so later batches extend the body
    seamlessly; with ``unseal=False`` the writer refuses with a
    :class:`~repro.errors.TraceError` rather than ever writing batches
    after a footer (which the readers would misparse as trailing
    garbage).  An *unsealed* existing file (a crashed writer's log)
    resumes in place.  ``sync=True`` additionally ``fsync``s after every
    batch — the durability level an ingest ack promises.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        *,
        append: bool = False,
        unseal: bool = True,
        sync: bool = False,
    ) -> None:
        self.path = pathlib.Path(path)
        self._sync = sync
        self._crc = 0
        self.batches = 0
        if append and self.path.exists() and self.path.stat().st_size > 0:
            self._resume(unseal)
        else:
            self._fh = open(self.path, "w")

    def _resume(self, unseal: bool) -> None:
        """Resume an existing trace file (stripping a verified footer)."""
        text = self.path.read_bytes().decode()
        body, sealed = _split_footer(text, self.path)
        if sealed is not None:
            if not unseal:
                raise TraceError(
                    f"{self.path}: trace is sealed — appending after the "
                    "integrity footer would corrupt it (reopen with "
                    "unseal=True to strip the footer and resume, or start "
                    "a fresh file)"
                )
            expected_batches, expected_crc = sealed
            if zlib.crc32(body.encode()) != expected_crc:
                raise TraceError(
                    f"{self.path}: body CRC-32 does not match the footer — "
                    "refusing to unseal a corrupt trace"
                )
        count = 0
        for lineno, raw in enumerate(body.splitlines(), 1):
            if _parse_body_line(raw, self.path, lineno) is not None:
                count += 1
        if sealed is not None and count != sealed[0]:
            raise TraceError(
                f"{self.path}: footer promises {sealed[0]} batches but the "
                f"body holds {count} — refusing to unseal a corrupt trace"
            )
        if sealed is not None:
            # The footer is strictly a suffix of the file, so stripping
            # it is a single in-place truncate — never a truncate-to-zero
            # rewrite, which would leave a kill -9 window where the whole
            # WAL (every previously acked batch) is empty or partial.  A
            # crash before the truncate leaves the sealed file intact (it
            # unseals again on the next start); a crash after leaves a
            # valid unsealed body that recover_trace loads as-is.
            with open(self.path, "rb+") as fh:
                fh.truncate(len(body.encode()))
                os.fsync(fh.fileno())
        self._fh = open(self.path, "a")
        self._crc = zlib.crc32(body.encode())
        self.batches = count

    def append(self, op: BatchOp) -> None:
        if self._fh is None:
            raise TraceError(f"{self.path}: trace already sealed")
        line = _format_op(op) + "\n"
        self._fh.write(line)
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
        self._crc = zlib.crc32(line.encode(), self._crc)
        self.batches += 1

    def close(self) -> None:
        """Seal the trace with the integrity footer (idempotent)."""
        if self._fh is None:
            return
        self._fh.write(_footer(self.batches, self._crc) + "\n")
        self._fh.close()
        self._fh = None

    def abort(self) -> None:
        """Release the file *without* sealing it (idempotent).

        The WAL stays unsealed on disk — the state a recovery pass treats
        as a crashed writer's log.  For callers that must not certify the
        file as complete (e.g. a quarantined tenant whose ladders
        diverged from the WAL) but should not leak the handle either.
        """
        if self._fh is None:
            return
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _parse_footer_line(stripped: str, path: object) -> tuple[int, int]:
    """Parse ``(batches, crc)`` out of one footer line (already stripped)."""
    fields = dict(part.split("=", 1) for part in stripped.split() if "=" in part)
    try:
        return int(fields["batches"]), int(fields["crc32"], 16)
    except (KeyError, ValueError) as exc:
        raise TraceError(f"{path}: malformed end-of-trace footer") from exc


def _parse_body_line(line: str, path: object, lineno: int) -> Optional[BatchOp]:
    """Parse one body line into a batch (None for comments/blanks)."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    kind_letter, numbers = parts[0].upper(), parts[1:]
    if kind_letter not in ("I", "D"):
        raise BatchError(f"{path}:{lineno}: unknown batch kind {parts[0]!r}")
    if len(numbers) % 2 != 0 or not numbers:
        raise BatchError(f"{path}:{lineno}: odd number of endpoints")
    try:
        values = [int(x) for x in numbers]
    except ValueError as exc:
        raise BatchError(f"{path}:{lineno}: non-integer endpoint") from exc
    edges = tuple(
        norm_edge(values[i], values[i + 1]) for i in range(0, len(values), 2)
    )
    return BatchOp("insert" if kind_letter == "I" else "delete", edges)


def _split_footer(text: str, path: object) -> tuple[str, Optional[tuple[int, int]]]:
    """Split raw trace text into (body, footer-fields or None)."""
    lines = text.splitlines(keepends=True)
    for i, raw in enumerate(lines):
        if not raw.strip().startswith(_FOOTER_PREFIX.strip()):
            continue
        if any(line.strip() for line in lines[i + 1 :]):
            raise TraceError(f"{path}: content after end-of-trace footer")
        return "".join(lines[:i]), _parse_footer_line(raw.strip(), path)
    return text, None


def read_trace(path: str | pathlib.Path, strict: bool = False) -> list[BatchOp]:
    """Parse a trace file into a list of batch operations.

    When the file carries an end-of-trace footer, the batch count and
    CRC-32 are verified and any mismatch (truncation, corruption, torn
    writes) raises :class:`~repro.errors.TraceError`.  ``strict=True``
    additionally rejects files with no footer at all.
    """
    text = pathlib.Path(path).read_text()
    body, sealed = _split_footer(text, path)
    if sealed is None and strict:
        raise TraceError(
            f"{path}: missing end-of-trace footer — the trace was never "
            "sealed (torn write-ahead log?) or predates the footer format"
        )
    if sealed is not None:
        expected_batches, expected_crc = sealed
        actual_crc = zlib.crc32(body.encode())
        if actual_crc != expected_crc:
            raise TraceError(
                f"{path}: body CRC-32 {actual_crc:08x} does not match the "
                f"footer's {expected_crc:08x} — the trace is corrupt"
            )
    ops: list[BatchOp] = []
    for lineno, raw in enumerate(body.splitlines(), 1):
        op = _parse_body_line(raw, path, lineno)
        if op is not None:
            ops.append(op)
    if sealed is not None and len(ops) != sealed[0]:
        raise TraceError(
            f"{path}: footer promises {sealed[0]} batches but the body "
            f"holds {len(ops)} — the trace is truncated or corrupt"
        )
    return ops


#: Default read-chunk size of :func:`iter_trace` (64 KiB keeps the reader
#: comfortably cache-resident while amortising syscalls over ~1k lines).
DEFAULT_CHUNK_BYTES = 1 << 16


def iter_trace(
    path: str | pathlib.Path,
    strict: bool = False,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[BatchOp]:
    """Stream a trace file batch by batch in bounded memory.

    The file is read in ``chunk_bytes``-sized chunks; the body CRC-32 is
    folded incrementally as each chunk's lines are consumed and checked
    against the footer when (and if) it is reached, along with the batch
    count.  ``strict=True`` raises :class:`~repro.errors.TraceError` on
    exhaustion if no footer was seen (a torn write-ahead log).

    Unlike :func:`read_trace`, batches are yielded *before* the footer is
    reached, so a corrupt tail is reported only after the intact prefix
    has been consumed.  Callers that must never observe a torn prefix
    should apply batches transactionally (the recovery manager does) or
    fall back to :func:`read_trace`.
    """
    if chunk_bytes < 1:
        raise TraceError(f"{path}: chunk_bytes must be >= 1, got {chunk_bytes}")
    crc = 0
    count = 0
    lineno = 0
    sealed: Optional[tuple[int, int]] = None
    with open(pathlib.Path(path), "rb") as fh:
        pending = b""
        eof = False
        while not eof:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                eof = True
            pending += chunk
            while pending:
                nl = pending.find(b"\n")
                if nl < 0:
                    if not eof:
                        break  # partial line; wait for the next chunk
                    raw, pending = pending, b""
                else:
                    raw, pending = pending[: nl + 1], pending[nl + 1 :]
                lineno += 1
                text = raw.decode()
                stripped = text.strip()
                if sealed is not None:
                    if stripped:
                        raise TraceError(
                            f"{path}: content after end-of-trace footer"
                        )
                    continue
                if stripped.startswith(_FOOTER_PREFIX.strip()):
                    sealed = _parse_footer_line(stripped, path)
                    expected_batches, expected_crc = sealed
                    if (crc & 0xFFFFFFFF) != expected_crc:
                        raise TraceError(
                            f"{path}: body CRC-32 {crc & 0xFFFFFFFF:08x} does "
                            f"not match the footer's {expected_crc:08x} — the "
                            "trace is corrupt"
                        )
                    if count != expected_batches:
                        raise TraceError(
                            f"{path}: footer promises {expected_batches} "
                            f"batches but the body holds {count} — the trace "
                            "is truncated or corrupt"
                        )
                    continue
                crc = zlib.crc32(raw, crc)
                op = _parse_body_line(text, path, lineno)
                if op is not None:
                    count += 1
                    yield op
    if sealed is None and strict:
        raise TraceError(
            f"{path}: missing end-of-trace footer — the trace was never "
            "sealed (torn write-ahead log?) or predates the footer format"
        )


@dataclass(frozen=True)
class TraceInfo:
    """Shape of a trace, computed by one streaming :func:`scan_trace` pass."""

    vertices: int  # 1 + the highest vertex id mentioned (0 if none)
    batches: int
    edge_updates: int
    max_live_edges: int  # high-water mark of the live-edge set


def scan_trace(path: str | pathlib.Path, strict: bool = False) -> TraceInfo:
    """Validate a trace file in one bounded-memory streaming pass.

    The same replayability checks as :func:`validate_trace` (inserts
    absent, deletes present, no in-batch duplicates) run against a live
    set whose size tracks the trace's actual live-edge high-water mark —
    for windowed streams this stays bounded no matter how long the trace
    is.  Returns the stream's shape for callers (``repro run``) that
    previously materialised the whole trace just to size the structures.
    """
    live: set = set()
    top = 0
    batches = 0
    updates = 0
    high = 0
    for i, op in enumerate(iter_trace(path, strict=strict)):
        seen_in_batch = set()
        for e in op.edges:
            if e in seen_in_batch:
                raise BatchError(f"batch {i}: duplicate edge {e}")
            seen_in_batch.add(e)
            top = max(top, e[1] + 1)
            if op.kind == "insert":
                if e in live:
                    raise BatchError(f"batch {i}: inserting live edge {e}")
                live.add(e)
            else:
                if e not in live:
                    raise BatchError(f"batch {i}: deleting absent edge {e}")
                live.remove(e)
        batches += 1
        updates += op.size
        high = max(high, len(live))
    return TraceInfo(
        vertices=top, batches=batches, edge_updates=updates, max_live_edges=high
    )


def recover_trace(path: str | pathlib.Path) -> tuple[list[BatchOp], int]:
    """Read a write-ahead log tolerating a torn tail (the ``kill -9`` case).

    Returns ``(ops, good_bytes)`` where ``good_bytes`` is the byte length
    of the valid prefix.  Three file states load cleanly:

    * **sealed** (graceful shutdown) — verified like :func:`read_trace`;
    * **unsealed** (crashed writer, clean tail) — every line parses;
    * **torn tail** (killed mid-``append``) — the final line is dropped
      when it lacks its trailing newline or fails to parse.  A batch is
      only ever *acked* after its full line is flushed, so the dropped
      line was never promised to anyone.

    Corruption anywhere before the tail still raises — a torn log loses
    at most the batch being written, never one in the middle.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    text = data.decode()
    body, sealed = _split_footer(text, path)
    if sealed is not None:
        # sealed: delegate the full verification to read_trace.
        return read_trace(path, strict=True), len(data)
    lines = text.splitlines(keepends=True)
    # a final line without its newline is a torn write: never acked.
    if lines and not lines[-1].endswith("\n"):
        lines.pop()
    ops: list[BatchOp] = []
    good = 0
    for lineno, raw in enumerate(lines, 1):
        try:
            op = _parse_body_line(raw, path, lineno)
        except BatchError:
            rest = "".join(lines[lineno:])
            if any(
                line.strip() and not line.strip().startswith("#")
                for line in rest.splitlines()
            ):
                raise  # garbage *before* parseable batches: real corruption
            break  # torn tail: drop the unacked final line
        good += len(raw.encode())
        if op is not None:
            ops.append(op)
    return ops, good


def write_stream(
    ops: Iterable[BatchOp], path: str | pathlib.Path
) -> "TraceWriter":
    """Drain a (possibly huge) stream into a sealed trace, out-of-core.

    Unlike :func:`write_trace` this never materialises the stream: each
    batch is formatted, written and dropped.  Returns the closed writer
    so callers can read ``batches`` off it.
    """
    with TraceWriter(path) as writer:
        for op in ops:
            writer.append(op)
    return writer


def validate_trace(ops: Sequence[BatchOp]) -> int:
    """Check a stream is replayable (inserts absent, deletes present).

    Returns the number of vertices mentioned.  Raises BatchError on the
    first inconsistent batch.
    """
    live: set = set()
    top = 0
    for i, op in enumerate(ops):
        seen_in_batch = set()
        for e in op.edges:
            if e in seen_in_batch:
                raise BatchError(f"batch {i}: duplicate edge {e}")
            seen_in_batch.add(e)
            top = max(top, e[1] + 1)
            if op.kind == "insert":
                if e in live:
                    raise BatchError(f"batch {i}: inserting live edge {e}")
                live.add(e)
            else:
                if e not in live:
                    raise BatchError(f"batch {i}: deleting absent edge {e}")
                live.remove(e)
    return top
