"""Batch-parallel hash tables (the [GMV91] substitute)."""

from .batch_table import BatchHashTable, log_star

__all__ = ["BatchHashTable", "log_star"]
