"""Batch hash table — the [GMV91] parallel dictionary substitute.

Gil, Matias & Vishkin give a CRCW-PRAM dictionary whose batch operations
cost ``O(1)`` work per element and ``O(log* n)`` depth.  Our substitute
(DESIGN.md §2 item 3) is a Python dict with those costs *charged* through
the cost model; semantics are identical.  The randomized algorithms of
Section 1.4 (matching, coloring) use this instead of the BST to shave a
log factor, exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping, Optional

from ..instrument.work_depth import CostModel
from ..resilience import faults as _faults


def log_star(n: float) -> int:
    """Iterated logarithm (base 2), clamped to at least 1."""
    import math

    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return max(1, count)


class BatchHashTable:
    """A key → value dictionary with batched updates and PRAM costs."""

    __slots__ = ("_data", "_cm")

    def __init__(
        self,
        cm: Optional[CostModel] = None,
        items: Optional[Mapping[Hashable, Any]] = None,
    ) -> None:
        self._data: dict[Hashable, Any] = {}
        self._cm = cm
        if items:
            self.batch_set(items.items())

    # -- batch operations (one [GMV91] round each) -----------------------------

    def batch_set(self, pairs: Iterable[tuple[Hashable, Any]]) -> None:
        """Insert/overwrite a batch of (key, value) pairs."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("hashtable.batch_set", self)
        pairs = list(pairs)
        for key, value in pairs:
            self._data[key] = value
        self._charge(len(pairs))

    def batch_delete(self, keys: Iterable[Hashable]) -> int:
        """Delete a batch of keys; absent keys are ignored (count returned)."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("hashtable.batch_delete", self)
        keys = list(keys)
        removed = 0
        for key in keys:
            if key in self._data:
                del self._data[key]
                removed += 1
        self._charge(len(keys))
        return removed

    def batch_get(self, keys: Iterable[Hashable], default: Any = None) -> list[Any]:
        """Look up a batch of keys."""
        keys = list(keys)
        self._charge(len(keys))
        return [self._data.get(key, default) for key in keys]

    def _charge(self, k: int) -> None:
        if self._cm is not None and k:
            self._cm.charge(work=k, depth=log_star(len(self._data) + k))

    # -- point operations -------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        if self._cm is not None:
            self._cm.charge(work=1, depth=1)
        return self._data.get(key, default)

    def set(self, key: Hashable, value: Any) -> None:
        if self._cm is not None:
            self._cm.charge(work=1, depth=1)
        self._data[key] = value

    def delete(self, key: Hashable) -> bool:
        if self._cm is not None:
            self._cm.charge(work=1, depth=1)
        if key in self._data:
            del self._data[key]
            return True
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def items(self):
        return self._data.items()

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()
