"""Instrumentation: cost model, Brent projections, metrics, telemetry.

* :mod:`.work_depth` — the simulated-PRAM work/depth :class:`CostModel`.
* :mod:`.brent` — Brent-bound runtime projections.
* :mod:`.metrics` — per-batch records, summaries, table rendering.
* :mod:`.trace` / :mod:`.telemetry` / :mod:`.export` — the observability
  layer (docs/OBSERVABILITY.md): phase-scoped spans attributing cost-model
  deltas to a game → round → rung tree, a process-wide metrics registry,
  and JSONL / Prometheus / fixed-width-report / BENCH-json sinks.
* :mod:`.wallclock` / :mod:`.history` / :mod:`.live` — the wall-clock
  observatory: the process-wide mockable Tracer clock plus the executor
  overhead ledger (``repro profile --overhead``), the bench-history
  store with regression gates (``repro bench``), and the live terminal
  dashboard / Prometheus HTTP endpoint (``repro run --live``).
"""

from .brent import BrentPoint, parallelism, project, saturation_processors
from .export import (
    JsonlSink,
    bench_payload,
    parse_prometheus,
    phase_shares,
    prometheus_text,
    read_jsonl,
    render_phase_tree,
    validate_bench_payload,
    write_bench_json,
)
from .history import BenchHistory, Regression, extract_metrics, render_trend
from .live import LiveDashboard, MetricsServer, serve_metrics
from .metrics import (
    BatchRecord,
    BatchTimer,
    RecoveryStats,
    Series,
    render_series,
    render_table,
)
from .telemetry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanNode,
    Tracer,
)
from .trace import SPAN_TAXONOMY, register_span, span, tracing
from .wallclock import ExecutorStats, FakeClock, mocked_clock, monotonic
from .work_depth import CostModel, NullCostModel, ParallelRegion, Snapshot

__all__ = [
    "BatchRecord",
    "BatchTimer",
    "BenchHistory",
    "BrentPoint",
    "CostModel",
    "Counter",
    "ExecutorStats",
    "FakeClock",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LiveDashboard",
    "MetricsRegistry",
    "MetricsServer",
    "NullCostModel",
    "ParallelRegion",
    "REGISTRY",
    "RecoveryStats",
    "Regression",
    "SPAN_TAXONOMY",
    "Series",
    "Snapshot",
    "SpanNode",
    "Tracer",
    "bench_payload",
    "extract_metrics",
    "mocked_clock",
    "monotonic",
    "parallelism",
    "parse_prometheus",
    "phase_shares",
    "project",
    "prometheus_text",
    "read_jsonl",
    "register_span",
    "render_phase_tree",
    "render_series",
    "render_table",
    "render_trend",
    "saturation_processors",
    "serve_metrics",
    "span",
    "tracing",
    "validate_bench_payload",
    "write_bench_json",
]
