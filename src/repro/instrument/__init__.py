"""Instrumentation: work/depth cost model, Brent projections, metrics."""

from .brent import BrentPoint, parallelism, project, saturation_processors
from .metrics import BatchRecord, BatchTimer, Series, render_series, render_table
from .work_depth import CostModel, NullCostModel, ParallelRegion, Snapshot

__all__ = [
    "BatchRecord",
    "BatchTimer",
    "BrentPoint",
    "CostModel",
    "NullCostModel",
    "ParallelRegion",
    "Series",
    "Snapshot",
    "parallelism",
    "project",
    "render_series",
    "render_table",
    "saturation_processors",
]
