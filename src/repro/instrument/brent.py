"""Brent's-principle runtime projections.

Brent's principle [Bre74] bounds the ``p``-processor runtime of an algorithm
with work ``W`` and depth ``D`` by::

    max(W / p, D)  <=  T_p  <=  W / p + D

The paper's headline claim — a batch of ``b`` updates processed in
``~O(b / p)`` time — is exactly this bound instantiated with
``W = b * polylog(n)`` and ``D = polylog(n)``.  On a single-core Python box
(see DESIGN.md §2 item 1) we cannot demonstrate real shared-memory speedup,
so benchmark E9 reports these projections computed from the *measured* work
and depth of each structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class BrentPoint:
    """Projected runtime/speedup for one processor count."""

    processors: int
    time_lower: float  # max(W/p, D)
    time_upper: float  # W/p + D
    speedup_lower: float  # W / time_upper
    speedup_upper: float  # W / time_lower


def project(work: int, depth: int, processors: Sequence[int]) -> list[BrentPoint]:
    """Brent projections of (work, depth) onto each processor count.

    ``speedup`` is relative to the 1-processor time, which equals ``work``.
    """
    if work < 0 or depth < 0:
        raise ValueError("work/depth must be non-negative")
    if depth > work:
        # A depth chain is itself work; measured structures never violate
        # this, but guard against caller mistakes.
        raise ValueError(f"depth ({depth}) cannot exceed work ({work})")
    points = []
    for p in processors:
        if p < 1:
            raise ValueError(f"processor count must be >= 1, got {p}")
        lo = max(work / p, float(depth))
        hi = work / p + depth
        points.append(
            BrentPoint(
                processors=p,
                time_lower=lo,
                time_upper=hi,
                speedup_lower=(work / hi) if hi > 0 else 1.0,
                speedup_upper=(work / lo) if lo > 0 else 1.0,
            )
        )
    return points


def parallelism(work: int, depth: int) -> float:
    """``W / D`` — the asymptotic speedup ceiling of the computation."""
    return work / depth if depth > 0 else float(work if work else 1)


def saturation_processors(work: int, depth: int) -> int:
    """Processor count beyond which depth dominates (no further speedup).

    This is ``ceil(W / D)``: the point where ``W/p`` drops below ``D``.
    """
    if depth <= 0:
        return 1
    return max(1, -(-work // depth))
