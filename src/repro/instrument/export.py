"""Telemetry sinks and machine-readable perf export.

Three output formats, all dependency-free:

* **JSON-lines event log** — :class:`JsonlSink` appends one JSON object
  per span exit / point event; :func:`read_jsonl` round-trips it.
* **Prometheus text exposition** — :func:`prometheus_text` renders a
  :class:`~repro.instrument.telemetry.MetricsRegistry`;
  :func:`parse_prometheus` parses the sample lines back (round-trip
  tested, and handy for scraping BENCH artefacts in CI).
* **Fixed-width phase-tree report** — :func:`render_phase_tree` renders a
  :class:`~repro.instrument.telemetry.SpanNode` tree the way
  EXPERIMENTS.md renders its tables; :func:`phase_shares` flattens the
  same tree into ``path -> share-of-total-work`` fractions.

:func:`bench_payload` + :func:`write_bench_json` produce the
``BENCH_<name>.json`` perf-trajectory files (work/edge percentiles,
depth, wall-clock, phase shares); :func:`validate_bench_payload` is the
CI gate that keeps their schema honest.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Optional, Sequence

from ..errors import ParameterError
from .metrics import Series
from .telemetry import MetricsRegistry, SpanNode

# --------------------------------------------------------------------------
# JSON-lines event sink
# --------------------------------------------------------------------------


class JsonlSink:
    """A tracer sink writing one JSON object per line to ``path``.

    Usable as a context manager; events are written with sorted keys so
    logs diff cleanly across runs.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.events_written = 0

    def __call__(self, event: dict) -> None:
        """Append one event (the tracer-sink protocol)."""
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Parse a JSON-lines event log back into a list of dicts."""
    out: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ParameterError(f"{path}:{lineno}: bad JSONL line: {exc}") from exc
    return out


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------


_METRIC_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_METRIC_NAME_BAD_CHAR = re.compile(r"[^a-zA-Z0-9_:]")

#: default ``# HELP`` text for the metric families the library publishes
#: (a registry ``describe()`` overrides these; unknown families fall back
#: to a generated one-liner so every family still gets a HELP line).
METRIC_HELP: dict[str, str] = {
    "repro_batches_total": "processed trace batches by kind",
    "repro_work_total": "cost-model work units charged",
    "repro_depth_total": "cost-model depth units charged",
    "repro_last_batch_size": "edge updates in the most recent batch",
    "repro_batch_work_per_edge": "per-batch work per edge update (log2 buckets)",
    "repro_batch_depth": "per-batch cost-model depth (log2 buckets)",
    "repro_batch_wall_seconds": "per-batch wall-clock seconds (log2 buckets)",
    "repro_recovery_batches_total": "batches resolved per recovery tier",
    "repro_scenario_batches_total": "adversarial scenario batches emitted",
    "repro_scenario_edge_updates_total": "adversarial scenario edge updates emitted",
    "repro_scenario_live_edges": "live edges of the scenario stream",
    "repro_spans_total": "telemetry span exits by span name",
    "repro_span_seconds_total": "wall-clock seconds inside spans by name",
    "repro_executor_rounds_total": "executor run_structures sweeps",
    "repro_executor_tasks_total": "rung tasks executed",
    "repro_executor_payload_bytes_total": "pickled task payload bytes shipped to workers",
    "repro_executor_result_bytes_total": "pickled result bytes shipped back",
    "repro_executor_serialize_seconds_total": "coordinator seconds pickling task payloads",
    "repro_executor_deserialize_seconds_total": "coordinator seconds unpickling results",
    "repro_executor_wait_seconds_total": "coordinator seconds blocked on worker results",
    "repro_executor_queue_wait_seconds_total": "submit-to-worker-start queue latency seconds",
    "repro_executor_compute_seconds_total": "worker seconds inside structure methods",
    "repro_executor_worker_pickle_seconds_total": "worker seconds pickling/unpickling",
    "repro_executor_merge_seconds_total": "coordinator seconds merging worker deltas",
    "repro_executor_idle_seconds_total": "worker seconds paid for but idle",
    "repro_executor_round_wall_seconds": "wall-clock seconds per executor round (log2 buckets)",
    "repro_executor_retries_total": "rung tasks retried after a pool failure",
    "repro_executor_degraded_total": "rung tasks degraded to in-process execution",
}


def _fmt_labels(labels: Sequence[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    # HELP lines escape only backslash and newline (the exposition spec).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _safe_name(name: str) -> str:
    """Escape a metric family name into the exposition grammar.

    Registry names are validated at registration, so this only matters
    for foreign registries rendered through this function — invalid
    characters become ``_`` rather than producing an unscrapable page.
    """
    if _METRIC_NAME_OK.match(name):
        return name
    name = _METRIC_NAME_BAD_CHAR.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Every metric family gets exactly one ``# HELP`` and one ``# TYPE``
    line, emitted before its first sample (children of a labelled family
    share them).  Help text comes from ``registry.describe()``, falling
    back to :data:`METRIC_HELP` and then a generated one-liner; family
    names are escaped into the exposition grammar and label values are
    quote-escaped.  Histograms expand into cumulative ``_bucket{le=...}``
    samples plus ``_sum`` and ``_count``, exactly like a client library
    would.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for metric in registry.collect():
        name = _safe_name(metric.name)
        if metric.name not in seen:
            seen.add(metric.name)
            help_text = (
                registry.help_of(metric.name)
                or METRIC_HELP.get(metric.name)
                or f"{metric.name} ({metric.kind})"
            )
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind == "histogram":
            cumulative = 0
            for exp in sorted(metric.buckets):
                cumulative += metric.buckets[exp]
                le = _fmt_labels(list(metric.labels) + [("le", repr(2.0**exp))])
                lines.append(f"{name}_bucket{le} {cumulative}")
            inf = _fmt_labels(list(metric.labels) + [("le", "+Inf")])
            lines.append(f"{name}_bucket{inf} {metric.count}")
            lines.append(f"{name}_sum{_fmt_labels(metric.labels)} {_num(metric.sum)}")
            lines.append(f"{name}_count{_fmt_labels(metric.labels)} {metric.count}")
        else:
            lines.append(f"{name}{_fmt_labels(metric.labels)} {_num(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition-format sample lines into {(name, labels): value}.

    Comment/TYPE lines are skipped.  Supports the subset
    :func:`prometheus_text` emits (no exemplars, no timestamps) — enough
    for a faithful round-trip in tests and CI checks.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ParameterError(f"bad exposition line: {raw!r}")
        labels: list[tuple[str, str]] = []
        if "{" in name_part:
            name, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            for item in _split_labels(label_blob):
                k, _, v = item.partition("=")
                labels.append((k, _unescape(v.strip('"'))))
        else:
            name = name_part
        out[(name, tuple(labels))] = float(value_part)
    return out


def _split_labels(blob: str) -> list[str]:
    items, buf, in_quotes = [], [], False
    for ch in blob:
        if ch == '"' and (not buf or buf[-1] != "\\"):
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            items.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    if buf:
        items.append("".join(buf))
    return [i for i in (item.strip() for item in items) if i]


def _unescape(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


# --------------------------------------------------------------------------
# phase-tree report
# --------------------------------------------------------------------------


def render_phase_tree(root: SpanNode, *, min_share: float = 0.0) -> str:
    """Render a span tree as the fixed-width report EXPERIMENTS.md embeds.

    One row per phase, indented by depth; ``share`` is the phase's
    inclusive work as a fraction of the root's.  Nodes with children get
    an explicit ``(self)`` row so the work column always sums exactly to
    the total — nothing is hidden inside parents.  ``min_share`` prunes
    rows (never the ``(self)`` accounting rows) below a work fraction.
    """
    total = root.work or 1
    rows: list[tuple[str, int, int, float, int]] = []

    def visit(node: SpanNode, indent: int) -> None:
        rows.append(
            (("  " * indent) + node.label, node.work, node.depth, node.wall, node.count)
        )
        kids = [
            node.children[k]
            for k in sorted(node.children, key=lambda k: -node.children[k].work)
        ]
        shown = [c for c in kids if c.work / total >= min_share]
        for child in shown:
            visit(child, indent + 1)
        hidden = len(kids) - len(shown)
        if kids:
            self_w = node.self_work()
            label = "(self)" if not hidden else f"(self + {hidden} pruned)"
            pruned_w = sum(c.work for c in kids if c not in shown)
            pruned_d = sum(c.depth for c in kids if c not in shown)
            pruned_t = sum(c.wall for c in kids if c not in shown)
            rows.append(
                (
                    ("  " * (indent + 1)) + label,
                    self_w + pruned_w,
                    max(0, node.self_depth()) + pruned_d,
                    pruned_t,
                    node.count,
                )
            )

    visit(root, 0)
    headers = ["phase", "work", "share", "depth", "wall s", "count"]
    table_rows = [
        [label, work, f"{100.0 * work / total:.1f}%", depth, f"{wall:.3f}", count]
        for label, work, depth, wall, count in rows
    ]
    widths = [len(h) for h in headers]
    cells = [[str(c) for c in row] for row in table_rows]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [
        "  ".join(h.ljust(w) if i == 0 else h.rjust(w) for i, (h, w) in enumerate(zip(headers, widths)))
    ]
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(c.ljust(w) if i == 0 else c.rjust(w) for i, (c, w) in enumerate(zip(row, widths)))
        )
    return "\n".join(lines)


def phase_shares(root: SpanNode) -> dict[str, dict[str, float]]:
    """Flatten a span tree into ``"a/b/c" -> {work, share, depth, wall,
    count, self_work, self_share}`` (shares are fractions of root work)."""
    total = root.work or 1
    out: dict[str, dict[str, float]] = {}
    for path, node in root.walk():
        key = "/".join(path)
        out[key] = {
            "work": node.work,
            "share": node.work / total,
            "self_work": node.self_work(),
            "self_share": node.self_work() / total,
            "depth": node.depth,
            "wall": node.wall,
            "count": node.count,
        }
    return out


# --------------------------------------------------------------------------
# BENCH_<name>.json perf trajectory
# --------------------------------------------------------------------------

#: Keys every BENCH file must carry — the CI schema gate.
REQUIRED_BENCH_KEYS: tuple[str, ...] = (
    "name",
    "batches",
    "edge_updates",
    "total_work",
    "total_depth",
    "wall_seconds",
    "work_per_edge",
    "depth",
    "phase_shares",
)

#: Required sub-keys of the two percentile blocks.
REQUIRED_WPE_KEYS: tuple[str, ...] = ("mean", "p50", "p90", "p99", "max")
REQUIRED_DEPTH_KEYS: tuple[str, ...] = ("mean", "p50", "p99", "max")


def bench_payload(
    name: str,
    series: Series,
    tree: Optional[SpanNode] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Build the machine-readable perf summary of one measured run."""
    payload: dict[str, Any] = {
        "name": name,
        "batches": len(series.records),
        "edge_updates": series.total_edges(),
        "total_work": series.total_work(),
        "total_depth": sum(r.depth for r in series.records),
        "wall_seconds": sum(r.wall_seconds for r in series.records),
        "work_per_edge": {
            "mean": series.mean_work_per_edge(),
            "p50": series.percentile_work_per_edge(50),
            "p90": series.percentile_work_per_edge(90),
            "p99": series.percentile_work_per_edge(99),
            "max": series.max_work_per_edge(),
        },
        "depth": {
            "mean": series.mean_depth(),
            "p50": series.percentile_depth(50),
            "p99": series.percentile_depth(99),
            "max": series.max_depth(),
        },
        "phase_shares": phase_shares(tree) if tree is not None else {},
    }
    if extra:
        payload.update(extra)
    return payload


def validate_bench_payload(payload: Any) -> list[str]:
    """Schema check for one BENCH payload; returns the problems found."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, not a dict"]
    for key in REQUIRED_BENCH_KEYS:
        if key not in payload:
            problems.append(f"missing required key {key!r}")
    wpe = payload.get("work_per_edge")
    if isinstance(wpe, dict):
        problems += [
            f"work_per_edge missing {k!r}" for k in REQUIRED_WPE_KEYS if k not in wpe
        ]
    elif "work_per_edge" in payload:
        problems.append("work_per_edge is not a dict")
    depth = payload.get("depth")
    if isinstance(depth, dict):
        problems += [
            f"depth missing {k!r}" for k in REQUIRED_DEPTH_KEYS if k not in depth
        ]
    elif "depth" in payload:
        problems.append("depth is not a dict")
    if "phase_shares" in payload and not isinstance(payload["phase_shares"], dict):
        problems.append("phase_shares is not a dict")
    return problems


def write_bench_json(
    directory: str | pathlib.Path, payload: dict[str, Any]
) -> pathlib.Path:
    """Validate and write ``BENCH_<name>.json`` under ``directory``."""
    problems = validate_bench_payload(payload)
    if problems:
        raise ParameterError("invalid BENCH payload: " + "; ".join(problems))
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['name']}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "JsonlSink",
    "METRIC_HELP",
    "REQUIRED_BENCH_KEYS",
    "REQUIRED_DEPTH_KEYS",
    "REQUIRED_WPE_KEYS",
    "bench_payload",
    "parse_prometheus",
    "phase_shares",
    "prometheus_text",
    "read_jsonl",
    "render_phase_tree",
    "validate_bench_payload",
    "write_bench_json",
]
