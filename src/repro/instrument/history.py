"""Bench history: append-only perf records with regression gates.

Every ``BENCH_<name>.json`` payload is a snapshot; this module gives the
snapshots a timeline.  :class:`BenchHistory` appends each measured run
into a per-experiment JSONL file under ``.bench_history/``, keyed by
``(experiment, config, git_sha)``, and the ``repro bench`` CLI reads the
store back out:

* ``repro bench --record FILE...`` — append payloads to the store.
* ``repro bench --trend`` — per-metric trend table with a sparkline.
* ``repro bench --compare BASELINE`` — gate current payloads against a
  baseline; exits non-zero when a *gated* metric (wall-clock seconds or
  peak-memory KiB — never work/depth, which are exact and have their own
  ``--check`` gate) regresses beyond a noise threshold.

The noise threshold is estimated from repeated-run variance: with >= 3
history records for the same (experiment, config) the threshold is
``max(floor, 3 * cv)`` where ``cv`` is the coefficient of variation of
that metric across recent records — so a machine with noisy wall clocks
gates loosely and a quiet one gates tightly.  Absolute floors (50 ms,
1 MiB) keep tiny denominators from flagging microscopic jitter.
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Iterable, Optional

#: default store directory name (created next to the repo's BENCH files).
DEFAULT_DIR = ".bench_history"

#: relative-regression floor applied when history is too thin to
#: estimate noise (and the minimum even when it is not).
DEFAULT_THRESHOLD = 0.25

#: how many trailing history records feed the noise estimate.
NOISE_WINDOW = 10

#: absolute slack added on top of the relative gate, per metric kind —
#: sub-floor deltas are jitter no matter what the ratio says.
ABS_FLOOR_SECONDS = 0.05
ABS_FLOOR_KB = 1024.0

_SECONDS_RE = re.compile(r"(?:^|[._])(?:wall_seconds|seconds)$")
_MEMORY_RE = re.compile(r"(?:^|[._])[a-z_]*(?:peak|maxrss|rss)[a-z_]*_kb$")


def metric_kind(name: str) -> Optional[str]:
    """``"seconds"`` / ``"kb"`` for gated metrics, ``None`` otherwise."""
    if _SECONDS_RE.search(name):
        return "seconds"
    if _MEMORY_RE.search(name):
        return "kb"
    return None


def extract_metrics(payload: Any, prefix: str = "") -> dict[str, float]:
    """Pull every gated metric out of a BENCH payload, dotted-path keyed.

    Walks nested dicts (``configs.serial.wall_seconds``,
    ``out_of_core.100000.replay_peak_kb``...) and keeps numeric leaves
    whose key names a wall-clock or peak-memory measurement.  Work and
    depth are deliberately not gated: they are exact replay invariants
    with their own bit-identity check.
    """
    out: dict[str, float] = {}
    if not isinstance(payload, dict):
        return out
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(extract_metrics(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if metric_kind(path) is not None:
                out[path] = float(value)
    return out


def git_sha(cwd: Optional[str] = None) -> str:
    """The current short commit sha, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@dataclass
class Regression:
    """One gated metric that moved past its noise threshold."""

    experiment: str
    metric: str
    baseline: float
    current: float
    threshold: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline > 0 else float("inf")

    def describe(self) -> str:
        unit = "s" if metric_kind(self.metric) == "seconds" else "KiB"
        return (
            f"{self.experiment}: {self.metric} regressed "
            f"{self.baseline:.3f}{unit} -> {self.current:.3f}{unit} "
            f"({self.ratio:.2f}x, threshold {1.0 + self.threshold:.2f}x)"
        )


class BenchHistory:
    """Append-only JSONL store of bench runs, one file per experiment."""

    def __init__(self, root: str | pathlib.Path = DEFAULT_DIR) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, experiment: str) -> pathlib.Path:
        safe = re.sub(r"[^A-Za-z0-9._-]", "_", experiment)
        return self.root / f"{safe}.jsonl"

    # -- writing -------------------------------------------------------------

    def append(
        self,
        payload: dict[str, Any],
        config: str = "default",
        sha: Optional[str] = None,
        recorded_at: Optional[float] = None,
    ) -> dict[str, Any]:
        """Append one BENCH payload as a keyed record; returns the record."""
        experiment = str(payload.get("name", "unnamed"))
        record = {
            "experiment": experiment,
            "config": config,
            "git_sha": sha if sha is not None else git_sha(),
            "recorded_at": (
                recorded_at if recorded_at is not None else time.time()
            ),
            "metrics": extract_metrics(payload),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path_for(experiment).open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    # -- reading -------------------------------------------------------------

    def experiments(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def records(
        self, experiment: str, config: Optional[str] = None
    ) -> list[dict[str, Any]]:
        """All records of one experiment, oldest first (broken lines skipped)."""
        path = self.path_for(experiment)
        if not path.is_file():
            return []
        out: list[dict[str, Any]] = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if config is not None and record.get("config") != config:
                continue
            out.append(record)
        return out

    # -- noise + regression gating -------------------------------------------

    def noise_threshold(
        self,
        experiment: str,
        metric: str,
        config: Optional[str] = None,
        floor: float = DEFAULT_THRESHOLD,
    ) -> float:
        """Relative threshold for ``metric`` from repeated-run variance.

        ``max(floor, 3 * cv)`` over the last :data:`NOISE_WINDOW` history
        values; just ``floor`` when fewer than 3 samples exist.
        """
        values = [
            m[metric]
            for r in self.records(experiment, config=config)
            if isinstance(m := r.get("metrics"), dict) and metric in m
        ][-NOISE_WINDOW:]
        if len(values) < 3:
            return floor
        mean = sum(values) / len(values)
        if mean <= 0:
            return floor
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        cv = var**0.5 / mean
        return max(floor, 3.0 * cv)

    def compare(
        self,
        baseline: dict[str, Any],
        current: dict[str, Any],
        config: Optional[str] = None,
        threshold: Optional[float] = None,
    ) -> list[Regression]:
        """Gate ``current`` against ``baseline``; returns the regressions.

        Only metrics present in *both* payloads are gated (a benchmark
        that grew a new config must not fail the gate retroactively).
        ``threshold`` overrides the noise estimate when given.
        """
        experiment = str(baseline.get("name", current.get("name", "unnamed")))
        base_metrics = extract_metrics(baseline)
        cur_metrics = extract_metrics(current)
        regressions: list[Regression] = []
        for metric in sorted(base_metrics):
            if metric not in cur_metrics:
                continue
            base, cur = base_metrics[metric], cur_metrics[metric]
            rel = (
                threshold
                if threshold is not None
                else self.noise_threshold(experiment, metric, config=config)
            )
            floor = (
                ABS_FLOOR_SECONDS
                if metric_kind(metric) == "seconds"
                else ABS_FLOOR_KB
            )
            if cur > base * (1.0 + rel) + floor:
                regressions.append(
                    Regression(
                        experiment=experiment,
                        metric=metric,
                        baseline=base,
                        current=cur,
                        threshold=rel,
                    )
                )
        return regressions


# -- trend rendering ----------------------------------------------------------

_SPARK_BARS = "▁▂▃▄▅▆▇█"


def spark(values: Iterable[float]) -> str:
    """A unicode sparkline of ``values`` (empty string for no values)."""
    vals = list(values)
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_BARS[0] * len(vals)
    span = hi - lo
    return "".join(
        _SPARK_BARS[min(len(_SPARK_BARS) - 1, int((v - lo) / span * len(_SPARK_BARS)))]
        for v in vals
    )


def render_trend(
    history: BenchHistory,
    experiment: Optional[str] = None,
    metric: Optional[str] = None,
) -> str:
    """Per-metric trend table: latest value, delta vs first, sparkline."""
    from .metrics import render_table  # local: avoid an import cycle

    names = [experiment] if experiment else history.experiments()
    rows: list[list[object]] = []
    for name in names:
        records = history.records(name)
        if not records:
            continue
        metrics: dict[str, list[float]] = {}
        shas: list[str] = []
        for record in records:
            shas.append(str(record.get("git_sha", "?")))
            for key, value in (record.get("metrics") or {}).items():
                if metric is not None and key != metric:
                    continue
                metrics.setdefault(key, []).append(float(value))
        for key in sorted(metrics):
            vals = metrics[key]
            delta = (
                f"{(vals[-1] / vals[0] - 1.0) * 100.0:+.1f}%"
                if vals[0] > 0
                else "n/a"
            )
            rows.append(
                [name, key, len(vals), f"{vals[-1]:.3f}", delta, spark(vals)]
            )
    if not rows:
        return "bench history is empty"
    table = render_table(
        ["experiment", "metric", "runs", "latest", "vs first", "trend"], rows
    )
    return table


__all__ = [
    "ABS_FLOOR_KB",
    "ABS_FLOOR_SECONDS",
    "BenchHistory",
    "DEFAULT_DIR",
    "DEFAULT_THRESHOLD",
    "NOISE_WINDOW",
    "Regression",
    "extract_metrics",
    "git_sha",
    "metric_kind",
    "render_trend",
    "spark",
]
