"""Live run dashboard and the HTTP metrics endpoint.

``repro run --live`` (and ``repro scenarios --live``) attach a
:class:`LiveDashboard` to the process-wide
:class:`~repro.instrument.telemetry.MetricsRegistry`: a single terminal
status line redrawn in place (``\\r`` + erase on a tty, throttled plain
lines otherwise) showing per-rung progress, batch throughput, ETA, the
top-3 hottest spans by wall-clock, and the executor overhead counters.
Everything is *read* from the registry — the dashboard adds no
instrumentation of its own and never touches a cost model, so a live run
stays bit-identical to a quiet one.

``--serve-metrics PORT`` starts a :class:`MetricsServer` — a daemon
ThreadingHTTPServer on ``127.0.0.1`` exposing the registry as Prometheus
text on ``/metrics`` (and ``/``), the text-format twin of the JSONL
telemetry sink.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Callable, Optional

from . import wallclock as _wallclock
from .telemetry import MetricsRegistry

#: default redraw throttle (seconds between frames).
DEFAULT_INTERVAL = 0.5

#: how many hottest spans the dashboard panel shows.
TOP_SPANS = 3


def _sum_family(registry: MetricsRegistry, name: str) -> float:
    """Sum a counter family's value across all its label children."""
    return sum(m.value for m in registry.collect() if m.name == name)


def _family_by_label(
    registry: MetricsRegistry, name: str, label: str
) -> dict[str, float]:
    """One counter family's values keyed by a single label's value."""
    out: dict[str, float] = {}
    for metric in registry.collect():
        if metric.name != name:
            continue
        labels = dict(metric.labels)
        if label in labels:
            out[labels[label]] = out.get(labels[label], 0.0) + metric.value
    return out


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class LiveDashboard:
    """A one-line terminal view over a live :class:`MetricsRegistry`.

    Use it as a tracer sink (``sinks=[dash]`` — every span/event tick
    gives it a chance to redraw, throttled to ``interval``) or drive it
    from a daemon thread via :meth:`start` when no sink plumbing exists
    (``repro scenarios --live``).  ``total_batches`` (when known from the
    trace scan) turns throughput into an ETA.

    On a tty each frame is ``\\r`` + erase-line + the new frame; on a
    plain pipe frames are whole lines, further throttled (10x interval)
    so logs stay readable.  :meth:`close` prints a final newline-
    terminated frame either way.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        out: IO[str],
        total_batches: Optional[int] = None,
        interval: float = DEFAULT_INTERVAL,
        clock: Callable[[], float] = _wallclock.monotonic,
    ) -> None:
        self.registry = registry
        self.out = out
        self.total_batches = total_batches
        self.interval = interval
        self.clock = clock
        self.t0 = clock()
        self._last_draw: Optional[float] = None
        self._isatty = bool(getattr(out, "isatty", lambda: False)())
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.frames = 0

    # -- the sink protocol ---------------------------------------------------

    def __call__(self, event: dict) -> None:
        """Tracer-sink entry point: maybe redraw (event content unused)."""
        self.maybe_render()

    def maybe_render(self) -> None:
        """Redraw if at least ``interval`` elapsed since the last frame."""
        now = self.clock()
        throttle = self.interval if self._isatty else self.interval * 10
        if self._last_draw is not None and now - self._last_draw < throttle:
            return
        self._last_draw = now
        self._draw(self.render())

    # -- frame construction --------------------------------------------------

    def render(self) -> str:
        """Build one status-line frame from the registry's current state."""
        reg = self.registry
        elapsed = max(1e-9, self.clock() - self.t0)
        batches = _sum_family(reg, "repro_batches_total")
        rate = batches / elapsed
        parts = []
        if self.total_batches:
            pct = 100.0 * batches / self.total_batches
            eta = (
                (self.total_batches - batches) / rate if rate > 0 else float("inf")
            )
            parts.append(
                f"batch {int(batches)}/{self.total_batches} ({pct:.0f}%)"
            )
            parts.append(f"{rate:.1f} b/s")
            parts.append(f"eta {_fmt_eta(eta)}")
        else:
            parts.append(f"batch {int(batches)}")
            parts.append(f"{rate:.1f} b/s")
        rounds = _family_by_label(reg, "repro_executor_rounds_total", "backend")
        for backend in sorted(rounds):
            waits = _family_by_label(
                reg, "repro_executor_wait_seconds_total", "backend"
            )
            parts.append(
                f"exec[{backend}] {int(rounds[backend])} rounds"
                + (f" wait {waits[backend]:.1f}s" if backend in waits else "")
            )
        spans = _family_by_label(reg, "repro_span_seconds_total", "span")
        hottest = sorted(spans.items(), key=lambda kv: -kv[1])[:TOP_SPANS]
        if hottest:
            parts.append(
                "hot: " + " ".join(f"{n}={s:.1f}s" for n, s in hottest)
            )
        self.frames += 1
        return " | ".join(parts)

    def _draw(self, frame: str, final: bool = False) -> None:
        if self._isatty:
            self.out.write("\r\x1b[2K" + frame + ("\n" if final else ""))
        else:
            self.out.write(frame + "\n")
        self.out.flush()

    # -- optional self-ticking (no sink plumbing available) ------------------

    def start(self) -> None:
        """Tick from a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                self.maybe_render()

        self._thread = threading.Thread(
            target=loop, name="repro-live-dashboard", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop any ticker thread and print the final frame."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._draw(self.render(), final=True)


# -- the /metrics endpoint ----------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # injected by MetricsServer

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        from .export import prometheus_text  # local: avoid an import cycle

        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = prometheus_text(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        """Silence per-request stderr noise (scrapes every few seconds)."""


class MetricsServer:
    """A daemon-threaded Prometheus text endpoint over one registry.

    Binds ``127.0.0.1:port`` (``port=0`` picks a free one — tests use
    that); :attr:`port` is the bound port either way.  Serving happens on
    a daemon thread, so a crashed run never hangs on the exporter.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0) -> None:
        handler = type("BoundMetricsHandler", (_MetricsHandler,), {})
        handler.registry = registry
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}/metrics"

    def close(self) -> None:
        """Shut the endpoint down (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)


def serve_metrics(registry: MetricsRegistry, port: int = 0) -> MetricsServer:
    """Start (and return) a :class:`MetricsServer` for ``registry``."""
    return MetricsServer(registry, port)


__all__ = [
    "DEFAULT_INTERVAL",
    "LiveDashboard",
    "MetricsServer",
    "TOP_SPANS",
    "serve_metrics",
]
