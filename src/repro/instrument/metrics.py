"""Per-batch metric records and plain-text report rendering.

The benchmark harness accumulates one :class:`BatchRecord` per processed
batch and summarises whole runs with :class:`Series`.  Rendering helpers
produce the fixed-width tables written into EXPERIMENTS.md — no plotting
dependencies, every "figure" is an ASCII table/series.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from . import telemetry as _telemetry
from . import wallclock as _wallclock
from .work_depth import CostModel


def _percentile(vals: list[float], q: float) -> float:
    """Inclusive linear-interpolation percentile over sorted ``vals``.

    ``q`` outside [0, 100] is a caller bug (it would silently
    extrapolate), so it raises ``ValueError``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not vals:
        return 0.0
    if len(vals) == 1:
        return vals[0]
    pos = (q / 100.0) * (len(vals) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(vals) - 1)
    frac = pos - lo
    return vals[lo] * (1 - frac) + vals[hi] * frac


@dataclass
class BatchRecord:
    """Metrics for one processed batch."""

    kind: str  # "insert" | "delete" | "mixed" | label chosen by the bench
    batch_size: int
    work: int
    depth: int
    wall_seconds: float
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def work_per_edge(self) -> float:
        return self.work / self.batch_size if self.batch_size else float(self.work)


@dataclass
class Series:
    """A sequence of batch records plus summary statistics."""

    records: list[BatchRecord] = field(default_factory=list)

    def add(self, record: BatchRecord) -> None:
        self.records.append(record)

    # -- summaries ----------------------------------------------------------

    def total_work(self) -> int:
        return sum(r.work for r in self.records)

    def total_edges(self) -> int:
        return sum(r.batch_size for r in self.records)

    def max_work_per_edge(self) -> float:
        return max((r.work_per_edge for r in self.records), default=0.0)

    def mean_work_per_edge(self) -> float:
        edges = self.total_edges()
        return self.total_work() / edges if edges else 0.0

    def max_depth(self) -> int:
        return max((r.depth for r in self.records), default=0)

    def mean_depth(self) -> float:
        return sum(r.depth for r in self.records) / len(self.records) if self.records else 0.0

    def percentile_work_per_edge(self, q: float) -> float:
        """Inclusive linear-interpolation percentile; q must be in [0, 100]."""
        return _percentile(sorted(r.work_per_edge for r in self.records), q)

    def percentile_depth(self, q: float) -> float:
        """Per-batch depth percentile; q must be in [0, 100]."""
        return _percentile(sorted(float(r.depth) for r in self.records), q)


class BatchTimer:
    """Measures (work, depth, wall) deltas of a cost model around batches.

    With a :class:`~repro.instrument.telemetry.MetricsRegistry` attached,
    every batch also publishes into it: ``repro_batches_total{kind=}``,
    ``repro_work_total`` / ``repro_depth_total``, per-batch log2 histograms
    of work-per-edge, depth, and wall-clock seconds (negative-exponent
    buckets resolve the sub-second batches), and one ``repro_<name>_total``
    counter per cost-model event counter — the structured replacement for
    reading the ad-hoc ``BatchRecord.counters`` dicts.

    Wall timing reads ``clock`` — the process-wide mockable monotonic
    clock by default (:mod:`repro.instrument.wallclock`).
    """

    def __init__(
        self,
        cm: CostModel,
        registry: Optional["_telemetry.MetricsRegistry"] = None,
        clock: Callable[[], float] = _wallclock.monotonic,
    ) -> None:
        self.cm = cm
        self.series = Series()
        self.registry = registry
        self.clock = clock

    @contextmanager
    def batch(self, kind: str, size: int) -> Iterator[None]:
        before = self.cm.snapshot()
        counters_before = dict(self.cm.counters)
        t0 = self.clock()
        yield
        wall = max(0.0, self.clock() - t0)
        after = self.cm.snapshot()
        delta_counters = {
            k: v - counters_before.get(k, 0)
            for k, v in self.cm.counters.items()
            if v != counters_before.get(k, 0)
        }
        record = BatchRecord(
            kind=kind,
            batch_size=size,
            work=after.work - before.work,
            depth=after.depth - before.depth,
            wall_seconds=wall,
            counters=delta_counters,
        )
        self.series.add(record)
        if self.registry is not None:
            self._publish(record)

    def _publish(self, record: BatchRecord) -> None:
        reg = self.registry
        reg.counter("repro_batches_total", kind=record.kind).inc()
        reg.counter("repro_work_total").inc(record.work)
        reg.counter("repro_depth_total").inc(record.depth)
        reg.gauge("repro_last_batch_size").set(record.batch_size)
        reg.histogram("repro_batch_work_per_edge").observe(record.work_per_edge)
        reg.histogram("repro_batch_depth").observe(record.depth)
        reg.histogram("repro_batch_wall_seconds").observe(record.wall_seconds)
        for name, delta in record.counters.items():
            if delta > 0:
                reg.counter(f"repro_{name}_total").inc(delta)


# -- recovery accounting ------------------------------------------------------

#: Batch outcomes in escalation order (see ``repro.resilience.recovery``):
#: ``ok`` — applied cleanly; ``rollback`` — tier 1 (transactional rollback +
#: retry); ``checkpoint`` — tier 2 (restore checkpoint + WAL suffix replay);
#: ``rebuild`` — tier 3 (full reconstruction from the ground-truth graph).
RECOVERY_TIERS: tuple[str, ...] = ("ok", "rollback", "checkpoint", "rebuild")


@dataclass
class RecoveryStats:
    """Which recovery tier resolved each batch — the resilience scoreboard.

    Every :meth:`record` also mirrors into the process-wide telemetry
    registry as ``repro_recovery_batches_total{outcome=...}`` (only
    ``record``, not ``merge`` — merged scoreboards aggregate counts that
    were already published when first recorded).
    """

    counts: dict[str, int] = field(default_factory=dict)

    def record(self, outcome: str) -> None:
        if outcome not in RECOVERY_TIERS:
            raise ValueError(f"unknown recovery outcome {outcome!r}")
        self.counts[outcome] = self.counts.get(outcome, 0) + 1
        _telemetry.REGISTRY.counter(
            "repro_recovery_batches_total", outcome=outcome
        ).inc()

    def merge(self, other: "RecoveryStats") -> None:
        for outcome, count in other.counts.items():
            self.counts[outcome] = self.counts.get(outcome, 0) + count

    @property
    def batches(self) -> int:
        return sum(self.counts.values())

    @property
    def recoveries(self) -> int:
        """Batches that needed any tier above 'ok'."""
        return self.batches - self.counts.get("ok", 0)

    def render(self) -> str:
        rows = [
            [tier, self.counts.get(tier, 0)]
            for tier in RECOVERY_TIERS
            if tier in self.counts
        ]
        return render_table(["outcome", "batches"], rows)


# -- adversarial-scenario accounting ------------------------------------------


@dataclass
class ScenarioStats:
    """Workload accounting for one adversarial scenario stream.

    Fed one batch at a time by :meth:`observe` while a scenario stream is
    drained (soaked, or spilled to a tracefile), it tracks the stream's
    shape — including the live-edge high-water mark that certifies the
    out-of-core contract of windowed scenarios — and mirrors everything
    into the process-wide registry as ``repro_scenario_*`` series
    labelled by scenario name.
    """

    scenario: str
    batches: int = 0
    edge_updates: int = 0
    inserts: int = 0
    deletes: int = 0
    live_edges: int = 0
    max_live_edges: int = 0

    def observe(self, kind: str, size: int) -> None:
        """Account one emitted batch of the stream."""
        self.batches += 1
        self.edge_updates += size
        if kind == "insert":
            self.inserts += 1
            self.live_edges += size
        else:
            self.deletes += 1
            self.live_edges -= size
        self.max_live_edges = max(self.max_live_edges, self.live_edges)
        reg = _telemetry.REGISTRY
        reg.counter("repro_scenario_batches_total", scenario=self.scenario).inc()
        reg.counter(
            "repro_scenario_edge_updates_total", scenario=self.scenario
        ).inc(size)
        reg.gauge("repro_scenario_live_edges", scenario=self.scenario).set(
            self.live_edges
        )

    def render(self) -> str:
        return render_table(
            ["scenario", "batches", "edge updates", "inserts", "deletes", "max live"],
            [[
                self.scenario,
                self.batches,
                self.edge_updates,
                self.inserts,
                self.deletes,
                self.max_live_edges,
            ]],
        )


# -- plain-text rendering ----------------------------------------------------


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table (github-markdown-flavoured)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    def line(parts: Sequence[str]) -> str:
        return "| " + " | ".join(p.ljust(w) for p, w in zip(parts, widths)) + " |"
    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(list(headers)), sep]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_series(xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str) -> str:
    """Render an (x, y) series as a two-column table — our 'figure' format."""
    return render_table([x_label, y_label], list(zip(xs, ys)))


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
