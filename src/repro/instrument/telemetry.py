"""Phase-scoped tracing and the process-wide metrics registry.

Two halves, both zero-dependency:

* :class:`Tracer` — the armed end of the :mod:`repro.instrument.trace`
  span API.  Each span probes the cost model's innermost frame on entry
  and exit (:meth:`CostModel.frame_probe`) and attributes the work/depth
  delta to a node of a *phase tree* keyed by (span name, attrs).  Sibling
  instances of the same phase aggregate, so a 40-batch run produces one
  ``game.drop.phase`` node with ``count=...`` rather than thousands of
  rows.  Every span exit (and every point :func:`~repro.instrument.trace.
  event`) is also emitted to the tracer's sinks — e.g. a JSON-lines file
  (:class:`~repro.instrument.export.JsonlSink`).

* :class:`MetricsRegistry` — named counters, gauges and log-scale
  histograms with optional labels, exposable as Prometheus text
  (:func:`~repro.instrument.export.prometheus_text`).  The module-level
  :data:`REGISTRY` is the process-wide default; per-batch counter deltas
  and recovery-tier outcomes mirror into it (see ``metrics.BatchTimer``
  and ``metrics.RecoveryStats``).

Invariants the tests pin down:

* Tracing never mutates the cost model — work/depth/counters are
  bit-identical with telemetry armed or disarmed.
* At disarm time the tracer's root node holds the exact cost-model delta
  since arming, and at every node ``self_work() + sum(child work)`` equals
  the node's inclusive work — so per-phase work sums to the total.
* The span stack unwinds correctly through exceptions (a guarded rollback
  mid-phase leaves the tracer consistent and re-armable).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..errors import ParameterError
from . import trace as _trace
from . import wallclock as _wallclock
from .work_depth import CostModel

# --------------------------------------------------------------------------
# phase tree
# --------------------------------------------------------------------------

#: Aggregation key of a phase-tree child: (span name, sorted attr items).
NodeKey = tuple[str, tuple[tuple[str, Any], ...]]


@dataclass
class SpanNode:
    """One aggregated phase of the tree (all spans sharing name + attrs)."""

    name: str
    attrs: tuple[tuple[str, Any], ...] = ()
    count: int = 0
    work: int = 0
    depth: int = 0
    wall: float = 0.0
    children: dict[NodeKey, "SpanNode"] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Display label: ``name[k=v, ...]``."""
        if not self.attrs:
            return self.name
        inner = ", ".join(f"{k}={v}" for k, v in self.attrs)
        return f"{self.name}[{inner}]"

    def child(self, name: str, attrs: tuple[tuple[str, Any], ...]) -> "SpanNode":
        """The (created-on-demand) aggregation node for a sub-phase."""
        key: NodeKey = (name, attrs)
        node = self.children.get(key)
        if node is None:
            node = SpanNode(name, attrs)
            self.children[key] = node
        return node

    def self_work(self) -> int:
        """Inclusive work minus the work attributed to sub-phases."""
        return self.work - sum(c.work for c in self.children.values())

    def self_depth(self) -> int:
        """Inclusive depth minus sub-phase depths (may be < 0: parallel
        siblings *max* their depths into the parent, they do not sum)."""
        return self.depth - sum(c.depth for c in self.children.values())

    def walk(self, _prefix: tuple[str, ...] = ()) -> Iterator[tuple[tuple[str, ...], "SpanNode"]]:
        """Yield ``(path, node)`` pairs depth-first (path ends in label)."""
        path = _prefix + (self.label,)
        yield path, self
        for key in sorted(self.children, key=lambda k: (k[0], str(k[1]))):
            yield from self.children[key].walk(path)

    def total_self_work(self) -> int:
        """Sum of ``self_work`` over the whole subtree (== ``self.work``)."""
        return sum(node.self_work() for _path, node in self.walk())

    def find(self, name: str) -> list["SpanNode"]:
        """All descendant nodes (including self) with the given span name."""
        return [node for _path, node in self.walk() if node.name == name]


def merge_span_children(dst: SpanNode, src: SpanNode) -> None:
    """Graft ``src``'s children (recursively) into ``dst``.

    The delta-merge half of the executor protocol
    (:mod:`repro.pram.executor`): a worker process accumulates its own
    phase tree under a private root; the coordinator grafts that root's
    children under the span standing in for the worker's unit, summing
    count/work/depth/wall into same-keyed nodes — exactly the aggregation
    the serial backend would have produced by running the spans inline.
    ``src`` itself (the worker's synthetic ``run`` root) is *not* merged:
    its totals are already accounted by the coordinator's ``charge`` of
    the worker delta.
    """
    for key, child in src.children.items():
        node = dst.child(*key)
        node.count += child.count
        node.work += child.work
        node.depth += child.depth
        node.wall += child.wall
        merge_span_children(node, child)


class _Span:
    """One live (open) span; allocated only while a tracer is armed."""

    __slots__ = ("tracer", "node", "detail", "frame", "work0", "depth0", "t0")

    def __init__(self, tracer: "Tracer", node: SpanNode, detail: Optional[dict]) -> None:
        self.tracer = tracer
        self.node = node
        self.detail = detail

    def __enter__(self) -> SpanNode:
        tracer = self.tracer
        tracer._stack.append(self.node)
        self.frame, self.work0, self.depth0 = tracer.cm.frame_probe()
        self.t0 = tracer.clock()
        return self.node

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.tracer
        wall = tracer.clock() - self.t0
        frame, work1, depth1 = tracer.cm.frame_probe()
        if frame is self.frame:
            work, depth = work1 - self.work0, depth1 - self.depth0
        else:
            # a non-nested exit (should be unreachable through the library's
            # own `finally`-folded regions) — attribute nothing, but record
            # that attribution lost data rather than corrupting the tree.
            work = depth = 0
            tracer.frame_mismatches += 1
        popped = tracer._stack.pop()
        if popped is not self.node:
            tracer.frame_mismatches += 1
        node = self.node
        node.count += 1
        node.work += work
        node.depth += depth
        node.wall += wall
        registry = tracer.registry
        if registry is not None:
            registry.counter("repro_spans_total", span=node.name).inc()
            registry.counter(
                "repro_span_seconds_total", span=node.name
            ).inc(max(0.0, wall))
        if tracer.sinks:
            ev: dict[str, Any] = {
                "type": "span",
                "name": node.name,
                "path": [n.label for n in tracer._stack[1:]] + [node.label],
                "work": work,
                "depth": depth,
                "wall": wall,
                "error": exc_type is not None,
            }
            if node.attrs:
                ev["attrs"] = dict(node.attrs)
            if self.detail:
                ev["detail"] = dict(self.detail)
            tracer._emit(ev)
        return False


class Tracer:
    """Phase-scoped span collector bound to one :class:`CostModel`.

    Arm it with :func:`repro.instrument.trace.tracing`; instrumented code
    reaches it through the module-level ``trace.span`` / ``trace.event``
    functions.  ``strict`` (the default) rejects span names outside the
    registered taxonomy so typos cannot silently fragment attribution.

    ``clock`` defaults to the process-wide mockable monotonic clock
    (:func:`repro.instrument.wallclock.monotonic`) — the *Tracer clock*
    reprolint's REP-O003 routes all wall-clock reads through.  With a
    ``registry`` attached, every span exit also publishes
    ``repro_spans_total{span=}`` / ``repro_span_seconds_total{span=}``,
    which is what the live dashboard's "hottest spans" panel reads.
    Neither wall timing nor publishing ever touches the cost model.
    """

    def __init__(
        self,
        cm: CostModel,
        *,
        strict: bool = True,
        sinks: tuple[Callable[[dict], None], ...] | list = (),
        clock: Callable[[], float] = _wallclock.monotonic,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.cm = cm
        self.strict = strict
        self.sinks: list[Callable[[dict], None]] = list(sinks)
        self.clock = clock
        self.registry = registry
        self.root = SpanNode("run")
        self._stack: list[SpanNode] = [self.root]
        self._base_work = 0
        self._base_depth = 0
        self._t_armed = 0.0
        self._seq = 0
        self.frame_mismatches = 0

    # -- the span/event surface (called through trace.span/trace.event) ----

    def span(self, name: str, detail: Optional[dict] = None, **attrs: Any) -> _Span:
        """Open one phase span; see :func:`repro.instrument.trace.span`."""
        if self.strict and name not in _trace.SPAN_TAXONOMY:
            raise ParameterError(
                f"span name {name!r} is not in the registered taxonomy "
                "(docs/OBSERVABILITY.md); register_span() it or fix the typo"
            )
        parent = self._stack[-1]
        node = parent.child(name, tuple(sorted(attrs.items())))
        return _Span(self, node, detail)

    def event(self, name: str, **fields: Any) -> None:
        """Emit a point event to the sinks (no tree attribution)."""
        ev = {"type": "event", "name": name}
        ev.update(fields)
        self._emit(ev)

    def _emit(self, ev: dict) -> None:
        self._seq += 1
        ev["seq"] = self._seq
        for sink in self.sinks:
            sink(ev)

    # -- arming (driven by trace.tracing) -----------------------------------

    def arm(self) -> None:
        """Baseline the cost model's root totals (call between batches)."""
        self._base_work = self.cm.work
        self._base_depth = self.cm.depth
        self._t_armed = self.clock()

    def disarm(self) -> None:
        """Fold the since-arming cost-model delta into the root node."""
        self.root.count += 1
        self.root.work += self.cm.work - self._base_work
        self.root.depth += self.cm.depth - self._base_depth
        self.root.wall += self.clock() - self._t_armed
        if self._stack[-1] is not self.root:
            # an exception tore down the arming block with spans open; the
            # context managers have already unwound their nodes, so just
            # reset the stack for the next arming.
            self._stack = [self.root]

    @property
    def open_spans(self) -> int:
        """How many spans are currently open (0 between batches)."""
        return len(self._stack) - 1


# --------------------------------------------------------------------------
# metrics registry
# --------------------------------------------------------------------------

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Label items, sorted — the identity of one child within a metric family.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ParameterError(f"bad metric label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ParameterError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the value by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """A log-scale (powers-of-two) histogram of non-negative observations.

    Bucket ``e`` counts observations in ``(2^(e-1), 2^e]`` for any integer
    ``e`` — *negative exponents included*, so sub-second wall-clock
    durations resolve into meaningful buckets (8 ms lands in ``e = -6``)
    instead of collapsing into a single catch-all.  Everything at or
    below ``2^MIN_EXP`` (~1 ns), including exact zeros, lands in the
    ``MIN_EXP`` floor bucket.  The factor-2 resolution over many orders
    of magnitude at O(log range) memory matches the multiplicative
    spreads the paper's bounds talk in.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "count", "sum", "min", "max")

    #: floor exponent: observations <= 2**MIN_EXP share one bucket.
    MIN_EXP = -30

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation (negative values are rejected)."""
        if value < 0:
            raise ParameterError(f"histogram {self.name}: negative value {value}")
        if value <= 2.0**self.MIN_EXP:
            exp = self.MIN_EXP
        else:
            exp = math.ceil(math.log2(value))
            # float rounding near exact powers of two: keep the invariant
            # value <= 2**exp with the smallest such exp.
            while 2.0**exp < value:
                exp += 1
            while exp > self.MIN_EXP and 2.0 ** (exp - 1) >= value:
                exp -= 1
        self.buckets[exp] = self.buckets.get(exp, 0) + 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def percentile(self, q: float) -> float:
        """Upper bucket bound below which >= q% of observations fall."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * q / 100.0)
        seen = 0
        for exp in sorted(self.buckets):
            seen += self.buckets[exp]
            if seen >= target:
                return 2.0**exp
        return 2.0 ** max(self.buckets)


class MetricsRegistry:
    """Process-wide home for counters, gauges, and histograms.

    Metrics are identified by (name, labels); asking again returns the
    same instrument, asking with a different kind raises.  ``clear()``
    resets the registry (tests, and the CLI between runs).
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric family (idempotent)."""
        if not _NAME_RE.match(name):
            raise ParameterError(f"bad metric name {name!r}")
        self._help[name] = help_text

    def help_of(self, name: str) -> Optional[str]:
        """The registered help text of ``name`` (None if never described)."""
        return self._help.get(name)

    def _get(self, kind: str, name: str, labels: dict[str, Any]):
        if not _NAME_RE.match(name):
            raise ParameterError(f"bad metric name {name!r}")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ParameterError(
                f"metric {name!r} already registered as a {known}, not a {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._KINDS[kind](name, key[1])
            self._metrics[key] = metric
            self._kinds[name] = kind
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for (name, labels), created on first use."""
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        return self._get("histogram", name, labels)

    def collect(self) -> list[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def kind_of(self, name: str) -> Optional[str]:
        """The registered kind of ``name`` (None if never used)."""
        return self._kinds.get(name)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dump: name -> list of {labels, kind, value...}."""
        out: dict[str, Any] = {}
        for metric in self.collect():
            entry: dict[str, Any] = {
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if metric.kind == "histogram":
                entry.update(
                    count=metric.count,
                    sum=metric.sum,
                    buckets={str(e): c for e, c in sorted(metric.buckets.items())},
                )
            else:
                entry["value"] = metric.value
            out.setdefault(metric.name, []).append(entry)
        return out

    def clear(self) -> None:
        """Drop every instrument (a fresh process-wide slate)."""
        self._metrics.clear()
        self._kinds.clear()
        self._help.clear()


#: The process-wide default registry (the CLI and the batch timer publish
#: here; tests that need isolation construct their own or ``clear()`` it).
REGISTRY = MetricsRegistry()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SpanNode",
    "Tracer",
    "merge_span_children",
]
