"""The thin span API — the telemetry layer's hot-path entry point.

Mirrors the design of :mod:`repro.resilience.faults`: while no tracer is
armed, every instrumented site costs one module-global read (``ACTIVE is
None``) plus a call returning the shared :data:`NULL` span — no
allocation, no cost-model interaction.  Arming a
:class:`~repro.instrument.telemetry.Tracer` (via :func:`tracing`) turns
the same sites into nestable spans that snapshot the cost model's
innermost frame on entry/exit and attribute the work/depth delta to a
phase tree.

Span names come from the registered :data:`SPAN_TAXONOMY` — the
game → round → rung vocabulary of docs/OBSERVABILITY.md.  A typo'd name
would silently fragment attribution, so armed tracers reject unknown
names at runtime and reprolint's REP-O rules reject them statically in
``src/repro/core/``.

Spans never touch the :class:`~repro.instrument.work_depth.CostModel`
(they only *read* it), so work/depth counters are bit-identical whether
telemetry is armed or not — a property the test suite asserts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from ..errors import ParameterError

#: Registered span names (name -> one-line description).  The taxonomy is
#: hierarchical by dotted prefix: ``game.drop.phase`` is a round inside a
#: ``game.drop`` game inside whatever batch/rung span encloses it.
SPAN_TAXONOMY: dict[str, str] = {
    "run": "whole replay/profiling session (the implicit tracer root)",
    "batch": "one trace batch applied to every maintained structure",
    "structure": "one structure's share of a batch (attr: structure=name)",
    "ladder.rung": "one fixed-H rung of the (1+eps)^i ladder (attr: H)",
    "balanced.insert": "BalancedOrientation insert path (bundles + games)",
    "balanced.delete": "BalancedOrientation delete path (frees + games)",
    "balanced.free": "free insertions/deletions at saturated endpoints",
    "bundles.extract": "ExtractTokenBundle proposal round (Lemma 4.16)",
    "bundles.partition": "deletion-token partitioning (Definition 4.17)",
    "game.drop": "one token-dropping game (Section 4.2.1)",
    "game.drop.phase": "one token-dropping phase (scan/propose/flip)",
    "game.drop.settle": "insert settlement (resting tokens become levels)",
    "game.push": "one token-pushing game (Section 4.3.1)",
    "game.push.phase": "one token-pushing phase (labels + all rounds)",
    "game.push.ranks": "rank rounds i = 1..H of a pushing phase",
    "game.push.truncated": "truncated-rank H+1 round (transparent tokens)",
    "game.push.settle": "delete settlement (absorbed tokens decrement)",
    "pram.map": "executor sweep over independent structures (attr: backend)",
    "recovery.apply": "RecoveryManager.apply of one batch",
    "verify.diff": "one differential replay across the config panel",
    "verify.config": "one config's share of a differential batch (attr: config)",
    "verify.audit": "deep exact-oracle audit of coreness/density bands",
    "verify.minimize": "ddmin shrinking of a failing stream",
    "scenario.stream": "drain of one adversarial scenario stream (attr: scenario)",
    "scenario.soak": "chaos/diff soak of one scenario (attr: scenario)",
    "scenario.spill": "out-of-core spill of a scenario stream to a tracefile",
}


def register_span(name: str, description: str) -> None:
    """Add a span name to the taxonomy (idempotent; tooling/extensions)."""
    if not name or not all(part for part in name.split(".")):
        raise ParameterError(f"malformed span name {name!r}")
    SPAN_TAXONOMY.setdefault(name, description)


class NullSpan:
    """The disarmed span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


#: The shared no-op span returned by :func:`span` while disarmed.
NULL = NullSpan()

#: The armed tracer, or None.  Hot paths pay exactly this global read.
ACTIVE: Optional[Any] = None


def span(name: str, detail: Optional[dict] = None, **attrs: Any):
    """Open a phase span (a context manager) on the armed tracer.

    ``attrs`` become part of the phase-tree aggregation key (use them for
    low-cardinality dimensions like a rung height); ``detail`` is carried
    on the emitted event only (use it for per-instance values like a
    batch index that must not fragment the tree).
    """
    tracer = ACTIVE
    if tracer is None:
        return NULL
    return tracer.span(name, detail=detail, **attrs)


def event(name: str, **fields: Any) -> None:
    """Emit a point event (no duration) to the armed tracer's sinks."""
    tracer = ACTIVE
    if tracer is not None:
        tracer.event(name, **fields)


@contextmanager
def tracing(tracer: Any) -> Iterator[Any]:
    """Arm ``tracer`` for the duration of the block (re-entrant safe).

    Arm between batches only: the tracer baselines the cost model's root
    totals on entry, and the exactness of the phase-tree sum relies on no
    parallel region being open at arm/disarm time.
    """
    global ACTIVE
    previous = ACTIVE
    tracer.arm()
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous
        tracer.disarm()


__all__ = [
    "ACTIVE",
    "NULL",
    "NullSpan",
    "SPAN_TAXONOMY",
    "event",
    "register_span",
    "span",
    "tracing",
]
