"""The Tracer clock and the executor wall-clock overhead ledger.

Work/depth units answer "where did the *model* cost go?"; this module
answers the sibling question the ROADMAP's perf items hinge on — "where
did the *seconds* go?" — in two pieces:

* **The process-wide monotonic clock.**  Every wall-clock read in the
  repo routes through :func:`monotonic` (reprolint's REP-O003 enforces
  this outside ``instrument/``), so tests can swap in a
  :class:`FakeClock` and replay-deterministic harnesses can freeze time
  without monkeypatching ``time`` itself.  On Linux the underlying
  ``CLOCK_MONOTONIC`` is system-wide, which is what lets worker
  processes stamp queue latencies against coordinator submit times.

* **The executor overhead ledger.**  :class:`ExecutorStats` aggregates
  one :class:`RoundWall` per ``run_structures`` sweep (and one
  :class:`TaskWall` per rung task) into per-rung and whole-run totals:
  serialized payload bytes, coordinator pickle time, submit→start queue
  latency, worker compute, worker idle, and coordinator merge time.
  :meth:`ExecutorStats.render` is the ``repro profile --overhead``
  report; :meth:`ExecutorStats.dominant` names the dominant cost (the
  "73% of process-backend wall-clock is task pickling" line), and
  :meth:`ExecutorStats.coverage` is the accounting honesty check — the
  named components must explain >= 90% of the measured executor
  wall-clock or the attribution is lying by omission.

Nothing here ever touches a :class:`~repro.instrument.work_depth.
CostModel`: wall-clock observability must not perturb the answer-bearing
accounting (``repro profile --check`` stays green with all of this
armed).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

#: The swappable process-wide clock (seconds, monotonic, float).
_CLOCK: Callable[[], float] = time.monotonic


def monotonic() -> float:
    """Seconds on the process-wide monotonic clock (mockable)."""
    return _CLOCK()


def set_clock(clock: Callable[[], float]) -> Callable[[], float]:
    """Install ``clock`` as the process-wide clock; returns the previous."""
    global _CLOCK
    previous = _CLOCK
    _CLOCK = clock
    return previous


@contextmanager
def mocked_clock(clock: Callable[[], float]) -> Iterator[Callable[[], float]]:
    """Swap the process-wide clock for the duration of the block."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


class FakeClock:
    """A deterministic clock for tests: advances only when told to.

    ``step`` adds a fixed increment per read (so consecutive reads are
    strictly ordered without explicit advances); :meth:`advance` models
    elapsed time.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = start
        self.step = step
        self.reads = 0

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        self.reads += 1
        return value

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        self.now += seconds


# --------------------------------------------------------------------------
# executor overhead ledger
# --------------------------------------------------------------------------


@dataclass
class TaskWall:
    """Wall-clock observables of one rung task's round trip.

    ``label`` is the task's telemetry identity (``ladder.rung[H=3]``, or
    ``(unspanned)`` for the density guard's historically span-less
    bucket sweep).  Byte counts are the pickled structure sizes in each
    direction; the ``*_s`` fields are seconds on :func:`monotonic`.
    """

    label: str
    payload_bytes: int = 0
    result_bytes: int = 0
    serialize_s: float = 0.0  # coordinator: dump_structure
    deserialize_s: float = 0.0  # coordinator: load_structure
    queue_s: float = 0.0  # submit -> worker pickup latency
    compute_s: float = 0.0  # worker: the method itself
    worker_pickle_s: float = 0.0  # worker: load + dump


@dataclass
class RoundWall:
    """Wall-clock observables of one ``run_structures`` sweep.

    The coordinator timeline is contiguous — ``serialize_s`` (dump all
    payloads), ``wait_s`` (blocked collecting worker results),
    ``deserialize_s`` + ``merge_s`` (splice the deltas back) — so those
    four segments sum to ~``wall_s`` by construction.  The worker-side
    fields inside :attr:`tasks` decompose ``wait_s`` into queue latency,
    compute, and (derived) idle.
    """

    backend: str
    workers: int
    wall_s: float
    serialize_s: float = 0.0
    wait_s: float = 0.0
    deserialize_s: float = 0.0
    merge_s: float = 0.0
    tasks: list[TaskWall] = field(default_factory=list)

    def busy_s(self) -> float:
        """Worker-side busy seconds (compute + worker pickling)."""
        return sum(t.compute_s + t.worker_pickle_s for t in self.tasks)

    def idle_s(self) -> float:
        """Worker seconds paid for but not computing (derived, >= 0)."""
        lanes = min(self.workers, len(self.tasks)) or 1
        return max(0.0, lanes * self.wait_s - self.busy_s())


#: component key -> the human phrasing `dominant()` uses.  Components are
#: *wall-equivalent* seconds: worker-side quantities are divided by the
#: round's lane count (min(workers, tasks)) so overlapping lanes do not
#: multiply into the share, and "queue" is the coordinator wait the
#: workers cannot account as busy — submit→start queue latency, pool
#: dispatch/IPC, and straggler idle.
COMPONENT_PHRASES: dict[str, str] = {
    "pickle": "task pickling",
    "queue": "queue/dispatch wait",
    "compute": "worker compute",
    "merge": "coordinator merge",
}


class ExecutorStats:
    """Aggregated executor overhead: per-rung rows plus run totals.

    One instance lives on each executor (``executor.stats``); every
    ``run_structures`` call records one round.  Aggregation happens at
    record time — per-label sums plus whole-run totals — so a long run
    holds O(#rungs) state, not O(#rounds).
    """

    _TOTAL_KEYS = (
        "wall_s",
        "serialize_s",
        "wait_s",
        "deserialize_s",
        "merge_s",
        "idle_s",
        "queue_s",
        "compute_s",
        "worker_pickle_s",
        "payload_bytes",
        "result_bytes",
        # wall-equivalent (per-lane) worker components + the unexplained
        # wait — what components()/coverage()/dominant() report.
        "compute_norm_s",
        "worker_pickle_norm_s",
        "queue_wall_s",
    )

    def __init__(self, backend: str = "serial") -> None:
        self.backend = backend
        self.rounds = 0
        self.task_count = 0
        self.totals: dict[str, float] = {k: 0.0 for k in self._TOTAL_KEYS}
        self.labels: dict[str, dict[str, float]] = {}

    # -- recording -----------------------------------------------------------

    def record_round(self, rnd: RoundWall, registry=None) -> None:
        """Fold one round into the aggregates (and ``registry``, if given)."""
        self.rounds += 1
        self.task_count += len(rnd.tasks)
        t = self.totals
        t["wall_s"] += rnd.wall_s
        t["serialize_s"] += rnd.serialize_s
        t["wait_s"] += rnd.wait_s
        t["deserialize_s"] += rnd.deserialize_s
        t["merge_s"] += rnd.merge_s
        t["idle_s"] += rnd.idle_s()
        lanes = min(rnd.workers, len(rnd.tasks)) or 1
        round_compute = sum(task.compute_s for task in rnd.tasks)
        round_wpickle = sum(task.worker_pickle_s for task in rnd.tasks)
        t["compute_norm_s"] += round_compute / lanes
        t["worker_pickle_norm_s"] += round_wpickle / lanes
        if rnd.wait_s > 0:
            t["queue_wall_s"] += max(
                0.0, rnd.wait_s - (round_compute + round_wpickle) / lanes
            )
        for task in rnd.tasks:
            t["queue_s"] += task.queue_s
            t["compute_s"] += task.compute_s
            t["worker_pickle_s"] += task.worker_pickle_s
            t["payload_bytes"] += task.payload_bytes
            t["result_bytes"] += task.result_bytes
            row = self.labels.setdefault(
                task.label,
                {
                    "tasks": 0.0,
                    "payload_bytes": 0.0,
                    "result_bytes": 0.0,
                    "pickle_s": 0.0,
                    "queue_s": 0.0,
                    "compute_s": 0.0,
                    "wall_s": 0.0,
                },
            )
            row["tasks"] += 1
            row["payload_bytes"] += task.payload_bytes
            row["result_bytes"] += task.result_bytes
            row["pickle_s"] += (
                task.serialize_s + task.deserialize_s + task.worker_pickle_s
            )
            row["queue_s"] += task.queue_s
            row["compute_s"] += task.compute_s
            # the task's wall-equivalent footprint: coordinator pickling
            # is real wall, worker-side busy time is shared across lanes.
            row["wall_s"] += (
                task.serialize_s
                + task.deserialize_s
                + (task.compute_s + task.worker_pickle_s) / lanes
            )
        if registry is not None:
            self._publish(rnd, registry)

    def _publish(self, rnd: RoundWall, registry) -> None:
        """Mirror one round into a MetricsRegistry as ``repro_executor_*``."""
        b = self.backend
        registry.counter("repro_executor_rounds_total", backend=b).inc()
        registry.counter("repro_executor_tasks_total", backend=b).inc(len(rnd.tasks))
        registry.counter(
            "repro_executor_serialize_seconds_total", backend=b
        ).inc(max(0.0, rnd.serialize_s))
        registry.counter(
            "repro_executor_wait_seconds_total", backend=b
        ).inc(max(0.0, rnd.wait_s))
        registry.counter(
            "repro_executor_deserialize_seconds_total", backend=b
        ).inc(max(0.0, rnd.deserialize_s))
        registry.counter(
            "repro_executor_merge_seconds_total", backend=b
        ).inc(max(0.0, rnd.merge_s))
        registry.counter(
            "repro_executor_idle_seconds_total", backend=b
        ).inc(max(0.0, rnd.idle_s()))
        for task in rnd.tasks:
            registry.counter(
                "repro_executor_payload_bytes_total", backend=b
            ).inc(task.payload_bytes)
            registry.counter(
                "repro_executor_result_bytes_total", backend=b
            ).inc(task.result_bytes)
            registry.counter(
                "repro_executor_queue_wait_seconds_total", backend=b
            ).inc(max(0.0, task.queue_s))
            registry.counter(
                "repro_executor_compute_seconds_total", backend=b
            ).inc(max(0.0, task.compute_s))
            registry.counter(
                "repro_executor_worker_pickle_seconds_total", backend=b
            ).inc(max(0.0, task.worker_pickle_s))
        registry.histogram(
            "repro_executor_round_wall_seconds", backend=b
        ).observe(max(0.0, rnd.wall_s))

    # -- reading -------------------------------------------------------------

    def components(self) -> dict[str, float]:
        """The named cost components, in *wall-equivalent* seconds.

        ``pickle`` folds the coordinator dump/load (real wall segments)
        with the worker-side round trip divided by the lane count —
        every second spent turning structures into bytes and back,
        expressed as its contribution to the coordinator's wall.
        ``compute`` is per-lane worker compute; ``queue`` is the
        coordinator's measured wait minus what the workers account as
        busy (submit→start queue latency, dispatch/IPC, straggler idle).
        """
        t = self.totals
        return {
            "pickle": (
                t["serialize_s"] + t["deserialize_s"] + t["worker_pickle_norm_s"]
            ),
            "queue": t["queue_wall_s"],
            "compute": t["compute_norm_s"],
            "merge": t["merge_s"],
        }

    def coverage(self) -> float:
        """(pickle + queue-wait + compute + merge) / measured wall-clock.

        The accounting honesty metric: the named components must explain
        the executor's wall-clock (>= 0.9 is the acceptance gate).  The
        components come from *independent* measurements — worker-process
        clocks vs the coordinator's timeline — so drift, unattributed
        coordinator work, or clock skew shows up as a shortfall instead
        of being defined away.  Returns 1.0 for an empty ledger.
        """
        wall = self.totals["wall_s"]
        if wall <= 0:
            return 1.0
        c = self.components()
        return (c["pickle"] + c["queue"] + c["compute"] + c["merge"]) / wall

    def dominant(self) -> tuple[str, float]:
        """The dominant cost component and its share of executor wall.

        Returns ``(phrase, share)`` — e.g. ``("task pickling", 0.73)``.
        """
        wall = self.totals["wall_s"] or 1.0
        comps = self.components()
        key = max(comps, key=lambda k: comps[k])
        return COMPONENT_PHRASES[key], comps[key] / wall

    def render(self) -> str:
        """The ``repro profile --overhead`` report (fixed-width text)."""
        from .metrics import render_table  # local: avoid an import cycle

        t = self.totals
        wall = t["wall_s"] or 1.0
        rows = []
        for label in sorted(self.labels):
            row = self.labels[label]
            rows.append(
                [
                    label,
                    int(row["tasks"]),
                    f"{row['payload_bytes'] / 1024.0:.1f}",
                    f"{row['result_bytes'] / 1024.0:.1f}",
                    f"{row['pickle_s']:.3f}",
                    f"{row['queue_s'] / (row['tasks'] or 1.0):.3f}",
                    f"{row['compute_s']:.3f}",
                    f"{100.0 * row['wall_s'] / wall:.1f}%",
                ]
            )
        table = render_table(
            ["rung", "tasks", "payload KiB", "result KiB",
             "pickle s", "avg queue s", "compute s", "share of wall"],
            rows,
        )
        timeline = render_table(
            ["rounds", "wall s", "serialize s", "dispatch wait s",
             "deserialize s", "merge s", "worker idle s"],
            [[
                self.rounds,
                f"{t['wall_s']:.3f}",
                f"{t['serialize_s']:.3f}",
                f"{t['wait_s']:.3f}",
                f"{t['deserialize_s']:.3f}",
                f"{t['merge_s']:.3f}",
                f"{t['idle_s']:.3f}",
            ]],
        )
        phrase, share = self.dominant()
        lines = [
            f"executor overhead ({self.backend} backend, "
            f"{self.task_count} tasks over {self.rounds} rounds)",
            "",
            table,
            "",
            "coordinator timeline:",
            timeline,
            "",
            f"dominant cost: {100.0 * share:.0f}% of {self.backend}-backend "
            f"wall-clock is {phrase}",
            f"attribution coverage: pickle + queue-wait + compute + merge "
            f"explain {100.0 * self.coverage():.0f}% of measured executor "
            f"wall-clock",
        ]
        return "\n".join(lines)


__all__ = [
    "COMPONENT_PHRASES",
    "ExecutorStats",
    "FakeClock",
    "RoundWall",
    "TaskWall",
    "mocked_clock",
    "monotonic",
    "set_clock",
]
