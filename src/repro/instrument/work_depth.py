"""Work/depth cost accounting — the simulated CRCW PRAM.

The paper analyses its algorithms in the work-depth model [Ble96]: *work* is
the total number of primitive operations, *depth* is the longest chain of
sequentially dependent operations.  This module provides a :class:`CostModel`
that every algorithm in the library threads its operations through, so that
each batch update reports exactly the two quantities the paper's theorems
bound.

The accounting rules (see DESIGN.md §6):

* ``tick(w)`` — ``w`` sequential primitive operations: adds ``w`` to both
  work and depth.
* ``charge(work=w, depth=d)`` — an analytic charge for a sub-structure whose
  bounds are known (e.g. a batch BST operation at O(log n) work per element
  and O(log n) depth, matching [PP01]).
* ``parallel()`` — a parallel region.  Branches opened inside it contribute
  the *sum* of their work but only the *maximum* of their depths, exactly
  like a PRAM ``pardo``.

Regions nest arbitrarily, so a loop of phases (depth adds) each performing a
parallel sweep over vertices (depth maxes) is expressed naturally::

    for phase in range(num_phases):          # sequential phases
        with cm.parallel() as region:        # one phase
            for v in frontier:
                with region.branch():
                    cm.tick()                # per-vertex constant work

Every structure also bumps named :attr:`counters` (phases, flips, proposals,
bundle rounds, ...) which the benchmarks report against the paper's lemma
bounds.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TypeVar

T = TypeVar("T")
U = TypeVar("U")


@dataclass
class Snapshot:
    """An immutable (work, depth) point; subtract two to get a delta."""

    work: int
    depth: int

    def __sub__(self, other: "Snapshot") -> "Snapshot":
        return Snapshot(self.work - other.work, self.depth - other.depth)


class _Frame:
    """One accounting frame: a plain sequential context."""

    __slots__ = ("work", "depth")

    def __init__(self) -> None:
        self.work = 0
        self.depth = 0


class _ParallelFrame:
    """Accumulates branches: work sums, depth maxes."""

    __slots__ = ("work_sum", "depth_max")

    def __init__(self) -> None:
        self.work_sum = 0
        self.depth_max = 0


class CostModel:
    """Work/depth accumulator with nested parallel regions.

    The model is deliberately tiny and allocation-light: the token games call
    :meth:`tick` millions of times in the larger benchmarks.
    """

    def __init__(self) -> None:
        self._stack: list[_Frame] = [_Frame()]
        self.counters: dict[str, int] = {}

    # -- primitive charges -------------------------------------------------

    def tick(self, w: int = 1) -> None:
        """``w`` sequential primitive operations."""
        top = self._stack[-1]
        top.work += w
        top.depth += w

    def charge(self, work: int = 0, depth: int = 0) -> None:
        """An analytic charge: ``work`` units of work, ``depth`` of depth.

        Used when a sub-structure's cost is charged at the granularity the
        paper charges it (e.g. Lemma 4.3: reversing ``k`` edges costs
        ``O(k H log n)`` work and ``O(H log n)`` depth).
        """
        top = self._stack[-1]
        top.work += work
        top.depth += depth

    def count(self, name: str, inc: int = 1) -> None:
        """Bump a named event counter (phases, flips, proposals, ...)."""
        self.counters[name] = self.counters.get(name, 0) + inc

    # -- parallel structure ------------------------------------------------

    def parallel(self) -> "_ParallelCtx":
        """Open a parallel region; close it to fold branches into the parent.

        Work of the region = sum of branch works; depth = max of branch
        depths.  Ticks issued directly inside the region (outside any
        branch) are treated as sequential region overhead.

        Returns a plain-class context manager (not a ``@contextmanager``
        generator): the token games open millions of regions/branches per
        run and the generator protocol's two ``next()`` trampolines per
        ``with`` block dominated their wall-clock.  The accounting fold is
        unchanged.
        """
        return _ParallelCtx(self)

    def pfor(self, items: Iterable[T], fn: Callable[[T], U]) -> list[U]:
        """Apply ``fn`` to every item as parallel branches; return results.

        Semantically a PRAM ``parallel for``: work is the sum over items,
        depth the max.  Execution is sequential (see DESIGN.md §2, item 1).
        """
        out: list[U] = []
        with self.parallel() as region:
            for item in items:
                with region.branch():
                    # one slot per item, in the caller's item order — the
                    # gather is ordered by construction, not by arrival.
                    out.append(fn(item))  # reprolint: disable=REP-R003
        return out

    # -- reading results ---------------------------------------------------

    @property
    def work(self) -> int:
        return self._stack[0].work

    @property
    def depth(self) -> int:
        return self._stack[0].depth

    def frame_probe(self) -> tuple[object, int, int]:
        """Identity and running (work, depth) of the innermost open frame.

        The telemetry layer's read-only hook: a span records the probe on
        entry and subtracts it from a probe on exit.  Because parallel
        regions and branches fold into their parent frame in ``finally``
        blocks, a well-nested span sees the *same* frame object at both
        ends — even when the traced block opened (and fully closed)
        parallel regions, and even when it unwound through an exception —
        so the delta is exactly the work/depth enclosed by the span.
        """
        top = self._stack[-1]
        return top, top.work, top.depth

    def snapshot(self) -> Snapshot:
        """Current totals at the *root* frame.

        Only meaningful between operations (i.e. when no parallel region is
        open); the structures take snapshots at batch boundaries.
        """
        if len(self._stack) != 1:
            raise RuntimeError("snapshot() inside an open parallel region")
        return Snapshot(self.work, self.depth)

    @contextmanager
    def measure(self) -> Iterator[Snapshot]:
        """Yield a Snapshot that is filled with the delta on exit."""
        before = self.snapshot()
        delta = Snapshot(0, 0)
        yield delta
        after = self.snapshot()
        diff = after - before
        delta.work = diff.work
        delta.depth = diff.depth

    def reset(self) -> None:
        self._stack = [_Frame()]
        self.counters = {}


class _ParallelCtx:
    """``with cm.parallel() as region`` — enter pushes the overhead frame,
    exit folds branch sums/maxes into the parent (exception-safe, same as
    the former ``finally`` block)."""

    __slots__ = ("_cm", "_region", "_overhead")

    def __init__(self, cm: CostModel) -> None:
        self._cm = cm

    def __enter__(self) -> "ParallelRegion":
        self._region = region = ParallelRegion(self._cm)
        self._overhead = overhead = _Frame()
        self._cm._stack.append(overhead)
        return region

    def __exit__(self, *exc: object) -> bool:
        stack = self._cm._stack
        stack.pop()
        parent = stack[-1]
        pf = self._region._pf
        overhead = self._overhead
        parent.work += overhead.work + pf.work_sum
        parent.depth += overhead.depth + pf.depth_max
        return False


class ParallelRegion:
    """Handle yielded by :meth:`CostModel.parallel`."""

    __slots__ = ("_cm", "_pf")

    def __init__(self, cm: CostModel) -> None:
        self._cm = cm
        self._pf = _ParallelFrame()

    def branch(self) -> "_Branch":
        """One parallel branch; its work sums, its depth maxes."""
        return _Branch(self)


class _Branch:
    """One ``with region.branch():`` block — a fresh frame on the stack,
    folded into the region's (sum, max) accumulators on exit."""

    __slots__ = ("_region", "_frame")

    def __init__(self, region: ParallelRegion) -> None:
        self._region = region

    def __enter__(self) -> None:
        self._frame = frame = _Frame()
        self._region._cm._stack.append(frame)
        return None

    def __exit__(self, *exc: object) -> bool:
        region = self._region
        region._cm._stack.pop()
        frame = self._frame
        pf = region._pf
        pf.work_sum += frame.work
        if frame.depth > pf.depth_max:
            pf.depth_max = frame.depth
        return False


class NullCostModel(CostModel):
    """A cost model that ignores everything — for pure wall-clock runs.

    Keeps the exact same API so algorithms need no branches; ``pfor`` still
    executes the function.
    """

    def tick(self, w: int = 1) -> None:  # noqa: D102
        pass

    def charge(self, work: int = 0, depth: int = 0) -> None:  # noqa: D102
        pass

    def count(self, name: str, inc: int = 1) -> None:  # noqa: D102
        pass
