"""Batch-parallel ordered sets (the [PP01] red-black tree substitute)."""

from .batch_set import BatchOrderedSet
from .treap import Treap

__all__ = ["BatchOrderedSet", "Treap"]
