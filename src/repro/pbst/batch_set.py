"""Batch ordered set — the [PP01] parallel red-black tree substitute.

Presents the batch interface the paper's Section 2.2 relies on: batch
insertion and batch deletion at ``O(log n)`` *charged* work per element and
``O(log n)`` *charged* depth per batch, plus rank/select/membership queries
at ``O(log n)`` work and depth each.  Cost charges flow through an optional
:class:`~repro.instrument.work_depth.CostModel`; the sequential engine is
the treap in :mod:`repro.pbst.treap`.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Optional

from ..instrument.work_depth import CostModel
from ..resilience import faults as _faults
from .treap import Treap


def _log2ceil(n: int) -> int:
    """``ceil(log2(n))`` clamped to at least 1 — the unit BST charge."""
    return max(1, int(math.ceil(math.log2(max(n, 2)))))


class BatchOrderedSet:
    """An ordered set with batch updates and PRAM-style cost accounting."""

    __slots__ = ("_treap", "_cm")

    def __init__(self, cm: Optional[CostModel] = None, items: Iterable[Any] = ()) -> None:
        self._treap = Treap()
        self._cm = cm
        initial = list(items)
        if initial:
            self.batch_insert(initial)

    # -- batch operations (one [PP01] round each) -----------------------------

    def batch_insert(self, keys: Iterable[Any]) -> int:
        """Insert a batch; returns the number of keys actually added.

        Charged ``O(log n)`` work per element and ``O(log n)`` depth for the
        whole batch, matching [PP01] in CRCW PRAM.
        """
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("pbst.batch_insert", self)
        keys = list(keys)
        added = 0
        for key in keys:
            if self._treap.insert(key):
                added += 1
        self._charge_batch(len(keys))
        return added

    def batch_delete(self, keys: Iterable[Any]) -> int:
        """Delete a batch; returns the number of keys actually removed."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.fire("pbst.batch_delete", self)
        keys = list(keys)
        removed = 0
        for key in keys:
            if self._treap.delete(key):
                removed += 1
        self._charge_batch(len(keys))
        return removed

    def _charge_batch(self, k: int) -> None:
        if self._cm is not None and k:
            unit = _log2ceil(len(self._treap) + k)
            self._cm.charge(work=k * unit, depth=unit)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, key: Any) -> bool:
        self._charge_query()
        return key in self._treap

    def rank(self, key: Any) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        self._charge_query()
        return self._treap.rank(key)

    def select(self, index: int) -> Any:
        """The ``index``-th smallest stored key (0-based)."""
        self._charge_query()
        return self._treap.select(index)

    def min(self) -> Any:
        self._charge_query()
        return self._treap.min()

    def max(self) -> Any:
        self._charge_query()
        return self._treap.max()

    def _charge_query(self) -> None:
        if self._cm is not None:
            unit = _log2ceil(len(self._treap))
            self._cm.charge(work=unit, depth=unit)

    # -- free traversal (used by tests/verification, not charged) --------------

    def __len__(self) -> int:
        return len(self._treap)

    def __bool__(self) -> bool:
        return bool(self._treap)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._treap)

    def to_list(self) -> list[Any]:
        return list(self._treap)

    def check(self) -> None:
        self._treap.check()
