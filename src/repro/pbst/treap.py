"""A size-augmented treap: the sequential engine under the batch BST.

The paper maintains every ordered set in the parallel red-black tree of
Park & Park [PP01], which supports batch insert/delete at ``O(log n)`` work
per element and ``O(log n)`` depth.  Our substitute (DESIGN.md §2 item 2)
keeps identical *set semantics* and identical *charged costs*; underneath it
is a classic join-based treap with deterministic hash-derived priorities so
runs are reproducible without threading RNG state everywhere.

Supported in ``O(log n)`` real time each: insert, delete, membership, rank
(number of keys strictly below), select (k-th smallest), min/max, and
in-order iteration in ``O(n)``.  These are exactly the operations the
orientation structure of Section 4.1 needs (edge *ranks* — Definition 4.2 —
are treap ranks; the deletion game's "edge with rank i" lookups are treap
selects).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


def _priority(key: Any) -> int:
    """Deterministic pseudo-random priority (splitmix64 over ``hash(key)``)."""
    z = (hash(key) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class _Node:
    __slots__ = ("key", "prio", "size", "left", "right")

    def __init__(self, key: Any) -> None:
        self.key = key
        self.prio = _priority(key)
        self.size = 1
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _pull(node: _Node) -> _Node:
    node.size = 1 + _size(node.left) + _size(node.right)
    return node


def _split(node: Optional[_Node], key: Any) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split into (< key, >= key)."""
    if node is None:
        return None, None
    if node.key < key:
        lo, hi = _split(node.right, key)
        node.right = lo
        return _pull(node), hi
    lo, hi = _split(node.left, key)
    node.left = hi
    return lo, _pull(node)


def _join(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    """Join assuming every key in ``left`` < every key in ``right``."""
    if left is None:
        return right
    if right is None:
        return left
    if left.prio > right.prio:
        left.right = _join(left.right, right)
        return _pull(left)
    right.left = _join(left, right.left)
    return _pull(right)


class Treap:
    """An ordered set of mutually comparable keys."""

    __slots__ = ("_root",)

    def __init__(self) -> None:
        self._root: Optional[_Node] = None

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    def insert(self, key: Any) -> bool:
        """Insert ``key``; returns False if it was already present."""
        if key in self:
            return False
        lo, hi = _split(self._root, key)
        self._root = _join(_join(lo, _Node(key)), hi)
        return True

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if it was absent."""
        lo, rest = _split(self._root, key)
        mid, hi = _split_first(rest, key)
        self._root = _join(lo, hi)
        return mid is not None

    def rank(self, key: Any) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        node, r = self._root, 0
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                r += 1 + _size(node.left)
                node = node.right
            else:
                return r + _size(node.left)
        return r

    def select(self, index: int) -> Any:
        """The ``index``-th smallest key (0-based)."""
        if not (0 <= index < len(self)):
            raise IndexError(f"select({index}) on treap of size {len(self)}")
        node = self._root
        while node is not None:
            ls = _size(node.left)
            if index < ls:
                node = node.left
            elif index == ls:
                return node.key
            else:
                index -= ls + 1
                node = node.right
        raise AssertionError("unreachable: size bookkeeping broken")

    def min(self) -> Any:
        if self._root is None:
            raise KeyError("min() of empty treap")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max(self) -> Any:
        if self._root is None:
            raise KeyError("max() of empty treap")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    def __iter__(self) -> Iterator[Any]:
        # Explicit stack: recursion would overflow on adversarial priorities.
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    # -- verification --------------------------------------------------------

    def check(self) -> None:
        """Verify heap order, key order, and size augmentation (for tests)."""
        def rec(node: Optional[_Node]) -> tuple[int, Any, Any]:
            if node is None:
                return 0, None, None
            ln, lmin, lmax = rec(node.left)
            rn, rmin, rmax = rec(node.right)
            if node.left is not None and (node.left.prio > node.prio or lmax >= node.key):
                raise AssertionError("treap order violated (left)")
            if node.right is not None and (node.right.prio > node.prio or rmin <= node.key):
                raise AssertionError("treap order violated (right)")
            if node.size != ln + rn + 1:
                raise AssertionError("treap size augmentation broken")
            return (
                node.size,
                lmin if lmin is not None else node.key,
                rmax if rmax is not None else node.key,
            )

        rec(self._root)


def _split_first(node: Optional[_Node], key: Any) -> tuple[Optional[_Node], Optional[_Node]]:
    """Split ``node`` (all keys >= key) into (the key node or None, > key)."""
    if node is None:
        return None, None
    # node holds keys >= key; peel the == key element if present.
    lo, hi = _split(node, _JustAbove(key))
    # lo holds keys < just-above(key), i.e. == key (at most one).
    return lo, hi


class _JustAbove:
    """Sentinel comparing as strictly greater than ``key`` and less than
    everything above it — lets ``_split`` isolate an exact key."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: Any) -> bool:  # self < other  <=>  key < other
        return self.key < other

    def __gt__(self, other: Any) -> bool:
        return not (self.key < other)  # self > other <=> other <= key


# ``_split`` compares ``node.key < key`` (node under sentinel iff
# node.key < JustAbove(k) iff node.key <= k) — _JustAbove supports the
# reflected ``<`` via __gt__ above.
