"""Simulated-PRAM primitives, sorting, and execution backends."""

from .connectivity import connected_components
from .executor import ProcessExecutor, RungTask, SerialExecutor, WorkerDelta
from .primitives import (
    arbitrary_winners,
    pack,
    parallel_map,
    reduce_max,
    reduce_sum,
    scan,
    semisort,
)
from .sorting import parallel_sort

__all__ = [
    "ProcessExecutor",
    "RungTask",
    "SerialExecutor",
    "WorkerDelta",
    "arbitrary_winners",
    "connected_components",
    "pack",
    "parallel_map",
    "parallel_sort",
    "reduce_max",
    "reduce_sum",
    "scan",
    "semisort",
]
