"""Parallel connected components (random hook-and-contract).

The k-core queries need connected components of an induced subgraph.  A
BFS has depth Theta(diameter); the classic PRAM alternative contracts the
graph in O(log n) *rounds* w.h.p. (random coin hooking a la
Reif/Gazit/"random mate"):

  each round:
    every live vertex flips a coin;
    every TAILS vertex with a HEADS neighbour hooks onto one (CRCW
      arbitrary winner);
    pointer-jump labels to the hooked root and contract.

Each round costs O(live edges) work and O(1) depth plus O(log n) for the
pointer jumping; the number of live vertices drops by a constant factor
in expectation, giving O((n + m) log n) work and O(log^2 n) depth overall
— charged through the cost model accordingly, and the measured round
count is returned so callers/tests can compare against the logarithmic
bound.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Optional

from ..errors import ConvergenceError
from ..instrument.work_depth import CostModel
from ..rng import coerce_rng


def connected_components(
    vertices: Iterable[int],
    neighbors: Mapping[int, Iterable[int]] | None = None,
    edges: Optional[Iterable[tuple[int, int]]] = None,
    cm: Optional[CostModel] = None,
    seed: int | random.Random = 0,
) -> tuple[dict[int, int], int]:
    """Component label per vertex, plus the number of contraction rounds.

    Provide either ``neighbors`` (adjacency mapping; only pairs with both
    endpoints in ``vertices`` count) or an explicit ``edges`` iterable.
    Labels are canonical: the minimum vertex id of each component.
    """
    verts = set(vertices)
    if edges is None:
        if neighbors is None:
            raise ValueError("need neighbors or edges")
        edge_list = [
            (u, v)
            for u in verts
            for v in neighbors.get(u, ())
            if v in verts and u < v
        ]
    else:
        edge_list = [(u, v) for (u, v) in edges if u in verts and v in verts]

    rng = coerce_rng(seed)
    parent: dict[int, int] = {v: v for v in verts}
    live_edges = list(edge_list)
    rounds = 0
    limit = 64 + 4 * max(1, len(verts)).bit_length() * 8
    while live_edges:
        rounds += 1
        if rounds > limit:
            raise ConvergenceError("hook-and-contract failed to converge")
        # coin flip per live root
        roots = {parent[u] for (u, v) in live_edges} | {
            parent[v] for (u, v) in live_edges
        }
        coins = {r: rng.random() < 0.5 for r in roots}  # True = heads
        if cm is not None:
            cm.charge(work=len(roots) + len(live_edges), depth=1)
        # tails roots propose to hook onto an adjacent heads root
        hooks: dict[int, int] = {}
        for u, v in live_edges:
            ru, rv = parent[u], parent[v]
            if ru == rv:
                continue
            for a, b in ((ru, rv), (rv, ru)):
                if not coins[a] and coins[b] and a not in hooks:
                    hooks[a] = b
        for a, b in hooks.items():
            parent[a] = b
        # pointer jumping: flatten to roots (O(log n) jumps, charged once)
        if cm is not None:
            cm.charge(
                work=len(verts),
                depth=max(1, len(verts).bit_length()),
            )
        for v in verts:
            r = v
            while parent[r] != r:
                r = parent[r]
            parent[v] = r
        live_edges = [
            (u, v) for (u, v) in live_edges if parent[u] != parent[v]
        ]
    # canonical labels: min id per component
    groups: dict[int, list[int]] = {}
    for v in verts:
        groups.setdefault(parent[v], []).append(v)
    labels: dict[int, int] = {}
    for members in groups.values():
        rep = min(members)
        for v in members:
            labels[v] = rep
    return labels, rounds
