"""Execution backends for *independent* structure sweeps.

The unconditional ladders of Theorems 1.1/1.2 run ``O(log n / eps)``
completely independent fixed-H structures in parallel.  That is the one
place where coarse-grained real parallelism survives Python's GIL (each
structure is its own process; no shared state).  ``repro_why`` for this
paper flags the GIL as the reproduction gate — fine-grained PRAM steps are
*simulated* (see :mod:`repro.instrument.work_depth`), while this module
offers honest process-level parallelism for the ladder sweep when more
than one core exists.

Two surfaces:

* :meth:`SerialExecutor.map` / :meth:`ProcessExecutor.map` — the original
  stateless fan-out over picklable items (kept for ad-hoc sweeps).
* :meth:`SerialExecutor.run_structures` / :meth:`ProcessExecutor.
  run_structures` — the ladder protocol.  The coordinator hands over a
  list of :class:`RungTask` (structure + method + args); the serial
  backend runs them as branches of one :meth:`CostModel.parallel` region
  (bit-for-bit the historical inline loop), while the process backend
  ships each structure to a worker, runs it there against a **fresh**
  cost model and (if the coordinator is armed) a fresh tracer, and ships
  a :class:`WorkerDelta` back.  The coordinator replays each delta inside
  a parallel branch — ``charge(work, depth)`` + counter increments + span
  tree graft + event re-emission — so armed telemetry and the cost model
  are bit-identical to the serial backend (``repro profile --check``
  enforces this end to end; docs/PERFORMANCE.md spells out the contract).

Structures cross the process boundary via pickle with the cost model
*factored out*: every :class:`CostModel` reference is replaced by a
persistent id at dump time and re-bound at load time (worker: a fresh
model; coordinator, on the way back: the shared model).  No frame stacks
or counters ever travel, and the round trip re-binds arbitrarily nested
``cm`` references (treaps, buckets, duplicated inners) without any
attribute walking.
"""

from __future__ import annotations

import io
import os
import pickle
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TypeVar

from ..instrument import telemetry as _telemetry
from ..instrument import trace as _trace
from ..instrument import wallclock as _wallclock
from ..instrument.telemetry import SpanNode, Tracer, merge_span_children
from ..instrument.wallclock import ExecutorStats, RoundWall, TaskWall
from ..instrument.work_depth import CostModel

T = TypeVar("T")
U = TypeVar("U")

# -- the delta protocol -------------------------------------------------------

#: persistent-id tag under which every CostModel reference is factored out
#: of a structure pickle (see module docstring).
_CM_PID = "repro.cm"


@dataclass
class RungTask:
    """One independent unit of a ladder sweep.

    ``structure`` must be picklable once its cost model is factored out
    (all core structures are).  ``span``/``attrs`` describe the telemetry
    span the coordinator opens around the unit (``ladder.rung`` with its
    height, for ladders; ``None`` for the density guard's bucket sweep,
    which historically ran un-spanned).  ``finish`` runs coordinator-side
    *inside* the accounting branch after the structure's method (the
    density guard absorbs reversal journals there); ``install`` runs
    outside the branch and receives the post-run structure so the caller
    can splice the worker's copy back in (process backend only — the
    serial backend mutates in place and passes the original).
    """

    structure: Any
    method: str
    args: tuple = ()
    span: Optional[str] = None
    attrs: dict = field(default_factory=dict)
    finish: Optional[Callable[[Any], None]] = None
    install: Optional[Callable[[Any], None]] = None


@dataclass
class WorkerDelta:
    """Everything a worker's run must contribute back to the coordinator.

    ``work``/``depth`` are the worker cost model's totals for the unit
    (replayed as one ``charge`` inside the coordinator's branch: works
    sum, depths max — exactly what the inline branch produced).
    ``counters`` are summed into the coordinator model.  ``tree`` is the
    worker tracer's root (its children graft under the coordinator's
    enclosing span) and ``events`` are the worker's sink events, re-emitted
    with the coordinator's path prefix and sequence numbers.

    The ``*_s`` fields are the worker's wall-clock observables (seconds
    on the system-wide monotonic clock): submit→pickup queue latency,
    the structure method itself, and the worker-side pickle round trip.
    They feed the overhead ledger only — never the cost model.
    """

    work: int
    depth: int
    counters: dict[str, int] = field(default_factory=dict)
    tree: Optional[SpanNode] = None
    events: list[dict] = field(default_factory=list)
    frame_mismatches: int = 0
    queue_s: float = 0.0
    compute_s: float = 0.0
    pickle_s: float = 0.0


class _StatePickler(pickle.Pickler):
    """Pickler that factors every CostModel out as a persistent id."""

    def persistent_id(self, obj: Any) -> Optional[str]:
        if isinstance(obj, CostModel):
            return _CM_PID
        return None


class _StateUnpickler(pickle.Unpickler):
    """Unpickler re-binding the factored-out cost model references."""

    def __init__(self, file: io.BytesIO, cm: CostModel) -> None:
        super().__init__(file)
        self._cm = cm

    def persistent_load(self, pid: str) -> Any:
        if pid == _CM_PID:
            return self._cm
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dump_structure(structure: Any) -> bytes:
    """Serialise a structure with its cost model factored out."""
    buf = io.BytesIO()
    _StatePickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(structure)
    return buf.getvalue()


def load_structure(blob: bytes, cm: CostModel) -> Any:
    """Deserialise a structure, binding every ``cm`` reference to ``cm``."""
    return _StateUnpickler(io.BytesIO(blob), cm).load()


def run_task_worker(
    payload: tuple[bytes, str, tuple, bool, float]
) -> tuple[bytes, WorkerDelta]:
    """Run one :class:`RungTask` in this process against fresh accounting.

    The module-level entry point a :class:`ProcessPoolExecutor` can pickle.
    ``payload`` is ``(blob, method, args, armed, t_submit)``; the structure
    is rebuilt around a fresh :class:`CostModel`, the method runs (under a
    fresh non-strict tracer when the coordinator was armed), and the
    mutated structure plus its :class:`WorkerDelta` travel back.
    ``t_submit`` is the coordinator's monotonic submit stamp — on Linux
    ``CLOCK_MONOTONIC`` is system-wide, so ``pickup - t_submit`` is the
    queue latency the overhead ledger attributes per task.
    """
    blob, method, args, armed, t_submit = payload
    t_pickup = _wallclock.monotonic()
    cm = CostModel()
    structure = load_structure(blob, cm)
    t_loaded = _wallclock.monotonic()
    events: list[dict] = []
    tree: Optional[SpanNode] = None
    mismatches = 0
    if armed:
        tracer = Tracer(cm, strict=False, sinks=[events.append])
        with _trace.tracing(tracer):
            getattr(structure, method)(*args)
        tree = tracer.root
        mismatches = tracer.frame_mismatches
    else:
        getattr(structure, method)(*args)
    t_computed = _wallclock.monotonic()
    out = dump_structure(structure)
    t_dumped = _wallclock.monotonic()
    delta = WorkerDelta(
        work=cm.work,
        depth=cm.depth,
        counters=dict(cm.counters),
        tree=tree,
        events=events,
        frame_mismatches=mismatches,
        queue_s=max(0.0, t_pickup - t_submit),
        compute_s=max(0.0, t_computed - t_loaded),
        pickle_s=max(0.0, (t_loaded - t_pickup) + (t_dumped - t_computed)),
    )
    return out, delta


def merge_delta(cm: CostModel, delta: WorkerDelta) -> None:
    """Replay a worker's delta into the coordinator's innermost frame.

    Must be called inside the parallel branch standing in for the worker
    (and inside the task's span, if any): the single ``charge`` then sums
    into the region's work and maxes into its depth exactly as the inline
    execution would have, the counters sum globally, and the armed tracer
    (if any) absorbs the worker's span tree and events at the current
    stack position.
    """
    cm.charge(work=delta.work, depth=delta.depth)
    for name in sorted(delta.counters):
        cm.count(name, delta.counters[name])
    tracer = _trace.ACTIVE
    if tracer is None:
        return
    if delta.tree is not None:
        merge_span_children(tracer._stack[-1], delta.tree)
        tracer.frame_mismatches += delta.frame_mismatches
    if delta.events:
        prefix = [node.label for node in tracer._stack[1:]]
        for ev in delta.events:
            merged = dict(ev)
            merged["path"] = prefix + list(ev.get("path", []))
            tracer._emit(merged)


def _task_label(task: RungTask) -> str:
    """The task's telemetry identity for the overhead ledger."""
    if task.span is None:
        return "(unspanned)"
    if not task.attrs:
        return task.span
    inner = ", ".join(f"{k}={v}" for k, v in sorted(task.attrs.items()))
    return f"{task.span}[{inner}]"


def _run_task_inline(task: RungTask) -> None:
    """Execute one task in the coordinator process (the serial branch body)."""
    if task.span is not None:
        with _trace.span(task.span, **task.attrs):
            getattr(task.structure, task.method)(*task.args)
            if task.finish is not None:
                task.finish(task.structure)
    else:
        getattr(task.structure, task.method)(*task.args)
        if task.finish is not None:
            task.finish(task.structure)


# -- backends -----------------------------------------------------------------


class SerialExecutor:
    """Run the sweep in-process, sequentially.

    ``stats`` is the wall-clock overhead ledger (``repro profile
    --overhead``); for the serial backend every second is compute, so the
    ledger mostly certifies that the executor machinery itself is cheap.
    """

    def __init__(self) -> None:
        self.stats = ExecutorStats("serial")

    def map(self, fn: Callable[[T], U], items: Sequence[T]) -> list[U]:
        with _trace.span("pram.map", detail={"items": len(items)}, backend="serial"):
            return [fn(item) for item in items]

    def run_structures(self, cm: CostModel, tasks: Sequence[RungTask]) -> None:
        """Run every task as one branch of a single parallel region.

        Semantically identical (work, depth, counters, span tree) to the
        historical inline ladder loop — this *is* that loop, routed.
        Wall-clock reads never touch ``cm``, so the accounting stays
        bit-identical to the uninstrumented loop.
        """
        tasks = list(tasks)
        t_round = _wallclock.monotonic()
        walls: list[TaskWall] = []
        with _trace.span("pram.map", detail={"items": len(tasks)}, backend="serial"):
            with cm.parallel() as region:
                for task in tasks:
                    t0 = _wallclock.monotonic()
                    with region.branch():
                        _run_task_inline(task)
                    walls.append(
                        TaskWall(
                            label=_task_label(task),
                            compute_s=max(0.0, _wallclock.monotonic() - t0),
                        )
                    )
                    if task.install is not None:
                        task.install(task.structure)
        self.stats.record_round(
            RoundWall(
                backend="serial",
                workers=1,
                wall_s=max(0.0, _wallclock.monotonic() - t_round),
                tasks=walls,
            ),
            registry=_telemetry.REGISTRY,
        )

    def close(self) -> None:
        """No pooled resources to release (symmetry with ProcessExecutor)."""


class ProcessExecutor:
    """Run the sweep in a process pool (coarse-grained real parallelism).

    ``fn`` and every item must be picklable.  Worker count defaults to the
    machine's CPU count; on a 1-core reproduction box the benefit only
    materialises as a Brent projection (DESIGN.md §2 item 1) — E22 reports
    both the wall clock and the projection.

    ``run_structures`` ships each task's structure to a worker and merges
    the returned :class:`WorkerDelta` in a coordinator-side parallel
    branch, so the cost model and armed telemetry are bit-identical to
    :class:`SerialExecutor` (the delta-merge contract; see
    docs/PERFORMANCE.md).  The pool is created lazily and reused across
    batches; call :meth:`close` (or use the instance as a context manager)
    to release it.

    Fault tolerance: a worker that dies (``BrokenProcessPool``), hangs
    past ``task_timeout`` seconds, or trips an OS-level error does not
    sink the sweep.  The suspect pool is discarded (hung workers
    included), the failed tasks are retried on a fresh pool up to
    ``task_retries`` rounds, and stragglers finally *degrade* to
    in-process execution of the exact same worker payload — the
    copy/round-trip semantics are preserved, so the merged cost model and
    telemetry stay bit-identical to the healthy path (``repro profile
    --check --workers N`` holds either way).  Degradations and retries
    are published to the process-wide metrics registry
    (``repro_executor_retries_total`` / ``repro_executor_degraded_total``),
    never to the replay cost model — fault handling must not perturb the
    answer-bearing accounting.  Task-level exceptions (a bug in a
    structure method) are not retried; they propagate on first failure.
    """

    #: infrastructure failures worth a pool rebuild + retry; anything else
    #: raised out of a worker is a task bug and propagates immediately.
    RETRYABLE: tuple[type[BaseException], ...] = (
        BrokenExecutor,
        FuturesTimeout,
        OSError,
        CancelledError,
    )

    def __init__(
        self,
        max_workers: int | None = None,
        task_timeout: float | None = None,
        task_retries: int = 2,
    ) -> None:
        self.max_workers = max_workers or os.cpu_count() or 1
        self.task_timeout = task_timeout
        self.task_retries = max(0, task_retries)
        self._pool: Optional[ProcessPoolExecutor] = None
        self.stats = ExecutorStats("process")

    # pool handles cannot travel; a pickled executor rebuilds lazily.
    def __reduce__(self):
        return (
            ProcessExecutor,
            (self.max_workers, self.task_timeout, self.task_retries),
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut the lazy worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _discard_pool(self) -> None:
        """Drop a suspect pool without waiting on its (possibly hung) workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _run_payloads(
        self, payloads: Sequence[tuple[bytes, str, tuple, bool]]
    ) -> list[tuple[bytes, WorkerDelta]]:
        """Fan payloads out to workers; survive dead or hung workers.

        Each retry round resubmits only the still-failing payloads on a
        fresh pool; after ``task_retries`` rounds the stragglers run
        in-process via the same :func:`run_task_worker` entry point, so a
        degraded sweep still returns worker-identical results.

        The submit stamp (the 5th payload element) is taken per attempt,
        at submit time — a retried task's queue latency measures its own
        round, not the time spent waiting behind a dead pool.
        """
        results: list[Optional[tuple[bytes, WorkerDelta]]] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        for round_no in range(self.task_retries + 1):
            pool = self._ensure_pool()
            futures = {
                i: pool.submit(
                    run_task_worker, payloads[i] + (_wallclock.monotonic(),)
                )
                for i in pending
            }
            failed: list[int] = []
            for i in pending:
                try:
                    results[i] = futures[i].result(timeout=self.task_timeout)
                except self.RETRYABLE:
                    failed.append(i)
            if not failed:
                return results  # type: ignore[return-value]
            # a worker died or hung: the whole pool is suspect — discard it
            # (without waiting) and retry the failures on a fresh one.
            self._discard_pool()
            pending = failed
            _telemetry.REGISTRY.counter("repro_executor_retries_total").inc(
                len(failed)
            )
        _telemetry.REGISTRY.counter("repro_executor_degraded_total").inc(len(pending))
        for i in pending:
            results[i] = run_task_worker(payloads[i] + (_wallclock.monotonic(),))
        return results  # type: ignore[return-value]

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def map(self, fn: Callable[[T], U], items: Sequence[T]) -> list[U]:
        with _trace.span("pram.map", detail={"items": len(items)}, backend="process"):
            if self.max_workers <= 1 or len(items) <= 1:
                return [fn(item) for item in items]
            return list(self._ensure_pool().map(fn, items))

    def run_structures(self, cm: CostModel, tasks: Sequence[RungTask]) -> None:
        """Fan the tasks out to workers; merge the deltas deterministically.

        Workers mutate *copies*; nothing is spliced back until every task
        has returned, so an exception mid-sweep leaves the coordinator's
        structures untouched (stronger than the inline loop, which a
        guarded() envelope already protects).  Merge order is task order —
        the same order the serial backend executes in — so counters, span
        aggregation and event sequence numbers line up exactly.
        """
        tasks = list(tasks)
        armed = _trace.ACTIVE is not None
        t_round = _wallclock.monotonic()
        serialize_per_task: list[float] = []
        payload_bytes: list[int] = []
        with _trace.span("pram.map", detail={"items": len(tasks)}, backend="process"):
            payloads = []
            for t in tasks:
                t0 = _wallclock.monotonic()
                blob = dump_structure(t.structure)
                serialize_per_task.append(max(0.0, _wallclock.monotonic() - t0))
                payload_bytes.append(len(blob))
                payloads.append((blob, t.method, t.args, armed))
            t_submitted = _wallclock.monotonic()
            if self.max_workers <= 1 or len(tasks) <= 1:
                # in-process fallback: keep the copy/round-trip semantics of
                # the pool path so behaviour does not depend on sizing.
                results = [
                    run_task_worker(p + (_wallclock.monotonic(),)) for p in payloads
                ]
            else:
                results = self._run_payloads(payloads)
            t_returned = _wallclock.monotonic()
            deserialize_per_task: list[float] = []
            result_bytes: list[int] = []
            with cm.parallel() as region:
                for task, (blob, delta) in zip(tasks, results):
                    t0 = _wallclock.monotonic()
                    replacement = load_structure(blob, cm)
                    deserialize_per_task.append(
                        max(0.0, _wallclock.monotonic() - t0)
                    )
                    result_bytes.append(len(blob))
                    with region.branch():
                        if task.span is not None:
                            with _trace.span(task.span, **task.attrs):
                                merge_delta(cm, delta)
                                if task.finish is not None:
                                    task.finish(replacement)
                        else:
                            merge_delta(cm, delta)
                            if task.finish is not None:
                                task.finish(replacement)
                    if task.install is not None:
                        task.install(replacement)
            t_merged = _wallclock.monotonic()
        deserialize_s = sum(deserialize_per_task)
        walls = [
            TaskWall(
                label=_task_label(task),
                payload_bytes=payload_bytes[i],
                result_bytes=result_bytes[i],
                serialize_s=serialize_per_task[i],
                deserialize_s=deserialize_per_task[i],
                queue_s=results[i][1].queue_s,
                compute_s=results[i][1].compute_s,
                worker_pickle_s=results[i][1].pickle_s,
            )
            for i, task in enumerate(tasks)
        ]
        self.stats.record_round(
            RoundWall(
                backend="process",
                workers=self.max_workers,
                wall_s=max(0.0, t_merged - t_round),
                serialize_s=sum(serialize_per_task),
                wait_s=max(0.0, t_returned - t_submitted),
                deserialize_s=deserialize_s,
                merge_s=max(0.0, (t_merged - t_returned) - deserialize_s),
                tasks=walls,
            ),
            registry=_telemetry.REGISTRY,
        )
