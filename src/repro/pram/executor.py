"""Execution backends for *independent* structure sweeps.

The unconditional ladders of Theorems 1.1/1.2 run ``O(log n / eps)``
completely independent fixed-H structures in parallel.  That is the one
place where coarse-grained real parallelism survives Python's GIL (each
structure is its own process; no shared state).  ``repro_why`` for this
paper flags the GIL as the reproduction gate — fine-grained PRAM steps are
*simulated* (see :mod:`repro.instrument.work_depth`), while this module
offers honest process-level parallelism for the ladder sweep when more
than one core exists.

``SerialExecutor`` is the default everywhere; tests exercise
``ProcessExecutor`` on picklable workloads.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..instrument import trace as _trace

T = TypeVar("T")
U = TypeVar("U")


class SerialExecutor:
    """Run the sweep in-process, sequentially."""

    def map(self, fn: Callable[[T], U], items: Sequence[T]) -> list[U]:
        with _trace.span("pram.map", detail={"items": len(items)}, backend="serial"):
            return [fn(item) for item in items]


class ProcessExecutor:
    """Run the sweep in a process pool (coarse-grained real parallelism).

    ``fn`` and every item must be picklable.  Worker count defaults to the
    machine's CPU count; on this reproduction box that is 1, so the benefit
    only materialises on larger hosts — which is exactly why all reported
    speedups are Brent projections (DESIGN.md §2 item 1).

    The ``pram.map`` span measures the sweep from the coordinator's side;
    worker processes have their own (unarmed) telemetry globals, so only
    wall-clock — not per-item cost-model deltas — is attributed here.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or os.cpu_count() or 1

    def map(self, fn: Callable[[T], U], items: Sequence[T]) -> list[U]:
        with _trace.span("pram.map", detail={"items": len(items)}, backend="process"):
            if self.max_workers <= 1 or len(items) <= 1:
                return [fn(item) for item in items]
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items))
