"""Classic PRAM primitives with work/depth accounting.

These are the textbook building blocks [Ble96] the paper's algorithms lean
on implicitly: prefix sums (scan), reduction, packing/filtering, winner
selection among concurrent proposals (the CRCW "arbitrary write" used by
the token games), and semisorting (grouping by key).  Each is implemented
with numpy/dict machinery for real speed and *charged* its standard PRAM
cost through the cost model.

Charged costs (CRCW PRAM):

=============  ==================  ============
primitive      work                depth
=============  ==================  ============
scan/reduce    O(n)                O(log n)
pack           O(n)                O(log n)
arbitrary_winners  O(n)            O(1)
semisort       O(n)                O(log n)  (deterministic variant)
=============  ==================  ============
"""

from __future__ import annotations

import math
from typing import Any, Callable, Hashable, Iterable, Optional, Sequence, TypeVar

import numpy as np

from ..instrument.work_depth import CostModel

T = TypeVar("T")


def _log2ceil(n: int) -> int:
    return max(1, int(math.ceil(math.log2(max(n, 2)))))


def _charge_linear_log(cm: Optional[CostModel], n: int) -> None:
    if cm is not None and n:
        cm.charge(work=n, depth=_log2ceil(n))


def scan(values: Sequence[float], cm: Optional[CostModel] = None) -> list[float]:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``."""
    arr = np.asarray(values, dtype=float)
    _charge_linear_log(cm, len(arr))
    out = np.empty_like(arr)
    if len(arr):
        out[0] = 0.0
        np.cumsum(arr[:-1], out=out[1:])
    return out.tolist()


def reduce_sum(values: Sequence[float], cm: Optional[CostModel] = None) -> float:
    """Parallel sum reduction."""
    _charge_linear_log(cm, len(values))
    return float(np.sum(np.asarray(values, dtype=float))) if len(values) else 0.0


def reduce_max(values: Sequence[float], cm: Optional[CostModel] = None) -> float:
    """Parallel max reduction (empty input -> ``-inf``)."""
    _charge_linear_log(cm, len(values))
    return float(np.max(np.asarray(values, dtype=float))) if len(values) else float("-inf")


def pack(items: Sequence[T], flags: Sequence[bool], cm: Optional[CostModel] = None) -> list[T]:
    """Keep ``items[i]`` where ``flags[i]`` — the PRAM filter/pack primitive."""
    if len(items) != len(flags):
        raise ValueError("items and flags must have equal length")
    _charge_linear_log(cm, len(items))
    return [item for item, keep in zip(items, flags) if keep]


def arbitrary_winners(
    proposals: Iterable[tuple[Hashable, T]], cm: Optional[CostModel] = None
) -> dict[Hashable, T]:
    """Resolve concurrent proposals: one arbitrary winner per target.

    Models the CRCW "arbitrary write" the token games use ("for each vertex
    that received at least one proposal, accept any of them").  Determinism:
    the *first* proposal per target in iteration order wins, so callers that
    need reproducibility sort first (the paper sorts lexicographically —
    see Lemma 4.14/4.16; use :func:`repro.pram.sorting.parallel_sort`).

    Charged O(n) work, O(1) depth — a concurrent-write round.
    """
    proposals = list(proposals)
    if cm is not None and proposals:
        cm.charge(work=len(proposals), depth=1)
    winners: dict[Hashable, T] = {}
    for target, payload in proposals:
        if target not in winners:
            winners[target] = payload
    return winners


def semisort(
    pairs: Iterable[tuple[Hashable, T]], cm: Optional[CostModel] = None
) -> dict[Hashable, list[T]]:
    """Group values by key (parallel semisort).

    Charged at the deterministic bound O(n) work / O(log n) depth the paper
    can afford everywhere it groups (it always follows a sort anyway).
    """
    pairs = list(pairs)
    _charge_linear_log(cm, len(pairs))
    groups: dict[Hashable, list[T]] = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    return groups


def parallel_map(
    items: Sequence[T], fn: Callable[[T], Any], cm: Optional[CostModel] = None
) -> list[Any]:
    """Apply ``fn`` elementwise as one parallel step of unit-cost branches.

    For non-unit-cost bodies use :meth:`CostModel.pfor`, which measures each
    branch; this fast path charges O(n) work, O(1) depth.
    """
    if cm is not None and items:
        cm.charge(work=len(items), depth=1)
    return [fn(item) for item in items]
