"""Resident-state executor: rung state lives in the workers.

:class:`~repro.pram.executor.ProcessExecutor` pickles every task's whole
structure out and a mutated whole structure back, every batch.  For the
ladder sweep that round trip dominates wall-clock: the structures are
large and change only a little per batch.  This module keeps each rung's
structure *resident* in a persistent worker process instead:

* **Seed once** — the first dispatch of a structure publishes its pickle
  (cost model factored out, the :func:`~repro.pram.executor.dump_structure`
  wire format) through a :class:`~repro.substrate.shm.ShmArena`
  ``multiprocessing.shared_memory`` segment; the owning worker attaches,
  copies, unpickles, and caches it under a state key.
* **Ship deltas after** — every later batch sends only the per-rung ops
  (``(method, args)`` — a few edges) down the worker's pipe and receives
  a scalar :class:`~repro.pram.executor.WorkerDelta` back.  No structure
  bytes cross in either direction.
* **Materialise lazily** — the coordinator installs a
  :class:`ResidentHandle` where the structure used to live.  The first
  coordinator-side *read* (a query, an invariant check, a checkpoint)
  fetches the current pickle back from the worker and swaps the real
  object in; sweeps that are never read between batches never pay for it.

Bit-identity contract: the worker applies exactly the method the serial
backend would have run, against a persistent per-key cost model whose
top frame accumulates sequentially, so the per-task scalar difference
equals what a fresh model records; the coordinator replays it through
:func:`~repro.pram.executor.merge_delta` inside the same span/branch
shape as the other backends (``repro profile --check --workers N
--shared-state`` enforces this end to end).

Coherence contract: the ops-only fast path fires **only** when the
task's structure *is* the unexpired handle this executor installed —
the coordinator never even unpickled the state since the worker produced
it, so no coordinator-side mutation can have diverged.  Any
materialisation that re-enters the sweep as a real object downgrades
that structure to a fresh seed.

Fault handling is deliberately coarse: any worker death, hang, or pipe
error retires the whole resident fleet for the rest of the sweep and
fails over to in-process execution with worker-identical payload
semantics, rebuilding each task's pre-op state from its recorded
seed + op history (a charge-free deterministic replay).  Every record is
retired, so the next sweep reseeds onto fresh workers.  Degradations are
published to the metrics registry, never to the cost model.  Task-level
exceptions (a structure-method bug) are not retried: the sweep drains
every outstanding reply — keeping coordinator records coherent with the
worker states — merges nothing, and propagates, exactly the
all-or-nothing collection the other backends implement.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..instrument import telemetry as _telemetry
from ..instrument import trace as _trace
from ..instrument import wallclock as _wallclock
from ..instrument.telemetry import Tracer
from ..instrument.wallclock import ExecutorStats, RoundWall, TaskWall
from ..instrument.work_depth import CostModel
from ..substrate.shm import ShmArena
from .executor import (
    RungTask,
    WorkerDelta,
    _task_label,
    dump_structure,
    load_structure,
    merge_delta,
    run_task_worker,
)

#: stamp left on a materialised structure so a later reseed can evict the
#: superseded worker-side cache entry (popped before any pickling).
_PREV_STAMP = "_resident_prev"


def _identity(x: Any) -> Any:
    return x


@dataclass
class _StateRecord:
    """Coordinator-side lineage of one resident structure."""

    key: int
    worker: int
    seed_blob: bytes
    #: ops applied since the seed; state at version v == seed + ops[:v].
    ops: list[tuple[str, tuple]] = field(default_factory=list)
    version: int = 0
    #: the coordinator cost model the structure's ``cm`` refs rebind to.
    cm: Optional[CostModel] = None
    #: retired records refuse the fast path; handles replay instead.
    dead: bool = False


class ResidentHandle:
    """Placeholder for a structure whose current state lives in a worker.

    Reading it (``__materialize__``) pulls the state back: a live fetch
    from the owning worker when the record is current, otherwise a
    deterministic replay of ``seed + ops[:version]`` against a scratch
    cost model (charges suppressed — the original run already paid).
    Pickling or deep-copying a handle materialises first, so snapshots,
    checkpoints and rollback envelopes always see a real structure.
    """

    def __init__(
        self, executor: "SharedStateExecutor", record: _StateRecord, version: int
    ) -> None:
        self._executor = executor
        self._record = record
        self.key = record.key
        self.version = version

    def __materialize__(self) -> Any:
        return self._executor._materialize(self)

    def __deepcopy__(self, memo: dict) -> Any:
        import copy

        return copy.deepcopy(self.__materialize__(), memo)

    def __reduce__(self):
        return (_identity, (self.__materialize__(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResidentHandle(key={self.key}, version={self.version})"


# -- the worker ----------------------------------------------------------------


def _apply_delta_run(
    structure: Any, cm: CostModel, method: str, args: tuple, armed: bool
) -> WorkerDelta:
    """Run one resident task; return the scalar accounting difference.

    The model's top frame accumulates sequentially (works sum, depths
    sum), so the pre/post difference is exactly what a fresh model would
    have recorded for the method — the quantity the serial backend's
    inline branch contributes.
    """
    pre_work, pre_depth = cm.work, cm.depth
    pre_counters = dict(cm.counters)
    events: list[dict] = []
    tree = None
    mismatches = 0
    t0 = _wallclock.monotonic()
    if armed:
        tracer = Tracer(cm, strict=False, sinks=[events.append])
        with _trace.tracing(tracer):
            getattr(structure, method)(*args)
        tree = tracer.root
        mismatches = tracer.frame_mismatches
    else:
        getattr(structure, method)(*args)
    compute_s = max(0.0, _wallclock.monotonic() - t0)
    counters = {
        name: value - pre_counters.get(name, 0)
        for name, value in cm.counters.items()
        if value != pre_counters.get(name, 0)
    }
    return WorkerDelta(
        work=cm.work - pre_work,
        depth=cm.depth - pre_depth,
        counters=counters,
        tree=tree,
        events=events,
        frame_mismatches=mismatches,
        compute_s=compute_s,
    )


def _worker_main(conn) -> None:
    """Persistent worker loop: resident state keyed by the coordinator.

    Reply discipline (the coordinator counts on it): ``run``, ``dump``
    and ``stateless`` produce exactly one reply each; ``seed``,
    ``replay``, ``drop`` and ``exit`` produce none.  A failure inside a
    reply-less message poisons its key instead of replying — the next
    ``run``/``dump`` on that key reports it — so the pipe never carries
    an unexpected message.
    """
    cache: dict[int, tuple[Any, CostModel, int]] = {}
    poison: dict[int, tuple[BaseException, str]] = {}

    def fail(exc: BaseException) -> tuple:
        try:
            import pickle

            pickle.dumps(exc)
            return ("error", exc, traceback.format_exc())
        except Exception:
            return ("error", RuntimeError(repr(exc)), traceback.format_exc())

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # coordinator went away
            return
        kind = msg[0]
        if kind == "exit":
            return
        if kind in ("run", "dump", "stateless"):
            try:
                if kind == "stateless":
                    conn.send(("result", run_task_worker(msg[1])))
                    continue
                key = msg[1]
                if key in poison:
                    exc, tb = poison.pop(key)
                    conn.send(("error", exc, tb))
                    continue
                if kind == "run":
                    _kind, key, version, method, args, armed, t_submit = msg
                    t_pickup = _wallclock.monotonic()
                    structure, cm, have = cache[key]
                    if have != version:
                        raise RuntimeError(
                            f"resident state {key} at version {have}, "
                            f"coordinator expected {version}"
                        )
                    delta = _apply_delta_run(structure, cm, method, args, armed)
                    delta.queue_s = max(0.0, t_pickup - t_submit)
                    cache[key] = (structure, cm, version + 1)
                    conn.send(("delta", delta))
                else:  # dump
                    structure, _cm, _version = cache[msg[1]]
                    conn.send(("blob", dump_structure(structure)))
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                if kind == "run":
                    cache.pop(msg[1], None)  # state is suspect mid-method
                conn.send(fail(exc))
        else:
            try:
                if kind == "seed":
                    _kind, key, name, size = msg
                    blob = ShmArena.read(name, size)
                    cm = CostModel()
                    poison.pop(key, None)
                    cache[key] = (load_structure(blob, cm), cm, 0)
                elif kind == "replay":
                    _kind, key, ops = msg
                    structure, cm, version = cache[key]
                    for method, args in ops:
                        getattr(structure, method)(*args)
                    cache[key] = (structure, cm, version + len(ops))
                elif kind == "drop":
                    cache.pop(msg[1], None)
                    poison.pop(msg[1], None)
            except BaseException as exc:  # noqa: BLE001 - reported on next use
                if len(msg) > 1:
                    cache.pop(msg[1], None)
                    poison[msg[1]] = (exc, traceback.format_exc())


# -- the coordinator -----------------------------------------------------------


class SharedStateExecutor:
    """Run ladder sweeps against worker-resident structures.

    Drop-in for :class:`~repro.pram.executor.ProcessExecutor` at the
    ``run_structures`` surface.  Tasks carrying a ``finish`` callback
    (the density guard's bucket sweep absorbs journals coordinator-side,
    so it needs a real replacement every sweep) take the stateless
    round-trip path automatically; everything else goes resident.
    ``map`` is served in-process — the resident protocol only pays off
    for stateful sweeps.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        task_timeout: float | None = None,
    ) -> None:
        self.max_workers = max_workers or os.cpu_count() or 1
        self.task_timeout = task_timeout
        self.stats = ExecutorStats("shm")
        self.arena = ShmArena(tag=f"repro{os.getpid()}")
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self._procs: list[Optional[Any]] = [None] * self.max_workers
        self._conns: list[Optional[Any]] = [None] * self.max_workers
        self._records: dict[int, _StateRecord] = {}
        self._next_key = 0
        self._pending_drops: list[tuple[int, int]] = []  # (worker, key)
        self._broken = False
        self._merge_cm: Optional[CostModel] = None

    # worker handles cannot travel; a pickled executor rebuilds empty.
    def __reduce__(self):
        return (SharedStateExecutor, (self.max_workers, self.task_timeout))

    # -- worker lifecycle ---------------------------------------------------

    def _conn(self, i: int):
        if self._conns[i] is None:
            # make sure the resource tracker exists before forking so all
            # workers share it (segment bookkeeping stays in one place).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
            parent, child = self._ctx.Pipe()
            proc = self._ctx.Process(target=_worker_main, args=(child,), daemon=True)
            proc.start()
            child.close()
            self._procs[i], self._conns[i] = proc, parent
        return self._conns[i]

    def _kill_workers(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc is not None:
                proc.terminate()
                proc.join(timeout=5)
            self._procs[i] = None
            if self._conns[i] is not None:
                self._conns[i].close()
                self._conns[i] = None

    def close(self) -> None:
        """Shut every worker down and release all shared segments."""
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
        self._kill_workers()
        self._records.clear()
        self._pending_drops.clear()
        self.arena.close()

    def __enter__(self) -> "SharedStateExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def map(self, fn, items: Sequence) -> list:
        with _trace.span("pram.map", detail={"items": len(items)}, backend="shm"):
            return [fn(item) for item in items]

    # -- resident-state bookkeeping -----------------------------------------

    def _rebuild(self, record: _StateRecord, version: int) -> Any:
        """Deterministically replay ``seed + ops[:version]``, charge-free.

        The replay binds every ``cm`` reference to a scratch model (the
        original run already charged the real one), then rebinds to the
        record's coordinator model via one dump/load round trip.
        """
        scratch = CostModel()
        structure = load_structure(record.seed_blob, scratch)
        for method, args in record.ops[:version]:
            getattr(structure, method)(*args)
        structure = load_structure(
            dump_structure(structure), record.cm or CostModel()
        )
        structure.__dict__[_PREV_STAMP] = (record.worker, record.key)
        return structure

    def _materialize(self, handle: ResidentHandle) -> Any:
        record = handle._record
        if (
            not record.dead
            and not self._broken
            and record.version == handle.version
            and self._conns[record.worker] is not None
        ):
            conn = self._conns[record.worker]
            try:
                conn.send(("dump", record.key))
                reply = self._recv(conn)
                if reply[0] == "blob":
                    structure = load_structure(reply[1], record.cm or CostModel())
                    structure.__dict__[_PREV_STAMP] = (record.worker, record.key)
                    return structure
            except (TimeoutError, BrokenPipeError, EOFError, OSError):
                self._breakdown()
        return self._rebuild(record, handle.version)

    def _recv(self, conn) -> tuple:
        if self.task_timeout is not None and not conn.poll(self.task_timeout):
            raise TimeoutError("resident worker did not answer in time")
        return conn.recv()

    def _breakdown(self) -> None:
        """Retire the whole resident fleet (handles fall back to replay)."""
        self._broken = True
        for record in self._records.values():
            record.dead = True
        self._pending_drops.clear()
        self._kill_workers()

    # -- the sweep ----------------------------------------------------------

    def run_structures(self, cm: CostModel, tasks: Sequence[RungTask]) -> None:
        """Fan tasks out to resident workers; merge scalar deltas in order.

        Merge order is task order — identical to the serial backend — and
        nothing is installed until every task's delta (or degraded
        result) is in, so counters, span aggregation and event sequences
        line up exactly (the delta-merge contract, docs/PERFORMANCE.md).
        """
        tasks = list(tasks)
        armed = _trace.ACTIVE is not None
        self._merge_cm = cm
        self._broken = False
        t_round = _wallclock.monotonic()
        with _trace.span("pram.map", detail={"items": len(tasks)}, backend="shm"):
            self._flush_drops()
            plans = [self._dispatch(task, armed) for task in tasks]
            t_submitted = _wallclock.monotonic()
            replies = self._collect(plans, armed)
            t_returned = _wallclock.monotonic()
            walls: list[TaskWall] = []
            with cm.parallel() as region:
                for task, plan, (delta, replacement) in zip(tasks, plans, replies):
                    with region.branch():
                        if task.span is not None:
                            with _trace.span(task.span, **task.attrs):
                                merge_delta(cm, delta)
                                if task.finish is not None:
                                    task.finish(replacement)
                        else:
                            merge_delta(cm, delta)
                            if task.finish is not None:
                                task.finish(replacement)
                    if task.install is not None:
                        task.install(replacement)
                    walls.append(
                        TaskWall(
                            label=_task_label(task),
                            payload_bytes=plan.get("payload_bytes", 0),
                            serialize_s=plan.get("serialize_s", 0.0),
                            queue_s=delta.queue_s,
                            compute_s=delta.compute_s,
                            worker_pickle_s=delta.pickle_s,
                        )
                    )
            t_merged = _wallclock.monotonic()
        self.stats.record_round(
            RoundWall(
                backend="shm",
                workers=self.max_workers,
                wall_s=max(0.0, t_merged - t_round),
                serialize_s=sum(p.get("serialize_s", 0.0) for p in plans),
                wait_s=max(0.0, t_returned - t_submitted),
                merge_s=max(0.0, t_merged - t_returned),
                tasks=walls,
            ),
            registry=_telemetry.REGISTRY,
        )

    def _flush_drops(self) -> None:
        """Evict superseded worker-side cache entries (best-effort)."""
        if self._broken or not self._pending_drops:
            self._pending_drops = []
            return
        for worker, key in self._pending_drops:
            conn = self._conns[worker]
            if conn is not None:
                try:
                    conn.send(("drop", key))
                except (BrokenPipeError, OSError):
                    pass
        self._pending_drops = []

    def _dispatch(self, task: RungTask, armed: bool) -> dict:
        """Send one task; return the plan needed to collect (or recover) it."""
        structure = task.structure
        handle = structure if isinstance(structure, ResidentHandle) else None
        published: Optional[str] = None
        fast = (
            handle is not None
            and not self._broken
            and not handle._record.dead
            and handle._record.version == handle.version
            and task.finish is None
        )
        try:
            if fast:
                record = handle._record
                conn = self._conn(record.worker)
                conn.send(
                    ("run", record.key, record.version, task.method, task.args,
                     armed, _wallclock.monotonic())
                )
                record.ops.append((task.method, task.args))
                return {
                    "mode": "run", "record": record, "conn": conn,
                    "method": task.method, "args": task.args,
                }
            if handle is not None:
                structure = handle.__materialize__()
            prev = structure.__dict__.pop(_PREV_STAMP, None) \
                if hasattr(structure, "__dict__") else None
            if prev is not None:
                prev_record = next(
                    (r for r in self._records.values() if r.key == prev[1]), None
                )
                if prev_record is not None:
                    prev_record.dead = True
                self._pending_drops.append(prev)
            t0 = _wallclock.monotonic()
            blob = dump_structure(structure)
            serialize_s = max(0.0, _wallclock.monotonic() - t0)
            if self._broken:
                return {
                    "mode": "inline",
                    "payload": (blob, task.method, task.args, armed),
                    "payload_bytes": len(blob), "serialize_s": serialize_s,
                }
            if task.finish is not None:
                # stateless round trip (ProcessExecutor semantics): the
                # finish callback needs a real replacement every sweep.
                worker = self._next_key % self.max_workers
                self._next_key += 1
                conn = self._conn(worker)
                payload = (blob, task.method, task.args, armed,
                           _wallclock.monotonic())
                conn.send(("stateless", payload))
                return {
                    "mode": "stateless", "conn": conn,
                    "payload": payload[:4], "payload_bytes": len(blob),
                    "serialize_s": serialize_s,
                }
            # seed + first resident run
            key = self._next_key
            self._next_key += 1
            record = _StateRecord(
                key=key, worker=key % self.max_workers, seed_blob=blob,
                cm=getattr(structure, "cm", None),
            )
            self._records[key] = record
            conn = self._conn(record.worker)
            name, size = self.arena.publish(blob)
            published = name
            conn.send(("seed", key, name, size))
            conn.send(
                ("run", key, 0, task.method, task.args, armed,
                 _wallclock.monotonic())
            )
            record.ops.append((task.method, task.args))
            return {
                "mode": "run", "record": record, "conn": conn,
                "method": task.method, "args": task.args,
                "segment": name, "payload_bytes": len(blob),
                "serialize_s": serialize_s,
            }
        except (BrokenPipeError, EOFError, OSError):
            # a seed published moments before the pipe broke has no
            # reader any more; unlink it before degrading.
            if published is not None:
                self.arena.release(published)
            self._breakdown()
            if handle is not None and not isinstance(structure, ResidentHandle):
                pass  # already materialised above
            elif handle is not None:
                structure = handle.__materialize__()
            return {
                "mode": "inline",
                "payload": (dump_structure(structure), task.method, task.args, armed),
            }

    def _collect(self, plans: list[dict], armed: bool) -> list[tuple]:
        """One ``(delta, replacement)`` per plan, in task order.

        Every outstanding reply is drained even when a task raised, so
        record versions stay coherent with the (still running) workers;
        on a task bug nothing is merged and the error propagates.
        Infrastructure failures instead retire the fleet and re-run the
        remaining tasks in-process from their recorded lineage.
        """
        replies: list[Optional[tuple]] = [None] * len(plans)
        error: Optional[BaseException] = None
        for i, plan in enumerate(plans):
            mode = plan["mode"]
            if mode == "inline" or (self._broken and mode != "done"):
                # the killed worker will never consume this plan's seed
                # blob — unlink it here or the segment outlives the sweep
                # (and, unclosed, the process: the shm-leak regression).
                if plan.get("segment"):
                    self.arena.release(plan["segment"])
                replies[i] = self._run_degraded(plan, armed)
                continue
            try:
                reply = self._recv(plan["conn"])
            except (TimeoutError, BrokenPipeError, EOFError, OSError):
                self._breakdown()
                replies[i] = self._run_degraded(plan, armed)
                continue
            finally:
                if plan.get("segment"):
                    self.arena.release(plan["segment"])
            if reply[0] == "error":
                record = plan.get("record")
                if record is not None:
                    record.ops.pop()  # the op never (fully) applied
                    record.dead = True  # the worker retired its cache
                if error is None:
                    error = reply[1]
                    error.__cause__ = RuntimeError(reply[2])
                continue
            if mode == "run":
                record = plan["record"]
                record.version += 1
                handle = ResidentHandle(self, record, record.version)
                replies[i] = (reply[1], handle)
            else:  # stateless
                blob, delta = reply[1]
                replies[i] = (delta, load_structure(blob, self._merge_cm))
        if error is not None:
            raise error
        return replies  # type: ignore[return-value]

    def _run_degraded(self, plan: dict, armed: bool) -> tuple:
        """Worker-identical in-process execution (degraded/inline path)."""
        if plan["mode"] == "run":
            record = plan["record"]
            record.ops.pop()  # the op re-runs inline below
            structure = self._rebuild(record, record.version)
            structure.__dict__.pop(_PREV_STAMP, None)
            record.dead = True
            payload = (dump_structure(structure), plan["method"], plan["args"], armed)
        else:
            payload = plan["payload"]
        if plan["mode"] != "inline":
            _telemetry.REGISTRY.counter("repro_executor_degraded_total").inc(1)
        blob, delta = run_task_worker(payload + (_wallclock.monotonic(),))
        return (delta, load_structure(blob, self._merge_cm))


__all__ = ["ResidentHandle", "SharedStateExecutor"]
