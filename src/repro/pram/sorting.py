"""Parallel sorting facade.

Section 2.2: the batch BST of [PP01] yields an ``O(n log n)``-work,
``O(log n)``-depth deterministic parallel sort in CRCW PRAM.  We charge that
and sort with timsort underneath.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Sequence, TypeVar

from ..instrument.work_depth import CostModel

T = TypeVar("T")


def parallel_sort(
    items: Sequence[T],
    key: Optional[Callable[[T], Any]] = None,
    cm: Optional[CostModel] = None,
) -> list[T]:
    """Sort ``items``; charged O(n log n) work, O(log n) depth."""
    n = len(items)
    if cm is not None and n:
        unit = max(1, int(math.ceil(math.log2(max(n, 2)))))
        cm.charge(work=n * unit, depth=unit)
    return sorted(items, key=key)
