"""Resilience subsystem: fault injection, transactions, tiered recovery.

Four layers (docs/ROBUSTNESS.md has the full failure model):

* :mod:`~repro.resilience.faults` — a deterministic, seeded fault injector
  with named injection sites instrumented into the hot paths (token games,
  bundle extraction, substrate batch ops).  Zero overhead while disarmed.
* :mod:`~repro.resilience.guard` — transactional batch application: a
  ``guarded`` context manager plus the ``Transactional`` mixin that makes
  every structure's batch apply-fully-or-rollback (strong exception
  safety).
* :mod:`~repro.resilience.checkpoint` — logical checkpoints (JSON-able)
  for the full ladder structures, extending ``core/snapshot.py`` beyond
  the single orientation, so restart = restore + replay the trace suffix.
* :mod:`~repro.resilience.recovery` — the tiered
  :class:`~repro.resilience.recovery.RecoveryManager`: rollback →
  checkpoint + WAL replay → full rebuild, recording which tier fired.
* :mod:`~repro.resilience.chaos` — the randomized soak harness behind
  ``repro chaos`` and benchmark E20.

``faults`` and ``guard`` import nothing from :mod:`repro.core` at module
scope (the core structures import *them*); the heavier layers are loaded
lazily here to keep the import graph acyclic.
"""

from __future__ import annotations

from . import faults
from .faults import SITES, FaultInjector, FaultSpec, injecting
from .guard import Transactional, capture, guarded, rollback

_LAZY = {
    "checkpoint": ".checkpoint",
    "recovery": ".recovery",
    "chaos": ".chaos",
    "RecoveryManager": ".recovery",
    "ChaosReport": ".chaos",
    "chaos_soak": ".chaos",
    "run_trial": ".chaos",
    "minimize_trial": ".chaos",
}

__all__ = [
    "SITES",
    "FaultInjector",
    "FaultSpec",
    "Transactional",
    "capture",
    "faults",
    "guarded",
    "injecting",
    "rollback",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    """Lazily import the layers that depend on :mod:`repro.core`."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target, __name__)
    if target.lstrip(".") == name:
        return module
    return getattr(module, name)
