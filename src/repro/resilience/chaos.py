"""Chaos soak harness — randomized fault injection over replayed streams.

One *trial* = one structure, one generated update stream, one seeded
:class:`~repro.resilience.faults.FaultInjector` plan.  The stream is
applied through a :class:`~repro.resilience.recovery.RecoveryManager`
while faults fire at the instrumented sites; afterwards the trial is
judged by the full post-recovery audits:

* the managed structure's invariants and (for an orientation) its arc
  set against the ground-truth graph;
* a fault-free :func:`~repro.core.verify.replay_audit` of the committed
  history (orientation trials);
* the coreness/density approximation bands against the exact oracles
  (ladder trials).

The soak aggregates the per-trial
:class:`~repro.instrument.metrics.RecoveryStats` scoreboards into a
:class:`ChaosReport`; ``report.ok`` means every injected fault was
recovered and every audit came back green.  Everything is seeded — a
failing ``(structure, seed, trial)`` triple replays exactly.

The trial body is factored out as :func:`run_trial` so the verify
subsystem can re-run it verbatim: ``chaos_soak(minimize=True)`` shrinks
every failing trial's stream with the ddmin minimizer
(:mod:`repro.verify.minimize`) and, given ``artifact_dir``, writes a
replayable repro artifact per failure (``repro verify --replay``).
"""

from __future__ import annotations

import pathlib
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..config import DEFAULT_CONSTANTS, Constants
from ..core.balanced import BalancedOrientation
from ..core.coreness import CorenessDecomposition
from ..core.density import DensityEstimator
from ..errors import ParameterError, RecoveryError
from ..graphs.graph import norm_edge
from ..graphs.streams import BatchOp, churn, insert_then_delete, sliding_window
from ..instrument.metrics import RecoveryStats, render_table
from ..verify.audits import audit_coreness, audit_density, replay_audit
from .faults import SITES, FaultInjector, FaultSpec, injecting
from .recovery import RecoveryManager

STRUCTURES = ("balanced", "coreness", "density")
_STREAM_KINDS = ("churn", "insert_then_delete", "sliding_window")


@dataclass
class ChaosReport:
    """Aggregate outcome of a chaos soak."""

    structure: str
    trials: int = 0
    batches: int = 0
    faults_planned: int = 0
    faults_fired: int = 0
    stats: RecoveryStats = field(default_factory=RecoveryStats)
    findings: list[str] = field(default_factory=list)
    repros: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"chaos soak [{self.structure}]: "
            f"{'GREEN' if self.ok else 'RED'} — "
            f"{self.trials} trials, {self.batches} batches, "
            f"{self.faults_fired}/{self.faults_planned} planned faults fired",
            self.stats.render(),
        ]
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  - {finding}" for finding in self.findings)
        if self.repros:
            lines.append("minimized repros:")
            lines.extend(f"  - {path}" for path in self.repros)
        return "\n".join(lines)


def _random_edges(rng: random.Random, n: int, count: int) -> list[tuple[int, int]]:
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < count and attempts < 50 * count + 100:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add(norm_edge(u, v))
    return sorted(edges)


def make_stream(
    kind: str, n: int, batches: int, batch_size: int, seed: int
) -> list[BatchOp]:
    """Build one trial stream: a legacy shape or any registered scenario.

    ``kind`` is one of the uniform-random legacy shapes
    (:data:`_STREAM_KINDS`) or a name from the adversarial scenario
    catalog (:mod:`repro.scenarios.registry`) — so every soak entry
    point (chaos trials, E20, ``repro scenarios``) draws workloads from
    one dispatcher.  Deterministic under ``seed``.
    """
    rng = random.Random(seed)
    if kind == "churn":
        return churn(n, batches, batch_size, seed=rng)
    if kind in ("insert_then_delete", "sliding_window"):
        edges = _random_edges(rng, n, max(1, (batches * batch_size) // 2))
        if kind == "insert_then_delete":
            return insert_then_delete(edges, batch_size, seed=rng)
        return sliding_window(edges, window=2, batch_size=batch_size)
    from ..scenarios.registry import ScenarioParams, scenario_stream

    params = ScenarioParams(
        n=max(n, 8), batches=batches, batch_size=batch_size, seed=seed
    )
    return list(scenario_stream(kind, params))


def _make_structure(
    structure: str, n: int, H: int, eps: float, seed: int, constants: Constants
):
    if structure == "balanced":
        return BalancedOrientation(H, constants=constants)
    if structure == "coreness":
        return CorenessDecomposition(n, eps=eps, constants=constants, seed=seed)
    if structure == "density":
        return DensityEstimator(n, eps=eps, constants=constants, seed=seed)
    raise ParameterError(
        f"unknown structure {structure!r}; expected one of {STRUCTURES}"
    )


def run_trial(
    structure: str,
    ops: Sequence[BatchOp],
    injector: FaultInjector,
    *,
    n: int,
    H: int = 4,
    eps: float = 0.35,
    checkpoint_every: int = 5,
    audit_every: int = 1,
    constants: Constants = DEFAULT_CONSTANTS,
    seed: int = 0,
    deep_audit: bool = True,
    tag: str = "trial",
) -> tuple[list[str], RecoveryManager]:
    """One chaos trial, start to verdict: build, inject, recover, audit.

    Returns the findings (empty means the trial is green) and the
    :class:`RecoveryManager` for its stats/history.  Deterministic given
    ``(structure, ops, injector specs+seed, params)`` — the minimizer and
    ``repro verify --replay`` both rely on re-running this verbatim.
    """
    st = _make_structure(structure, n, H, eps, seed, constants)
    manager = RecoveryManager(
        st, checkpoint_every=checkpoint_every, audit_every=audit_every
    )
    findings: list[str] = []
    with injecting(injector):
        for op in ops:
            try:
                manager.apply(op)
            except RecoveryError as exc:
                findings.append(f"{tag}: unrecovered batch: {exc}")
                break
    findings.extend(_trial_findings(manager, tag, H, deep_audit))
    return findings, manager


def minimize_trial(
    structure: str,
    ops: Sequence[BatchOp],
    fault_specs: Sequence[tuple[str, int, str]],
    *,
    injector_seed: int,
    n: int,
    H: int = 4,
    eps: float = 0.35,
    checkpoint_every: int = 5,
    audit_every: int = 1,
    constants: Constants = DEFAULT_CONSTANTS,
    seed: int = 0,
    deep_audit: bool = True,
) -> list[BatchOp]:
    """ddmin-shrink a failing trial's stream; the fault plan is replayed
    fresh (same specs, same seed) against every candidate."""
    from ..verify.minimize import minimize_stream

    def still_fails(candidate: list[BatchOp]) -> bool:
        probe = FaultInjector(
            [FaultSpec(site=s, hit=h, action=a) for s, h, a in fault_specs],
            seed=injector_seed,
        )
        findings, _manager = run_trial(
            structure,
            candidate,
            probe,
            n=n,
            H=H,
            eps=eps,
            checkpoint_every=checkpoint_every,
            audit_every=audit_every,
            constants=constants,
            seed=seed,
            deep_audit=deep_audit,
            tag="minimize",
        )
        return bool(findings)

    return minimize_stream(ops, still_fails)


def chaos_soak(
    structure: str = "balanced",
    *,
    trials: int = 10,
    seed: int = 0,
    n: int = 24,
    batches: int = 20,
    batch_size: int = 6,
    faults_per_trial: int = 2,
    H: int = 4,
    eps: float = 0.35,
    checkpoint_every: int = 5,
    audit_every: int = 1,
    constants: Constants = DEFAULT_CONSTANTS,
    sites: Optional[Sequence[str]] = None,
    deep_audit: bool = True,
    minimize: bool = False,
    artifact_dir: Optional[str | pathlib.Path] = None,
    stream_kinds: Optional[Sequence[str]] = None,
) -> ChaosReport:
    """Run ``trials`` seeded fault-injection trials; fully deterministic.

    Stream shapes rotate per trial through ``stream_kinds`` — by default
    churn / insert-then-delete / sliding-window, so inserts, deletes and
    mixed workloads all see faults; any registered adversarial scenario
    name (:mod:`repro.scenarios`) can stand in, which is how the
    ``repro scenarios`` soak reuses this harness verbatim.
    ``deep_audit=False`` skips the exact-oracle band audits (the
    per-batch health checks and replay audit still run).
    ``minimize=True`` shrinks every failing trial's stream to a minimal
    repro; with ``artifact_dir`` each is written as a replayable artifact
    and listed in ``report.repros``.
    """
    report = ChaosReport(structure=structure)
    site_pool = tuple(sites) if sites is not None else tuple(sorted(SITES))
    kinds = tuple(stream_kinds) if stream_kinds else _STREAM_KINDS
    for trial in range(trials):
        trial_seed = seed * 7919 + trial
        kind = kinds[trial % len(kinds)]
        ops = make_stream(kind, n, batches, batch_size, trial_seed)
        injector_seed = trial_seed ^ 0x5EED
        injector = FaultInjector.plan(
            seed=injector_seed, count=faults_per_trial, sites=site_pool
        )
        spec_triples = tuple((s.site, s.hit, s.action) for s in injector.pending)
        report.faults_planned += len(injector.pending)
        tag = f"trial {trial} ({kind}, seed {trial_seed})"
        findings, manager = run_trial(
            structure,
            ops,
            injector,
            n=n,
            H=H,
            eps=eps,
            checkpoint_every=checkpoint_every,
            audit_every=audit_every,
            constants=constants,
            seed=trial_seed,
            deep_audit=deep_audit,
            tag=tag,
        )
        report.faults_fired += len(injector.fired)
        report.trials += 1
        report.batches += manager.stats.batches
        report.stats.merge(manager.stats)
        report.findings.extend(findings)
        if findings and minimize:
            _minimize_and_record(
                report,
                structure,
                ops,
                spec_triples,
                trial=trial,
                injector_seed=injector_seed,
                n=n,
                H=H,
                eps=eps,
                checkpoint_every=checkpoint_every,
                audit_every=audit_every,
                constants=constants,
                seed=trial_seed,
                deep_audit=deep_audit,
                artifact_dir=artifact_dir,
            )
    return report


def _minimize_and_record(
    report: ChaosReport,
    structure: str,
    ops: Sequence[BatchOp],
    spec_triples: Sequence[tuple[str, int, str]],
    *,
    trial: int,
    injector_seed: int,
    n: int,
    H: int,
    eps: float,
    checkpoint_every: int,
    audit_every: int,
    constants: Constants,
    seed: int,
    deep_audit: bool,
    artifact_dir: Optional[str | pathlib.Path],
) -> None:
    minimal = minimize_trial(
        structure,
        ops,
        spec_triples,
        injector_seed=injector_seed,
        n=n,
        H=H,
        eps=eps,
        checkpoint_every=checkpoint_every,
        audit_every=audit_every,
        constants=constants,
        seed=seed,
        deep_audit=deep_audit,
    )
    report.findings.append(
        f"trial {trial}: minimized to {len(minimal)} batch(es), "
        f"{sum(op.size for op in minimal)} edge(s)"
    )
    if artifact_dir is None:
        return
    from ..verify.artifact import write_artifact

    path = write_artifact(
        pathlib.Path(artifact_dir) / f"repro_{structure}_trial{trial}.json",
        kind="chaos",
        ops=minimal,
        params={
            "n": n,
            "H": H,
            "eps": eps,
            "checkpoint_every": checkpoint_every,
            "audit_every": audit_every,
            "seed": seed,
            "injector_seed": injector_seed,
            "deep_audit": deep_audit,
        },
        structure=structure,
        faults=spec_triples,
        constants=constants,
        expected={"findings": ">= 1"},
    )
    report.repros.append(str(path))


def _trial_findings(
    manager: RecoveryManager,
    tag: str,
    H: int,
    deep_audit: bool,
) -> list[str]:
    findings: list[str] = []
    final = manager.audit()
    if not final.ok:
        findings.append(f"{tag}: final audit red: {final.render()}")
        return findings
    st = manager.structure
    if isinstance(st, BalancedOrientation):
        replay = replay_audit(manager.history, H=H, constants=st.constants)
        if not replay.ok:
            findings.append(f"{tag}: replay audit red: {replay.render()}")
    elif deep_audit:
        if isinstance(st, CorenessDecomposition):
            band = audit_coreness(st, manager.graph)
        else:
            band = audit_density(st, manager.graph)
        if not band.ok:
            findings.append(f"{tag}: band audit red: {band.render()}")
    return findings


def render_soak_summary(reports: Sequence[ChaosReport]) -> str:
    """One table over several structure soaks (the E20 report format)."""
    rows = []
    for r in reports:
        rows.append(
            [
                r.structure,
                r.trials,
                r.batches,
                r.faults_fired,
                r.stats.counts.get("rollback", 0),
                r.stats.counts.get("checkpoint", 0),
                r.stats.counts.get("rebuild", 0),
                "GREEN" if r.ok else "RED",
            ]
        )
    return render_table(
        [
            "structure",
            "trials",
            "batches",
            "faults",
            "t1 rollback",
            "t2 checkpoint",
            "t3 rebuild",
            "verdict",
        ],
        rows,
    )
