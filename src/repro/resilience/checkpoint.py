"""Logical checkpoints for the full ladder structures (JSON-able).

``core/snapshot.py`` checkpoints a single ``BALANCED(H)``; a production
restart needs the same story for the Theorem 1.1/1.2 ladders.  A ladder
checkpoint records the *construction parameters* (n, eps, seed, h_max,
constants) plus, per rung, the logical state of every inner balanced
orientation (arcs + levels).  Restoring builds a fresh ladder from the
parameters — which deterministically reproduces the rung skeleton,
regimes, duplication factors and sampler seeds — and then re-files each
inner orientation through the audited ``_arc_add`` funnel.

Together with the write-ahead trace log
(:class:`~repro.graphs.tracefile.TraceWriter`), restart becomes
*restore checkpoint + replay the trace suffix*; the
:class:`~repro.resilience.recovery.RecoveryManager` packages both.

All malformed-payload errors surface as :class:`~repro.errors.BatchError`
or :class:`~repro.errors.ParameterError` with a clear message, matching
the hardened ``core/snapshot.py`` contract.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Optional

from ..config import Constants
from ..errors import BatchError
from ..graphs.graph import norm_edge
from ..instrument.work_depth import CostModel
from .guard import _rebuild_balanced


def _balanced_state(bal: Any) -> dict[str, Any]:
    """Logical (arcs, levels) of one inner orientation — JSON-able."""
    return {
        "arcs": [list(a) for a in sorted(bal.arcs())],
        "levels": {str(v): lvl for v, lvl in sorted(bal.level.items()) if lvl},
    }


def _load_balanced_state(bal: Any, state: dict[str, Any]) -> None:
    """Re-file a freshly constructed orientation from a saved state."""
    if not isinstance(state, dict) or "arcs" not in state or "levels" not in state:
        raise BatchError("checkpoint rung state missing 'arcs'/'levels'")
    try:
        levels = {int(v): int(lvl) for v, lvl in dict(state["levels"]).items()}
        arcs = [(int(t), int(h), int(c)) for t, h, c in state["arcs"]]
    except (TypeError, ValueError) as exc:
        raise BatchError(f"checkpoint rung state is malformed: {exc}") from exc
    tail_of: dict[tuple[int, int, int], int] = {}
    for tail, head, copy in arcs:
        a, b = norm_edge(tail, head)
        key = (a, b, copy)
        if key in tail_of:
            raise BatchError(f"checkpoint rung state repeats arc {key}")
        tail_of[key] = tail
        levels.setdefault(tail, 0)
    snap = {
        "tail_of": tail_of,
        "level": levels,
        "vertex_label": {},
        "journals": ([], [], []),
    }
    _rebuild_balanced(bal, snap)


# -- checkpoint (structure -> payload) ----------------------------------------


def checkpoint(st: Any) -> dict[str, Any]:
    """A JSON-able checkpoint payload for any supported structure."""
    from ..core.balanced import BalancedOrientation
    from ..core.coreness import CorenessDecomposition
    from ..core.density import DensityEstimator

    if isinstance(st, BalancedOrientation):
        from ..core.snapshot import snapshot

        snap = snapshot(st)
        return {
            "type": "balanced",
            "H": snap["H"],
            "substrate": snap["substrate"],
            "arcs": [list(a) for a in snap["arcs"]],
            "levels": {str(v): lvl for v, lvl in snap["levels"].items()},
        }
    if isinstance(st, (CorenessDecomposition, DensityEstimator)):
        kind = "coreness" if isinstance(st, CorenessDecomposition) else "density"
        # Deferred rungs (rung-skip filtering) are brought up to date first:
        # the payload schema stays purely logical (per-rung arcs + levels),
        # and a restored ladder — which always comes up serial with
        # filtering off — needs no queue state.  No-op when skip is off.
        st.flush_all_pending()
        payload: dict[str, Any] = {
            "type": kind,
            "n": st.n,
            "eps": st.eps,
            "seed": st.seed,
            "h_max": st.h_max,
            "substrate": st.substrate,
            "constants": asdict(st.constants),
            "rungs": [_rung_state(rung) for rung in st.rungs],
        }
        if kind == "coreness":
            payload["touched"] = sorted(st._touched)
        return payload
    raise BatchError(f"cannot checkpoint {type(st).__name__}")


def _rung_state(rung: Any) -> dict[str, Any]:
    if hasattr(rung, "bal"):  # FixedHCorenessEstimator
        inner = rung.dup.inner if rung.dup is not None else rung.bal
        return {"inner": _balanced_state(inner)}
    # FixedHDensityGuard
    state: dict[str, Any] = {
        "changed": [list(e) for e in sorted(rung.changed_edges)],
    }
    if rung.dup is not None:
        state["dup"] = _balanced_state(rung.dup.inner)
    else:
        state["buckets"] = {
            str(i): _balanced_state(bucket) for i, bucket in rung._buckets.items()
        }
    return state


# -- restore (payload -> structure) -------------------------------------------


def restore_checkpoint(payload: dict[str, Any], cm: Optional[CostModel] = None) -> Any:
    """Rebuild a structure from a :func:`checkpoint` payload and verify it."""
    if not isinstance(payload, dict):
        raise BatchError("checkpoint payload must be a mapping")
    kind = payload.get("type")
    if kind == "balanced":
        from ..core.snapshot import restore

        snap = {
            "H": payload.get("H"),
            "substrate": payload.get("substrate", "treap"),
            "arcs": [tuple(a) for a in payload.get("arcs", [])],
            "levels": payload.get("levels", {}),
        }
        return restore(snap, cm=cm)
    if kind not in ("coreness", "density"):
        raise BatchError(f"unknown checkpoint type {kind!r}")
    for key in ("n", "eps", "seed", "constants", "rungs"):
        if key not in payload:
            raise BatchError(f"checkpoint missing key {key!r}")
    try:
        constants = Constants(**dict(payload["constants"]))
    except TypeError as exc:
        raise BatchError(f"checkpoint constants are malformed: {exc}") from exc

    from ..core.coreness import CorenessDecomposition
    from ..core.density import DensityEstimator

    cls = CorenessDecomposition if kind == "coreness" else DensityEstimator
    st = cls(
        int(payload["n"]),
        eps=float(payload["eps"]),
        cm=cm,
        constants=constants,
        seed=int(payload["seed"]),
        h_max=payload.get("h_max"),
        substrate=payload.get("substrate", "treap"),
    )
    rungs = payload["rungs"]
    if len(rungs) != len(st.rungs):
        raise BatchError(
            f"checkpoint has {len(rungs)} rungs but the ladder rebuilt with "
            f"{len(st.rungs)} — parameters and checkpoint disagree"
        )
    for rung, state in zip(st.rungs, rungs):
        _load_rung_state(rung, state)
    if kind == "coreness":
        st._touched = {int(v) for v in payload.get("touched", [])}
    st.check_invariants()
    return st


def _load_rung_state(rung: Any, state: dict[str, Any]) -> None:
    if not isinstance(state, dict):
        raise BatchError("checkpoint rung entry must be a mapping")
    if hasattr(rung, "bal"):  # coreness rung
        if "inner" not in state:
            raise BatchError("coreness rung state missing 'inner'")
        inner = rung.dup.inner if rung.dup is not None else rung.bal
        _load_balanced_state(inner, state["inner"])
        return
    # density rung
    try:
        rung.changed_edges = {
            norm_edge(int(a), int(b)) for a, b in state.get("changed", [])
        }
    except (TypeError, ValueError) as exc:
        raise BatchError(f"density rung 'changed' is malformed: {exc}") from exc
    if rung.dup is not None:
        if "dup" not in state:
            raise BatchError("duplication-regime rung state missing 'dup'")
        _load_balanced_state(rung.dup.inner, state["dup"])
    else:
        buckets = state.get("buckets")
        if not isinstance(buckets, dict):
            raise BatchError("bucket-regime rung state missing 'buckets'")
        rung._buckets = {}
        for key, bucket_state in buckets.items():
            try:
                index = int(key)
            except (TypeError, ValueError) as exc:
                raise BatchError(f"bucket index {key!r} is not an int") from exc
            if not (0 <= index < rung.T):
                raise BatchError(f"bucket index {index} outside [0, {rung.T})")
            _load_balanced_state(rung._bucket(index), bucket_state)


# -- JSON helpers -------------------------------------------------------------


def to_json(st: Any) -> str:
    """Serialise a structure checkpoint to a JSON string."""
    return json.dumps(checkpoint(st))


def from_json(text: str, cm: Optional[CostModel] = None) -> Any:
    """Rebuild a structure from :func:`to_json` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BatchError(f"checkpoint is not valid JSON: {exc}") from exc
    return restore_checkpoint(payload, cm=cm)
