"""Deterministic, seeded fault injection with named sites.

The dynamic structures' hot paths are instrumented with *injection sites*
(the :data:`SITES` catalogue): one guarded call per token-game phase,
settlement, bundle extraction and substrate batch operation.  While no
injector is armed the instrumentation is a single module-global ``is
None`` check — measurably free (benchmark E20 times it).

Arming an injector makes every site traversal count a *hit*; a
:class:`FaultSpec` names a site, a 1-based hit number, and an action:

* ``"raise"``   — raise :class:`~repro.errors.FaultInjected` (the crash
  model: a batch dies half-way through a token game);
* ``"delay"``   — charge a large lump of work/depth to the structure's
  cost model (the straggler model: a slow site, visible in metrics);
* ``"corrupt"`` — silently bump one recorded level of the structure (the
  bit-flip model: no exception, only a later audit can catch it).

Specs fire once and disarm, so a retry after recovery succeeds — exactly
the transient-fault model the recovery tiers are built for.  Everything is
driven by an explicit seed: the same (specs, seed, workload) replays the
same failure, which is what makes chaos findings debuggable.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from ..errors import FaultInjected, ParameterError

#: Catalogue of instrumented sites (see docs/ROBUSTNESS.md for the map of
#: what state is in flight at each).  ``fire`` rejects unknown names so a
#: typo in a chaos plan fails loudly instead of silently never firing.
SITES: frozenset[str] = frozenset(
    {
        "tokens.drop.phase",  # start of each token-dropping phase
        "tokens.drop.settle",  # before insert settlement (levels catch up)
        "tokens.push.phase",  # start of each token-pushing phase
        "tokens.push.settle",  # before delete settlement
        "bundles.extract",  # start of ExtractTokenBundle
        "bundles.partition",  # deletion-token partitioning
        "pbst.batch_insert",  # BatchOrderedSet.batch_insert
        "pbst.batch_delete",  # BatchOrderedSet.batch_delete
        "hashtable.batch_set",  # BatchHashTable.batch_set
        "hashtable.batch_delete",  # BatchHashTable.batch_delete
    }
)

ACTIONS = ("raise", "delay", "corrupt")


@dataclass
class FaultSpec:
    """One planned fault: fire ``action`` on the ``hit``-th traversal of ``site``."""

    site: str
    hit: int = 1
    action: str = "raise"
    delay_work: int = 10_000  # lump charged by the "delay" action
    armed: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ParameterError(
                f"unknown fault site {self.site!r}; known sites: {sorted(SITES)}"
            )
        if self.action not in ACTIONS:
            raise ParameterError(
                f"unknown fault action {self.action!r}; known: {ACTIONS}"
            )
        if self.hit < 1:
            raise ParameterError(f"hit must be >= 1, got {self.hit}")


class FaultInjector:
    """Counts site traversals and fires matching :class:`FaultSpec` actions.

    ``fired`` records ``(site, hit, action)`` triples for every fault that
    actually triggered — chaos reports count them, and tests assert a
    planned fault really happened rather than silently overshooting its
    hit number.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: list[FaultSpec] = list(specs)
        self.rng = random.Random(seed)
        self.hits: dict[str, int] = {}
        self.fired: list[tuple[str, int, str]] = []

    @classmethod
    def plan(
        cls,
        seed: int,
        count: int = 1,
        sites: Optional[Iterable[str]] = None,
        max_hit: int = 3,
        actions: Iterable[str] = ACTIONS,
    ) -> "FaultInjector":
        """A randomized-but-reproducible plan of ``count`` faults."""
        rng = random.Random(seed)
        pool = sorted(sites) if sites is not None else sorted(SITES)
        actions = list(actions)
        specs = [
            FaultSpec(
                site=rng.choice(pool),
                hit=rng.randint(1, max_hit),
                action=rng.choice(actions),
            )
            for _ in range(count)
        ]
        return cls(specs, seed=seed)

    # -- the hot-path entry point -------------------------------------------

    def fire(self, site: str, state: Any = None) -> None:
        """Record one traversal of ``site`` and trigger any matching spec."""
        if site not in SITES:
            raise ParameterError(f"unknown fault site {site!r}")
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for spec in self.specs:
            if spec.armed and spec.site == site and spec.hit == hit:
                spec.armed = False
                self.fired.append((site, hit, spec.action))
                self._act(spec, site, hit, state)

    def _act(self, spec: FaultSpec, site: str, hit: int, state: Any) -> None:
        if spec.action == "raise":
            raise FaultInjected(site, hit)
        if spec.action == "delay":
            cm = getattr(state, "cm", None)
            if cm is not None:
                cm.charge(work=spec.delay_work, depth=spec.delay_work)
                cm.count("fault_delays")
            return
        # "corrupt": bump one recorded level — silent, only audits can see it
        level = getattr(state, "level", None)
        if level:
            victim = self.rng.choice(sorted(level))
            level[victim] += 1
            cm = getattr(state, "cm", None)
            if cm is not None:
                cm.count("fault_corruptions")

    # -- bookkeeping ---------------------------------------------------------

    @property
    def pending(self) -> list[FaultSpec]:
        """Specs that have not fired yet."""
        return [s for s in self.specs if s.armed]


#: The armed injector, or None.  Hot paths check ``ACTIVE is not None``
#: inline, which is the entire disabled-path cost.
ACTIVE: Optional[FaultInjector] = None


@contextmanager
def injecting(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Arm ``injector`` for the duration of the block (re-entrant safe)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = injector
    try:
        yield injector
    finally:
        ACTIVE = previous
