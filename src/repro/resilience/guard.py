"""Transactional batch application — strong exception safety for batches.

A batch that dies half-way through a token game leaves ``BALANCED(H)``
with frozen levels, leftover vertex labels and a half-flipped arc set.
:func:`guarded` makes every batch atomic: it captures a *logical snapshot*
(the arc/level/label dictionaries — O(m) dict copies, no treap or index
state) before the batch and, if anything raises, rebuilds the structure
in place from the snapshot through the same audited ``_arc_add`` funnel
the ordinary restore path uses.  After a rollback the structure is
logically identical to its pre-batch state and ``check_invariants()``
passes; the exception is then re-raised for the caller (typically the
:class:`~repro.resilience.recovery.RecoveryManager`) to handle.

:class:`Transactional` is the mixin the public structures inherit
(``BalancedOrientation``, ``CorenessDecomposition``, ``DensityEstimator``);
it exposes ``guarded_insert_batch`` / ``guarded_delete_batch`` /
``guarded_update_batch`` so callers opt into atomicity per call — the raw
batch methods stay exactly as fast as before.

This module deliberately imports nothing from :mod:`repro.core` at module
scope (core imports *it* for the mixin); :func:`capture` and
:func:`rollback` dispatch on structural attributes instead of types:

========================  =========================================
attribute fingerprint     structure
========================  =========================================
``tail_of``               ``BalancedOrientation``
``inner``                 ``DuplicatedBalanced``
``_buckets``              ``FixedHDensityGuard`` (either regime)
``bal``                   ``FixedHCorenessEstimator`` (either regime)
``rungs``                 ``CorenessDecomposition`` / ``DensityEstimator``
``guard``                 ``LowOutDegree``
========================  =========================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import ParameterError

Snapshot = dict[str, Any]


# -- capture ------------------------------------------------------------------


def capture(st: Any) -> Snapshot:
    """Logical pre-batch snapshot of any supported dynamic structure."""
    if hasattr(st, "tail_of"):  # BalancedOrientation
        cm = getattr(st, "cm", None)
        if cm is not None:
            # snapshotting is a parallel copy of the logical dictionaries
            cm.charge(work=len(st.tail_of) + len(st.level) + 1, depth=1)
        return {
            "kind": "balanced",
            "tail_of": dict(st.tail_of),
            "level": dict(st.level),
            "vertex_label": dict(st.vertex_label),
            "journals": (
                list(st.last_reversed),
                list(st.last_inserted),
                list(st.last_deleted),
            ),
        }
    if hasattr(st, "inner"):  # DuplicatedBalanced
        return {"kind": "duplicated", "inner": capture(st.inner)}
    if hasattr(st, "_buckets"):  # FixedHDensityGuard
        return {
            "kind": "density_guard",
            "changed": set(st.changed_edges),
            "dup": capture(st.dup) if st.dup is not None else None,
            "buckets": {i: capture(b) for i, b in st._buckets.items()},
        }
    if hasattr(st, "bal"):  # FixedHCorenessEstimator
        return {
            "kind": "coreness_fixed",
            "inner": capture(st.dup if st.dup is not None else st.bal),
        }
    if hasattr(st, "rungs"):  # CorenessDecomposition / DensityEstimator
        snap: Snapshot = {
            "kind": "ladder",
            "rungs": [capture(rung) for rung in st.rungs],
            "touched": set(st._touched) if hasattr(st, "_touched") else None,
        }
        if hasattr(st, "_pending"):
            # rung-skip filtering state: a rolled-back batch must also undo
            # what it queued on deferred rungs and its degree bookkeeping
            # (the degree bound stays a sound certificate either way, but
            # exact restore keeps skip decisions replay-identical).
            snap["skip"] = {
                "pending": [list(queue) for queue in st._pending],
                "live": list(st._live),
                "deg": dict(st._deg),
                "deg_bound": st._deg_bound,
            }
        return snap
    if hasattr(st, "guard"):  # LowOutDegree
        return {
            "kind": "lowoutdegree",
            "guard": capture(st.guard),
            "tail": dict(st._tail),
            "out": {v: set(heads) for v, heads in st._out.items()},
            "d_ins": dict(st.d_ins.items()),
            "d_del": dict(st.d_del.items()),
        }
    raise ParameterError(
        f"cannot capture {type(st).__name__}: not a known dynamic structure"
    )


# -- rollback -----------------------------------------------------------------


def rollback(st: Any, snap: Snapshot) -> None:
    """Rebuild ``st`` in place so it is logically equal to ``snap``."""
    kind = snap["kind"]
    if kind == "balanced":
        _rebuild_balanced(st, snap)
    elif kind == "duplicated":
        rollback(st.inner, snap["inner"])
    elif kind == "density_guard":
        st.changed_edges = set(snap["changed"])
        if snap["dup"] is not None:
            rollback(st.dup, snap["dup"])
        st._buckets = {}
        for i, bucket_snap in snap["buckets"].items():
            rollback(st._bucket(i), bucket_snap)
    elif kind == "coreness_fixed":
        rollback(st.dup if st.dup is not None else st.bal, snap["inner"])
    elif kind == "ladder":
        for rung, rung_snap in zip(st.rungs, snap["rungs"]):
            rollback(rung, rung_snap)
        if snap["touched"] is not None:
            st._touched = set(snap["touched"])
        skip = snap.get("skip")
        if skip is not None:
            st._pending = [list(queue) for queue in skip["pending"]]
            st._live = list(skip["live"])
            st._deg = dict(skip["deg"])
            st._deg_bound = skip["deg_bound"]
        if hasattr(st, "_reset_query_caches"):
            # memoised answers may describe the failed batch's state
            st._reset_query_caches()
    elif kind == "lowoutdegree":
        rollback(st.guard, snap["guard"])
        st._tail = dict(snap["tail"])
        st._out = {v: set(heads) for v, heads in snap["out"].items()}
        st.d_ins = _rebuild_table(st, snap["d_ins"])
        st.d_del = _rebuild_table(st, snap["d_del"])
    else:  # pragma: no cover - capture() only emits the kinds above
        raise ParameterError(f"unknown snapshot kind {kind!r}")


def _rebuild_balanced(st: Any, snap: Snapshot) -> None:
    """Reset a ``BalancedOrientation`` and re-file every snapshot arc.

    Pre-seeding levels and labels before the ``_arc_add`` loop makes every
    arc file under its final (tr, label, lev) key immediately — the same
    trick ``core/snapshot.py`` uses, at the same O(m H log n) cost (charged
    through ``_arc_add``).
    """
    if hasattr(st, "_reset_storage"):
        st._reset_storage()  # preserves the substrate's container classes
    else:  # pragma: no cover - every BalancedOrientation has _reset_storage
        st.out = {}
        st.inx = {}
        st.tr_of = {}
        st.label_of = {}
        st.tail_of = {}
    st.level = dict(snap["level"])
    st.vertex_label = dict(snap["vertex_label"])
    for (a, b, copy), tail in snap["tail_of"].items():
        st._arc_add(tail, b if tail == a else a, copy)
    reversed_, inserted, deleted = snap["journals"]
    st.last_reversed = list(reversed_)
    st.last_inserted = list(inserted)
    st.last_deleted = list(deleted)


def _rebuild_table(st: Any, items: dict) -> Any:
    from ..hashtable.batch_table import BatchHashTable

    table = BatchHashTable(cm=st.cm)
    if items:
        table.batch_set(items.items())
    return table


# -- the transaction ----------------------------------------------------------


@contextmanager
def guarded(st: Any) -> Iterator[Snapshot]:
    """Run a batch transactionally: on any exception, roll back and re-raise.

    Usage::

        with guarded(structure):
            structure.insert_batch(edges)

    On normal exit the snapshot is simply dropped.  On exception the
    structure is rebuilt from the snapshot (strong exception safety), a
    ``guard_rollbacks`` counter is bumped on its cost model, and the
    original exception propagates.
    """
    snap = capture(st)
    try:
        yield snap
    except BaseException:
        rollback(st, snap)
        cm = getattr(st, "cm", None)
        if cm is not None:
            cm.count("guard_rollbacks")
        raise


class Transactional:
    """Mixin adding strongly exception-safe batch entry points.

    The raw ``insert_batch`` / ``delete_batch`` methods keep their cost
    profile; these wrappers add the snapshot/rollback envelope for callers
    that need the all-or-nothing guarantee (services, the recovery
    manager, the chaos harness).
    """

    def guarded_insert_batch(self, edges) -> None:
        with guarded(self):
            self.insert_batch(edges)

    def guarded_delete_batch(self, edges) -> None:
        with guarded(self):
            self.delete_batch(edges)

    def guarded_update_batch(self, insertions=(), deletions=()) -> None:
        with guarded(self):
            self.update_batch(insertions=insertions, deletions=deletions)
