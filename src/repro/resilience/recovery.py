"""Tiered recovery manager — rollback, checkpoint replay, full rebuild.

The :class:`RecoveryManager` wraps one dynamic structure
(``BalancedOrientation``, ``CorenessDecomposition`` or
``DensityEstimator``) and applies every batch through an escalation
ladder, cheapest remedy first:

* **tier 1 — rollback.**  The batch runs inside
  :func:`~repro.resilience.guard.guarded`, so any exception (an injected
  fault, a :class:`~repro.errors.ConvergenceError`, a half-applied token
  game) rolls the structure back to its pre-batch state; the batch is
  retried once on the restored state.
* **tier 2 — checkpoint + WAL replay.**  If the rolled-back state itself
  is unhealthy, or the retry fails again, the manager restores the last
  in-memory checkpoint and replays the committed history suffix — the
  restart story (restore + replay) run in-process.
* **tier 3 — full rebuild.**  As a last resort the structure is rebuilt
  from the ground-truth :class:`~repro.graphs.graph.DynamicGraph`
  (``core/bulk.py`` for a single orientation; fresh construction plus
  chunked re-insertion for the ladders).

If every tier fails, :class:`~repro.errors.RecoveryError` propagates.
Each batch's outcome ("ok", "rollback", "checkpoint", "rebuild") is
recorded in a :class:`~repro.instrument.metrics.RecoveryStats` scoreboard
and counted on the cost model, and silent corruption (a fault that
*mutated* rather than raised) is caught by a post-commit health audit
that triggers the same tier-2/tier-3 repair.

``save``/``load`` extend the same machinery across restarts: ``save``
writes a full-ladder checkpoint (``resilience/checkpoint.py``) next to a
sealed write-ahead trace log, and ``load`` restores the checkpoint and
replays the trace suffix.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional

from ..core.balanced import BalancedOrientation
from ..verify.audits import AuditReport, audit_orientation
from ..errors import BatchError, RecoveryError
from ..graphs.graph import DynamicGraph, normalize_batch
from ..graphs.streams import BatchOp
from ..graphs.tracefile import TraceWriter, iter_trace
from ..instrument import trace as _trace
from ..instrument.metrics import RecoveryStats
from . import checkpoint as ckpt
from .guard import capture, guarded, rollback


class RecoveryManager:
    """Apply batches with the rollback → checkpoint → rebuild ladder."""

    def __init__(
        self,
        structure: Any,
        *,
        checkpoint_every: int = 16,
        audit_every: int = 1,
        max_recovery_rounds: int = 3,
        max_rebuild_attempts: int = 3,
        rebuild_chunk: int = 128,
        wal_path: Optional[str | pathlib.Path] = None,
        graph: Optional[DynamicGraph] = None,
        history: Optional[list[BatchOp]] = None,
        bounded_history: bool = False,
    ) -> None:
        self.structure = structure
        self.cm = structure.cm
        self.graph = graph if graph is not None else DynamicGraph(0)
        self.history: list[BatchOp] = list(history or [])
        #: total batches ever committed; ``>= len(self.history)`` once a
        #: bounded-history manager has trimmed (positions stay absolute).
        self.applied = len(self.history)
        self.bounded_history = bounded_history
        self.checkpoint_every = max(1, checkpoint_every)
        self.audit_every = audit_every
        self.max_recovery_rounds = max(1, max_recovery_rounds)
        self.max_rebuild_attempts = max(1, max_rebuild_attempts)
        self.rebuild_chunk = max(1, rebuild_chunk)
        self.stats = RecoveryStats()
        self.writer = TraceWriter(wal_path) if wal_path is not None else None
        self._ckpt = capture(structure)
        self._ckpt_pos = self.applied
        if not self.healthy():
            raise BatchError(
                "RecoveryManager: structure and ground-truth graph disagree "
                "at construction"
            )

    # -- the public entry point ------------------------------------------------

    def apply(self, op: BatchOp) -> str:
        """Apply one batch, recovering from failures; returns the outcome tier.

        Invalid batches (duplicate edges, inserting a live edge, deleting
        an absent one) raise :class:`~repro.errors.BatchError` without
        touching the structure — that is caller error, not a fault.
        """
        self._validate(op)
        with _trace.span("recovery.apply", detail={"kind": op.kind, "edges": op.size}):
            outcome = "ok"
            exc = self._try(op)
            if exc is not None:
                _trace.event(
                    "recovery.escalate",
                    tier="rollback",
                    batch=self.applied,
                    error=type(exc).__name__,
                )
                outcome = self._recover_and_retry(op, exc)
            self._commit(op)
            if self.audit_every and self.applied % self.audit_every == 0:
                if not self.healthy():
                    _trace.event(
                        "recovery.escalate",
                        tier="post-commit-audit",
                        batch=self.applied,
                    )
                    outcome = self._repair_in_place()
        self.stats.record(outcome)
        _trace.event("recovery.outcome", outcome=outcome, batch=self.applied)
        if outcome != "ok":
            self.cm.count(f"recovery_{outcome}")
        if self.applied - self._ckpt_pos >= self.checkpoint_every:
            self._ckpt = capture(self.structure)
            self._ckpt_pos = self.applied
            if self.bounded_history:
                # Tier 2 only ever replays the post-checkpoint suffix, so
                # everything up to the checkpoint can be forgotten — this is
                # what keeps out-of-core replays (E23) at window-sized memory.
                # The trade-off: ``save()`` needs the full history for its
                # WAL and refuses once trimmed.
                self.history.clear()
        return outcome

    def close(self) -> None:
        """Seal the write-ahead log, if any."""
        if self.writer is not None:
            self.writer.close()

    # -- health ------------------------------------------------------------------

    def healthy(self) -> bool:
        """Structure invariants hold (and, for an orientation, its edge set
        matches the ground truth)."""
        try:
            self.structure.check_invariants()
        except Exception:
            return False
        if isinstance(self.structure, BalancedOrientation):
            ours = {(a, b) for (a, b, _copy) in self.structure.tail_of}
            if ours != self.graph.edges:
                return False
        return True

    def audit(self) -> AuditReport:
        """A full audit of the managed structure against the ground truth."""
        if isinstance(self.structure, BalancedOrientation):
            return audit_orientation(self.structure, self.graph)
        report = AuditReport(f"{type(self.structure).__name__} invariants")
        try:
            self.structure.check_invariants()
        except Exception as exc:
            report.add(str(exc))
        return report

    # -- internals ----------------------------------------------------------------

    def _validate(self, op: BatchOp) -> None:
        batch = normalize_batch(op.edges)
        for e in batch:
            if op.kind == "insert" and e in self.graph.edges:
                raise BatchError(f"inserting live edge {e}")
            if op.kind == "delete" and e not in self.graph.edges:
                raise BatchError(f"deleting absent edge {e}")

    def _apply_raw(self, op: BatchOp) -> None:
        if op.kind == "insert":
            self.structure.insert_batch(op.edges)
        else:
            self.structure.delete_batch(op.edges)

    def _try(self, op: BatchOp) -> Optional[BaseException]:
        """One guarded attempt; returns the exception instead of raising."""
        try:
            with guarded(self.structure):
                self._apply_raw(op)
        except RecoveryError:
            raise
        except BaseException as exc:
            return exc
        return None

    def _commit(self, op: BatchOp) -> None:
        if op.kind == "insert":
            self.graph.insert_batch(op.edges)
        else:
            self.graph.delete_batch(op.edges)
        self.history.append(op)
        self.applied += 1
        if self.writer is not None:
            self.writer.append(op)

    def _recover_and_retry(self, op: BatchOp, first_exc: BaseException) -> str:
        """Escalate until the batch applies; returns the deepest tier used.

        A burst of transient faults can outlast one pass (the tier-1 retry
        faults again, the tier-2 replay faults, ...), so the whole ladder
        runs up to ``max_recovery_rounds`` times — each round either
        consumes faults or lands the batch.
        """
        deepest = "rollback"
        last: Optional[BaseException] = first_exc
        for _round in range(self.max_recovery_rounds):
            # Tier 1: guarded() already rolled back; retry on that state.
            if self.healthy() and self._try(op) is None:
                return deepest
            # Tier 2: restore the last checkpoint and replay the suffix.
            deepest = "rebuild" if deepest == "rebuild" else "checkpoint"
            _trace.event(
                "recovery.escalate", tier="checkpoint", batch=self.applied
            )
            if self._tier2_restore() and self._try(op) is None:
                return deepest
            # Tier 3: rebuild from the ground truth.
            deepest = "rebuild"
            _trace.event("recovery.escalate", tier="rebuild", batch=self.applied)
            try:
                self._tier3_rebuild()
            except RecoveryError as exc:
                last = exc
                continue
            if self._try(op) is None:
                return deepest
        raise RecoveryError(
            f"batch of {len(op.edges)} {op.kind}s failed after "
            f"{self.max_recovery_rounds} recovery rounds "
            f"(first failure: {first_exc!r}, last: {last!r})"
        )

    def _repair_in_place(self) -> str:
        """Post-commit corruption: history already includes the bad batch."""
        if self._tier2_restore():
            return "checkpoint"
        self._tier3_rebuild()
        if self.healthy():
            return "rebuild"
        raise RecoveryError(
            "structure still unhealthy after a full rebuild from the "
            "ground-truth graph"
        )

    def _tier2_restore(self) -> bool:
        """Checkpoint + WAL-suffix replay; False means escalate."""
        self.cm.count("recovery_tier2_replays")
        try:
            rollback(self.structure, self._ckpt)
            # ``_ckpt_pos`` is absolute; the list may start later if a
            # bounded-history manager trimmed the prefix.
            start = self._ckpt_pos - (self.applied - len(self.history))
            for past in self.history[max(0, start) :]:
                self._apply_raw(past)
        except BaseException:
            return False
        return self.healthy()

    def _tier3_rebuild(self) -> None:
        """Rebuild from the ground-truth graph (raises RecoveryError if
        every attempt fails — e.g. faults keep firing mid-rebuild)."""
        prev_touched = set(getattr(self.structure, "_touched", ()))
        last: Optional[BaseException] = None
        for _attempt in range(self.max_rebuild_attempts):
            self.cm.count("recovery_rebuild_attempts")
            try:
                fresh = self._build_from_graph()
                rollback(self.structure, capture(fresh))
                if hasattr(self.structure, "_touched"):
                    self.structure._touched |= prev_touched
                if self.healthy():
                    return
            except BaseException as exc:
                last = exc
        raise RecoveryError(
            f"all {self.max_rebuild_attempts} rebuild attempts failed "
            f"(last error: {last!r})"
        )

    def _build_from_graph(self) -> Any:
        st = self.structure
        edges = sorted(self.graph.edges)
        if isinstance(st, BalancedOrientation):
            from ..core.bulk import from_graph

            return from_graph(edges, st.H, cm=self.cm, constants=st.constants)
        fresh = type(st)(
            st.n,
            eps=st.eps,
            cm=self.cm,
            constants=st.constants,
            seed=st.seed,
            h_max=st.h_max,
        )
        for i in range(0, len(edges), self.rebuild_chunk):
            fresh.insert_batch(edges[i : i + self.rebuild_chunk])
        return fresh

    # -- persistence (restart = restore + replay suffix) ---------------------------

    CHECKPOINT_NAME = "checkpoint.json"
    WAL_NAME = "wal.trace"

    def save(self, directory: str | pathlib.Path) -> None:
        """Persist a restartable image: full checkpoint + sealed trace log."""
        if self.applied > len(self.history):
            raise BatchError(
                "bounded-history manager has trimmed its committed prefix "
                "and cannot write a full WAL — save() requires "
                "bounded_history=False"
            )
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "position": self.applied,
            "structure": ckpt.checkpoint(self.structure),
        }
        (directory / self.CHECKPOINT_NAME).write_text(json.dumps(payload))
        with TraceWriter(directory / self.WAL_NAME) as writer:
            for op in self.history:
                writer.append(op)

    @classmethod
    def load(
        cls,
        directory: str | pathlib.Path,
        cm: Optional[Any] = None,
        **kwargs: Any,
    ) -> "RecoveryManager":
        """Restore a :meth:`save` image: checkpoint, then replay the suffix."""
        directory = pathlib.Path(directory)
        try:
            payload = json.loads((directory / cls.CHECKPOINT_NAME).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BatchError(f"cannot read checkpoint: {exc}") from exc
        if not isinstance(payload, dict) or "position" not in payload:
            raise BatchError("checkpoint image missing 'position'")
        position = int(payload["position"])
        if position < 0:
            raise BatchError(
                f"checkpoint position {position} outside the trace — "
                "checkpoint and WAL disagree"
            )
        structure = ckpt.restore_checkpoint(payload.get("structure"), cm=cm)
        # Stream the WAL: the checkpoint prefix replays into the ground-truth
        # graph only, the suffix through full recovery apply().  The op list
        # never materialises — iter_trace verifies the seal incrementally —
        # so restart memory is bounded by the live state, not the log length.
        graph = DynamicGraph(0)
        history: list[BatchOp] = []
        manager: Optional["RecoveryManager"] = None
        seen = 0
        for op in iter_trace(directory / cls.WAL_NAME, strict=True):
            if seen < position:
                if op.kind == "insert":
                    graph.insert_batch(op.edges)
                else:
                    graph.delete_batch(op.edges)
                history.append(op)
            else:
                if manager is None:
                    manager = cls(structure, graph=graph, history=history, **kwargs)
                manager.apply(op)
            seen += 1
        if seen < position:
            raise BatchError(
                f"checkpoint position {position} outside the {seen}-batch "
                "trace — checkpoint and WAL disagree"
            )
        if manager is None:
            manager = cls(structure, graph=graph, history=history, **kwargs)
        return manager
