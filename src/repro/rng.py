"""Seed plumbing: one coercion point for every randomised component.

The determinism rules (REP-D001/REP-D002, docs/STATIC_ANALYSIS.md) ban the
hidden module-level generator: every randomised function in this repo takes
``seed: int | random.Random`` and coerces it through :func:`coerce_rng`.
Passing an int pins an independent stream; passing a generator shares one
stream across components (e.g. a whole experiment driven by a single seed).
"""

from __future__ import annotations

import random

__all__ = ["coerce_rng"]


def coerce_rng(seed: int | random.Random) -> random.Random:
    """An explicit generator: ints seed a fresh ``random.Random``; an
    existing generator passes through untouched (shared-stream composition)."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
