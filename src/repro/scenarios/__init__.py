"""Adversarial scenario engine — hardness-informed workloads at scale.

The worst-case guarantees of the paper only mean something if the
implementation survives the workloads the theory says are *hard*.  This
package turns the hardness literature into executable adversaries:

* :mod:`repro.scenarios.registry` — the :class:`Scenario` catalog:
  named, parameterized, seeded adversaries, each emitting a lazy
  deterministic :class:`~repro.graphs.streams.BatchOp` stream (a
  10^6-edge scenario never materialises in memory);
* :mod:`repro.scenarios.adversaries` — the generators themselves
  (hint misestimation, core-boundary oscillation, skew flip,
  sliding-window churn), with the hardness-paper rationale per scenario
  in docs/SCENARIOS.md;
* :mod:`repro.scenarios.soak` — every scenario as a first-class soak
  target: fault-injected chaos trials (tiered recovery + ddmin repros)
  and the full five-config differential panel, driven by the
  ``repro scenarios`` CLI.
"""

from .registry import (
    SCALES,
    Scenario,
    ScenarioParams,
    get_scenario,
    params_for,
    scenario_names,
    scenario_stream,
    suggested_height,
)
from .soak import (
    SOAK_MODES,
    ScenarioSoakReport,
    render_scenario_summary,
    soak_all,
    soak_scenario,
)

__all__ = [
    "SCALES",
    "SOAK_MODES",
    "Scenario",
    "ScenarioParams",
    "ScenarioSoakReport",
    "get_scenario",
    "params_for",
    "render_scenario_summary",
    "scenario_names",
    "scenario_stream",
    "soak_all",
    "soak_scenario",
    "suggested_height",
]
