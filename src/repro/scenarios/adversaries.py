"""The adversary generators behind the scenario catalog.

Each generator is a plain function ``(ScenarioParams) -> Iterator[BatchOp]``
that is deterministic under ``params.seed``, always emits a *valid*
temporal stream (no duplicate live inserts, deletions only of live
edges, no in-batch duplicates) and never yields a batch larger than
``params.batch_size``.  The hardness rationale for each adversary —
why the theory predicts this exact shape is hard — lives in
docs/SCENARIOS.md; the property tests in tests/scenarios/ hold every
generator to the contract above.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Iterator, Set, Tuple

from ..graphs.graph import Edge, norm_edge
from ..graphs.streams import BatchOp
from .registry import Scenario, ScenarioParams, register_scenario


def _fresh_edges(
    rng: random.Random,
    n: int,
    count: int,
    live: Set[Edge],
) -> list[Edge]:
    """Up to ``count`` distinct uniform non-live edges (rejection sampled)."""
    fresh: Set[Edge] = set()
    attempts = 0
    cap = 50 * count + 100
    while len(fresh) < count and attempts < cap:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        e = norm_edge(u, v)
        if e not in live and e not in fresh:
            fresh.add(e)
    return sorted(fresh)


def _block_pairs(b: int) -> Iterator[Edge]:
    """All edges of the clique on vertices 0..b-1, densest-first.

    Enumerated by ascending higher endpoint, so every prefix is the
    *complete* clique on a vertex prefix plus a partial next column —
    the prefix arboricity (and coreness) therefore ramps as fast as an
    edge budget allows.
    """
    for v in range(1, b):
        for u in range(v):
            yield (u, v)


# -- 1. hint misestimation ----------------------------------------------------


def _ramp_block_size(p: ScenarioParams) -> int:
    """Block size whose clique absorbs the scenario's ramp inserts."""
    ramp_budget = (p.batches - p.batches // 2) * p.batch_size
    b = int(math.ceil((1 + math.sqrt(1 + 8 * ramp_budget)) / 2))
    return max(4, min(b, p.n - 1))  # vertex n-1 is reserved for the star hub


def hint_misestimation(p: ScenarioParams) -> Iterator[BatchOp]:
    """Densify a block far past the configured height hint.

    Alternating structure: odd batches ramp a clique block (true
    arboricity climbs ~sqrt(inserted edges)), even batches oscillate a
    sacrificial star on the reserved hub so deletions stay in the mix.
    :func:`suggested_hint` reports an H wrong by ``p.hint_factor`` —
    the BALANCED(H) envelope must degrade gracefully (cost, not
    correctness) as the ramp blows through it.
    """
    b = _ramp_block_size(p)
    hub = p.n - 1
    ramp = _block_pairs(b)
    star_k = min(p.batch_size, b)
    star = tuple(norm_edge(j, hub) for j in range(star_k))
    star_live = False
    exhausted = False
    for i in range(p.batches):
        if i % 2 == 0 and not exhausted:
            chunk: list[Edge] = []
            for _ in range(p.batch_size):
                try:
                    chunk.append(next(ramp))
                except StopIteration:
                    exhausted = True
                    break
            if chunk:
                yield BatchOp("insert", tuple(chunk))
                continue
        # star oscillation: strict insert/delete alternation keeps it valid
        yield BatchOp("delete" if star_live else "insert", star)
        star_live = not star_live


def suggested_hint(p: ScenarioParams) -> int:
    """The deliberately wrong height hint for :func:`hint_misestimation`.

    The ramp's final block holds ~half the edge budget, so its true
    arboricity is ~m/b; dividing by ``hint_factor`` under- (or, for
    factors < 1, over-) estimates it by design.
    """
    b = _ramp_block_size(p)
    ramp_edges = min((p.batches - p.batches // 2) * p.batch_size, b * (b - 1) // 2)
    true_h = max(1, round(ramp_edges / max(1, b - 1)))
    return max(1, round(true_h / p.hint_factor))


# -- 2. core-boundary oscillation ---------------------------------------------


def core_oscillation(p: ScenarioParams) -> Iterator[BatchOp]:
    """Flip a boundary set across a coreness threshold every batch.

    A fixed clique core of size ``k`` is built first; thereafter every
    cycle inserts (then deletes) the full attachment of a boundary set
    to ``k`` core vertices, so every boundary vertex's coreness jumps
    between 0 and ``k`` each cycle — one batch per flip whenever
    ``batch_size >= k`` (every preset scale) — the worst case for any
    structure that amortises over coreness stability.
    """
    k = _oscillation_threshold(p)
    boundary = max(1, p.batch_size // k)
    core_edges = list(_block_pairs(k))
    attach = tuple(
        norm_edge(k + j, c) for j in range(boundary) for c in range(k)
    )
    emitted = 0
    for i in range(0, len(core_edges), p.batch_size):
        if emitted >= p.batches:
            return
        yield BatchOp("insert", tuple(core_edges[i : i + p.batch_size]))
        emitted += 1
    attached = False
    while emitted < p.batches:
        kind = "delete" if attached else "insert"
        for i in range(0, len(attach), p.batch_size):
            if emitted >= p.batches:
                return
            yield BatchOp(kind, attach[i : i + p.batch_size])
            emitted += 1
        attached = not attached


def _oscillation_threshold(p: ScenarioParams) -> int:
    """The coreness value the boundary oscillates up to (k of the core)."""
    return max(3, min(p.batch_size, (p.n - 1) // 2, 8))


# -- 3. skew flip -------------------------------------------------------------


def _rmat_edge(rng: random.Random, scale: int) -> Tuple[int, int]:
    """One RMAT (0.57/0.19/0.19) draw over 2**scale vertices."""
    u = v = 0
    for _ in range(scale):
        r = rng.random()
        u <<= 1
        v <<= 1
        if r < 0.57:
            pass
        elif r < 0.76:
            v |= 1
        elif r < 0.95:
            u |= 1
        else:
            u |= 1
            v |= 1
    return u, v


def skew_flip(p: ScenarioParams) -> Iterator[BatchOp]:
    """Heavy-tail RMAT first half, then tear it down under a star-burst.

    Mid-stream the degree distribution flips: the power-law community
    structure drains away (deletions in insertion order) while a single
    hub bursts to maximum degree.  Structures tuned to one skew regime
    (sampling thresholds, duplication factors) must re-balance on the
    flip rather than carry stale state across it.
    """
    rng = random.Random(p.seed)
    scale = max(2, int(math.floor(math.log2(p.n))))
    hub = p.n - 1
    live: Set[Edge] = set()
    order: deque[Edge] = deque()  # phase-1 edges, insertion order
    half = max(1, p.batches // 2)
    for _ in range(half):
        fresh: Set[Edge] = set()
        attempts = 0
        cap = 50 * p.batch_size + 100
        while len(fresh) < p.batch_size and attempts < cap:
            attempts += 1
            u, v = _rmat_edge(rng, scale)
            if u == v:
                continue
            e = norm_edge(u, v)
            if e not in live and e not in fresh:
                fresh.add(e)
        if not fresh:
            break
        chunk = tuple(sorted(fresh))
        live |= fresh
        order.extend(chunk)
        yield BatchOp("insert", chunk)
    burst = 0  # next star target to try
    emitted = half
    star_turn = True
    while emitted < p.batches:
        if star_turn:
            star: list[Edge] = []
            while len(star) < p.batch_size and burst < p.n - 1:
                e = norm_edge(burst, hub)
                burst += 1
                if e not in live:
                    star.append(e)
            if star:
                live |= set(star)
                yield BatchOp("insert", tuple(star))
                emitted += 1
            star_turn = False
            if not star and not order:
                return  # both phases exhausted
            continue
        doomed: list[Edge] = []
        while len(doomed) < p.batch_size and order:
            doomed.append(order.popleft())
        if doomed:
            live -= set(doomed)
            yield BatchOp("delete", tuple(doomed))
            emitted += 1
        star_turn = True
        if not doomed and burst >= p.n - 1:
            return


# -- 4. sliding-window churn --------------------------------------------------


def sliding_window_churn(p: ScenarioParams) -> Iterator[BatchOp]:
    """Insert at the front, expire at the tail, bounded live-edge set.

    The out-of-core workhorse: live edges never exceed
    ``window * batch_size`` regardless of stream length, so a
    10^6-edge-update instance streams through a
    :class:`~repro.graphs.tracefile.TraceWriter` /
    :func:`~repro.graphs.tracefile.iter_trace` pair in O(window) memory.
    Models interaction graphs over the last k hours — the asynchronous
    read/update stress regime of Liu–Shun–Zablotchi.
    """
    rng = random.Random(p.seed)
    live: Set[Edge] = set()
    window: deque[Tuple[Edge, ...]] = deque()
    emitted = 0
    while emitted < p.batches:
        if len(window) >= p.window:
            old = window.popleft()
            live -= set(old)
            yield BatchOp("delete", old)
            emitted += 1
            if emitted >= p.batches:
                return
        fresh = _fresh_edges(rng, p.n, p.batch_size, live)
        if not fresh:
            return  # universe saturated; nothing valid left to insert
        chunk = tuple(fresh)
        live |= set(fresh)
        window.append(chunk)
        yield BatchOp("insert", chunk)
        emitted += 1


# -- registration -------------------------------------------------------------

register_scenario(
    Scenario(
        name="hint-misestimation",
        summary="density ramp far past a wrong BALANCED(H) hint",
        rationale=(
            "Couto-Fernandes (arXiv 2509.13584): update hardness is driven "
            "by the gap between the structure's height budget and the "
            "true degeneracy; a mis-set H is the cheapest way to open it."
        ),
        stream=hint_misestimation,
        bounded_window=False,
        suggested_H=suggested_hint,
    )
)

register_scenario(
    Scenario(
        name="core-oscillation",
        summary="boundary vertices flip across a coreness threshold per batch",
        rationale=(
            "Couto-Fernandes (arXiv 2509.13584): coreness maintenance lower "
            "bounds come from threshold-crossing flips; amortized structures "
            "pay for each flip, worst-case ones must not."
        ),
        stream=core_oscillation,
        bounded_window=True,
    )
)

register_scenario(
    Scenario(
        name="skew-flip",
        summary="RMAT heavy tail torn down under a star-burst mid-stream",
        rationale=(
            "Distribution shift breaks amortization arguments that charge "
            "against a stable degree profile (the E2 sawtooth generalised "
            "to skew); sampling/duplication thresholds must re-balance."
        ),
        stream=skew_flip,
        bounded_window=False,
    )
)

register_scenario(
    Scenario(
        name="sliding-window-churn",
        summary="front inserts + tail expiry with a bounded live-edge set",
        rationale=(
            "Liu-Shun-Zablotchi (arXiv 2401.08015): the batched-update / "
            "asynchronous-read service regime — unbounded stream length, "
            "bounded live state — is exactly the out-of-core contract."
        ),
        stream=sliding_window_churn,
        bounded_window=True,
    )
)
