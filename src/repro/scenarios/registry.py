"""The scenario catalog: named, parameterized, seeded adversaries.

A :class:`Scenario` couples a workload generator with the metadata the
soak harnesses need: whether its live-edge set is bounded (the
out-of-core contract), and — for the hint-misestimation family — the
deliberately wrong height hint a ``BALANCED(H)`` structure should be
built with.  Generators are *lazy*: ``scenario.stream(params)`` returns
an iterator that synthesises batches on demand, so a ``large``-scale
(10^6 edge updates) stream can be drained straight into a
:class:`~repro.graphs.tracefile.TraceWriter` without ever existing as a
list.

Scales are named presets (``tiny`` → unit tests, ``ci`` → the CI soak
gate, ``bench`` → E23's soak table, ``large`` → the 10^6-edge
out-of-core run); :func:`params_for` builds the concrete
:class:`ScenarioParams` with per-call overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, Optional

from ..errors import ParameterError
from ..graphs.streams import BatchOp


@dataclass(frozen=True)
class ScenarioParams:
    """Concrete knobs of one scenario instance.

    ``batches`` counts emitted :class:`BatchOp`\\ s, ``batch_size`` the
    target edges per batch (generators may emit slightly smaller batches
    near exhaustion but never larger).  ``window`` bounds the live chunk
    set of windowed scenarios; ``hint_factor`` is how wrong the height
    hint of the misestimation adversary is (``> 1`` underestimates,
    ``< 1`` overestimates).
    """

    n: int
    batches: int
    batch_size: int
    seed: int = 0
    window: int = 5
    hint_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.n < 8:
            raise ParameterError(f"scenario needs n >= 8, got {self.n}")
        if self.batches < 1 or self.batch_size < 1:
            raise ParameterError(
                f"scenario needs batches, batch_size >= 1, got "
                f"{self.batches}, {self.batch_size}"
            )
        if self.window < 1:
            raise ParameterError(f"window must be >= 1, got {self.window}")
        if self.hint_factor <= 0:
            raise ParameterError(
                f"hint_factor must be > 0, got {self.hint_factor}"
            )

    @property
    def edge_budget(self) -> int:
        """Upper bound on emitted edge updates."""
        return self.batches * self.batch_size


@dataclass(frozen=True)
class Scenario:
    """One registered adversary.

    ``bounded_window`` promises the live-edge set stays bounded by a
    function of ``(n, batch_size, window)`` alone — independent of
    ``batches`` — which is what makes a scenario safe to run at
    ``large`` scale out-of-core.  ``suggested_H`` returns the
    (deliberately mis-set, for the misestimation family) height hint a
    ``BALANCED(H)`` trial should use; ``None`` means the harness default.
    """

    name: str
    summary: str
    rationale: str  # the hardness-literature motivation (docs/SCENARIOS.md)
    stream: Callable[[ScenarioParams], Iterator[BatchOp]]
    bounded_window: bool = False
    suggested_H: Optional[Callable[[ScenarioParams], int]] = None


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the catalog (name collisions are a bug)."""
    if scenario.name in _REGISTRY:
        raise ParameterError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_stream(name: str, params: ScenarioParams) -> Iterator[BatchOp]:
    """The lazy batch stream of a named scenario under ``params``."""
    return get_scenario(name).stream(params)


def suggested_height(name: str, params: ScenarioParams, default: int = 4) -> int:
    """The height hint a BALANCED(H) trial of this scenario should use."""
    scenario = get_scenario(name)
    if scenario.suggested_H is None:
        return default
    return scenario.suggested_H(params)


#: Named scale presets.  ``large`` is the out-of-core scale: 20_000
#: batches x 50 edges = 10^6 edge updates, only sane for
#: ``bounded_window`` scenarios streamed to disk (E23 measures exactly
#: that).
SCALES: Dict[str, ScenarioParams] = {
    "tiny": ScenarioParams(n=20, batches=16, batch_size=4, window=3),
    "ci": ScenarioParams(n=40, batches=60, batch_size=5, window=5),
    "bench": ScenarioParams(n=96, batches=240, batch_size=10, window=6),
    "large": ScenarioParams(n=4096, batches=20_000, batch_size=50, window=10),
}


def params_for(scale: str, seed: int = 0, **overrides: object) -> ScenarioParams:
    """Build concrete params from a named scale plus overrides."""
    try:
        base = SCALES[scale]
    except KeyError:
        raise ParameterError(
            f"unknown scale {scale!r}; known: {sorted(SCALES)}"
        ) from None
    return replace(base, seed=seed, **overrides)  # type: ignore[arg-type]


# Populate the catalog.  Imported for its registration side effect; the
# import sits at the bottom so adversaries.py can import the classes above.
from . import adversaries as _adversaries  # noqa: E402,F401
