"""Every scenario as a first-class soak target.

One :func:`soak_scenario` call takes a registered adversary through the
two verdict machines the repo already trusts:

* **chaos** — seeded fault-injection trials over the scenario's stream
  via :func:`~repro.resilience.chaos.chaos_soak` (tiered recovery,
  post-recovery audits, optional ddmin minimization + repro artifacts),
  with the BALANCED(H) trials built at the scenario's *suggested* —
  possibly deliberately wrong — height hint;
* **diff** — the full five-config differential panel
  (:func:`~repro.verify.differential.run_diff`) replaying the identical
  stream, with periodic exact-oracle deep audits.

Both judge the same seeded stream, so a red verdict names the scenario,
the seed and the failing machinery — and the chaos side ships a
replayable minimized artifact.  Per-scenario workload counters land in
the process-wide MetricsRegistry via
:class:`~repro.instrument.metrics.ScenarioStats`.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..config import DEFAULT_CONSTANTS, Constants
from ..graphs.streams import BatchOp
from ..instrument import trace as _trace
from ..instrument.metrics import ScenarioStats, render_table
from ..resilience.chaos import ChaosReport, chaos_soak
from ..verify.differential import DiffReport, run_diff
from .registry import (
    ScenarioParams,
    get_scenario,
    params_for,
    scenario_names,
    suggested_height,
)

SOAK_MODES = ("chaos", "diff", "both")


@dataclass
class ScenarioSoakReport:
    """Aggregate verdict of one scenario's soak."""

    scenario: str
    scale: str
    params: ScenarioParams
    stats: ScenarioStats
    suggested_H: int
    chaos: Optional[ChaosReport] = None
    diff: Optional[DiffReport] = None
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if self.chaos is not None and not self.chaos.ok:
            return False
        if self.diff is not None and not self.diff.ok:
            return False
        return True

    def render(self) -> str:
        verdict = "GREEN" if self.ok else "RED"
        lines = [
            f"scenario [{self.scenario} @ {self.scale}]: {verdict} — "
            f"{self.stats.batches} batches, {self.stats.edge_updates} edge "
            f"updates, max {self.stats.max_live_edges} live edges, "
            f"H hint {self.suggested_H}",
        ]
        if self.chaos is not None:
            lines.append(self.chaos.render())
        if self.diff is not None:
            lines.append(self.diff.render())
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _measured_stream(name: str, params: ScenarioParams) -> tuple[list[BatchOp], ScenarioStats]:
    """Materialise one scenario stream, accounting it as it is drained.

    Soak targets replay the stream many times (trials, panel configs,
    ddmin probes), so at soak scales the list is the right call — the
    out-of-core path (``repro scenarios --trace-out``, E23) drains the
    lazy stream straight to disk instead and never comes through here.
    """
    scenario = get_scenario(name)
    stats = ScenarioStats(scenario=name)
    ops: list[BatchOp] = []
    with _trace.span("scenario.stream", scenario=name):
        for op in scenario.stream(params):
            stats.observe(op.kind, op.size)
            ops.append(op)
    return ops, stats


def soak_scenario(
    name: str,
    *,
    scale: str = "ci",
    seed: int = 0,
    mode: str = "both",
    structure: str = "balanced",
    trials: int = 3,
    faults_per_trial: int = 2,
    deep_every: int = 0,
    eps: float = 0.35,
    constants: Constants = DEFAULT_CONSTANTS,
    minimize: bool = False,
    artifact_dir: Optional[str | pathlib.Path] = None,
    params: Optional[ScenarioParams] = None,
) -> ScenarioSoakReport:
    """Soak one adversarial scenario; returns the aggregate verdict.

    ``mode`` picks the machinery: ``chaos`` (fault injection under the
    adversarial load), ``diff`` (five-config differential panel), or
    ``both``.  Chaos trials rotate only this scenario's stream
    (``stream_kinds=[name]``) and BALANCED trials run at the scenario's
    suggested height hint — for ``hint-misestimation`` that hint is
    wrong by ``params.hint_factor``, by design.  Fully deterministic
    under ``(name, scale, seed)``.
    """
    if mode not in SOAK_MODES:
        raise ValueError(f"unknown soak mode {mode!r}; expected {SOAK_MODES}")
    p = params if params is not None else params_for(scale, seed=seed)
    ops, stats = _measured_stream(name, p)
    H = suggested_height(name, p)
    report = ScenarioSoakReport(
        scenario=name,
        scale=scale,
        params=p,
        stats=stats,
        suggested_H=H,
    )
    with _trace.span("scenario.soak", scenario=name, detail={"mode": mode}):
        if mode in ("chaos", "both"):
            report.chaos = chaos_soak(
                structure,
                trials=trials,
                seed=seed,
                n=p.n,
                batches=p.batches,
                batch_size=p.batch_size,
                faults_per_trial=faults_per_trial,
                H=H,
                eps=eps,
                constants=constants,
                minimize=minimize or artifact_dir is not None,
                artifact_dir=artifact_dir,
                stream_kinds=[name],
            )
        if mode in ("diff", "both"):
            report.diff = run_diff(
                ops,
                eps=eps,
                constants=constants,
                seed=seed,
                n=p.n,
                deep_every=deep_every,
            )
    return report


def soak_all(
    names: Optional[Sequence[str]] = None, **kwargs: object
) -> list[ScenarioSoakReport]:
    """Soak every (or the named) catalog scenario; one report each."""
    return [
        soak_scenario(name, **kwargs)  # type: ignore[arg-type]
        for name in (names if names is not None else scenario_names())
    ]


def render_scenario_summary(reports: Sequence[ScenarioSoakReport]) -> str:
    """The E23/CI one-table view over several scenario soaks."""
    rows = []
    for r in reports:
        tiers = r.chaos.stats.counts if r.chaos is not None else {}
        rows.append(
            [
                r.scenario,
                r.stats.batches,
                r.stats.edge_updates,
                r.stats.max_live_edges,
                r.suggested_H,
                r.chaos.faults_fired if r.chaos is not None else "-",
                tiers.get("rollback", 0),
                tiers.get("checkpoint", 0),
                tiers.get("rebuild", 0),
                ("GREEN" if r.chaos.ok else "RED") if r.chaos is not None else "-",
                ("GREEN" if r.diff.ok else "RED") if r.diff is not None else "-",
            ]
        )
    return render_table(
        [
            "scenario",
            "batches",
            "edges",
            "max live",
            "H hint",
            "faults",
            "t1",
            "t2",
            "t3",
            "chaos",
            "diff",
        ],
        rows,
    )
