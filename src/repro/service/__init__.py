"""Coreness-as-a-service: a long-running ingest/query server.

Per-tenant batch-dynamic ladders behind an asyncio JSON-lines protocol,
with WAL-before-apply durability, epoch-snapshot reads that never block
on in-flight updates, checkpoint + replay recovery after a crash, and a
graceful SIGTERM drain.  See ``docs/SERVICE.md``.
"""

from .client import ServiceClient
from .server import MAX_LINE, PROTOCOL_VERSION, CorenessService
from .state import (
    Snapshot,
    TENANT_MODES,
    TenantConfig,
    TenantShard,
    discover_tenants,
)

__all__ = [
    "CorenessService",
    "MAX_LINE",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "Snapshot",
    "TENANT_MODES",
    "TenantConfig",
    "TenantShard",
    "discover_tenants",
]
