"""Asyncio client for the coreness service's JSON-lines protocol.

One :class:`ServiceClient` wraps one TCP connection; requests on a
connection are serialised (an internal lock), so spin up one client per
concurrent logical actor — they are cheap.  Every helper raises
:class:`~repro.errors.ServiceError` when the server answers
``ok: false``, with the server's error text.

Typical use::

    client = await ServiceClient.open("127.0.0.1", port)
    await client.create("acme", n=1024, eps=0.35, seed=7)
    ack = await client.ingest("acme", "insert", [(0, 1), (1, 2)])
    answers = await client.query("acme", "coreness", vertices=[0, 1, 2])
    await client.close()
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterable, Optional, Sequence

from ..errors import ServiceError
from .server import MAX_LINE


class ServiceClient:
    """One connection to a :class:`~repro.service.server.CorenessService`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._seq = 0

    @classmethod
    async def open(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- the raw wire ---------------------------------------------------------

    async def request(self, payload: dict) -> dict:
        """Send one request object, await its response object (raising)."""
        async with self._lock:
            self._seq += 1
            payload = dict(payload, id=self._seq)
            self._writer.write(json.dumps(payload).encode() + b"\n")
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        resp = json.loads(line)
        if resp.get("id") != payload["id"]:
            raise ServiceError(
                f"response id {resp.get('id')!r} does not match request "
                f"id {payload['id']!r}"
            )
        if not resp.get("ok"):
            raise ServiceError(resp.get("error", "unspecified server error"))
        return resp

    # -- helpers --------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def create(
        self,
        tenant: str,
        *,
        n: int = 256,
        eps: float = 0.35,
        seed: int = 0,
        mode: str = "both",
        constants: Optional[dict] = None,
    ) -> dict:
        req: dict[str, Any] = {
            "op": "create", "tenant": tenant, "n": n, "eps": eps,
            "seed": seed, "mode": mode,
        }
        if constants is not None:
            req["constants"] = constants
        return await self.request(req)

    async def ingest(
        self,
        tenant: str,
        kind: str,
        edges: Iterable[tuple[int, int]],
        *,
        wait: bool = False,
    ) -> dict:
        return await self.request(
            {"op": "ingest", "tenant": tenant, "kind": kind,
             "edges": [[u, v] for u, v in edges], "wait": wait}
        )

    async def query(
        self,
        tenant: str,
        what: str = "stats",
        *,
        vertices: Optional[Sequence[int]] = None,
    ) -> dict:
        req: dict[str, Any] = {"op": "query", "tenant": tenant, "what": what}
        if vertices is not None:
            req["vertices"] = list(vertices)
        return await self.request(req)

    async def tenants(self) -> dict:
        return await self.request({"op": "tenants"})

    async def drain(self) -> dict:
        """Block until the server has committed every accepted batch."""
        return await self.request({"op": "drain"})


__all__ = ["ServiceClient"]
