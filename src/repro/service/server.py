"""Coreness-as-a-service: the asyncio ingest/query front-end.

:class:`CorenessService` owns a fleet of :class:`~repro.service.state.TenantShard`
instances (one per tenant graph) and serves a JSON-lines TCP protocol to
many concurrent clients.  The design separates the three latencies that
matter:

* **accept** — validate a batch and append it to the tenant's WAL.  This
  is the durability ack; it happens under a per-tenant asyncio lock so
  WAL order, accepted-graph order and apply-queue order all agree.
* **apply** — commit the batch into the ladders.  Tenants are sharded by
  ``crc32(name) % shards``; each shard has one writer task draining an
  :class:`asyncio.Queue` and running the (CPU-heavy, blocking) apply in
  a thread pool, so the event loop keeps serving while ladders churn.
* **query** — read the tenant's published immutable snapshot.  A query
  never takes a lock and never waits on an in-flight batch: it sees the
  answers of the last committed epoch, whole (the asynchronous-snapshot
  reads of arXiv 2401.08015 at batch granularity).

Graceful shutdown (SIGTERM or :meth:`CorenessService.stop`): stop
accepting work, drain every shard queue, checkpoint and seal every
tenant WAL.  A *non*-graceful death (``kill -9``) leaves an unsealed —
possibly torn — WAL; restart recovers through
:func:`~repro.graphs.tracefile.recover_trace` and replays, so every
batch that was ever acked is reflected bit-identically.

Protocol: one JSON object per line, answered with one JSON object per
line (``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``; an
``id`` field, when present, is echoed).  Operations: ``ping``,
``create``, ``ingest``, ``query``, ``tenants``, ``drain``.  See
``docs/SERVICE.md`` for the full request/response reference.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import re
import signal
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from ..config import Constants
from ..errors import ReproError, ServiceError
from ..graphs.streams import BatchOp
from ..instrument import wallclock as _wallclock
from ..instrument.telemetry import MetricsRegistry
from .state import TenantConfig, TenantShard, discover_tenants

#: bumped when the wire format changes incompatibly.
PROTOCOL_VERSION = 1

#: per-line cap — a 1M-edge batch of 7-digit endpoints fits comfortably.
MAX_LINE = 32 * 1024 * 1024

_TENANT_RE = re.compile(r"[A-Za-z0-9_-][A-Za-z0-9._-]{0,63}\Z")

_QUERY_KINDS = ("coreness", "density", "orientation", "stats")


def _check_tenant_name(name: Any) -> str:
    if not isinstance(name, str) or _TENANT_RE.fullmatch(name) is None:
        raise ServiceError(
            "tenant names are 1-64 chars of [A-Za-z0-9._-], not starting "
            f"with a dot: got {name!r}"
        )
    return name


def _parse_edges(raw: Any) -> tuple[tuple[int, int], ...]:
    if not isinstance(raw, list):
        raise ServiceError("'edges' must be a list of [u, v] pairs")
    out = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ServiceError(f"bad edge {item!r}: expected a [u, v] pair")
        u, v = item
        if not isinstance(u, int) or not isinstance(v, int):
            raise ServiceError(f"bad edge {item!r}: endpoints must be ints")
        out.append((u, v))
    return tuple(out)


def _parse_vertices(raw: Any) -> Optional[tuple[int, ...]]:
    """Validate a query's optional ``vertices`` field (None = all)."""
    if raw is None:
        return None
    if not isinstance(raw, list):
        raise ServiceError("'vertices' must be a list of vertex ids")
    out = []
    for item in raw:
        try:
            out.append(int(item))
        except (TypeError, ValueError):
            raise ServiceError(
                f"bad vertex {item!r}: vertex ids must be ints"
            ) from None
    return tuple(out)


class CorenessService:
    """The long-running server.  Construct, then ``await start()``.

    Parameters
    ----------
    data_dir:
        Root of the durable state; one subdirectory per tenant holding
        ``meta.json`` + ``wal.trace`` + ``checkpoint.json``.  Tenants
        found here at startup are recovered and served immediately.
    shards:
        Number of apply lanes.  Tenants map to lanes by name hash; two
        tenants on different lanes commit batches concurrently, while
        one tenant's batches always commit in accept order.
    sync:
        ``True`` fsyncs every WAL append before acking (durability
        against power loss, not just process death).
    max_pending:
        Per-shard bound on accepted-but-not-yet-applied batches.  Accept
        (a WAL append) is far cheaper than apply (a full ladder commit),
        so without a bound a fast writer accumulates an unbounded apply
        backlog; at the bound, ingest acks stall until the lane drains —
        backpressure instead of unbounded memory and drain time.
    """

    def __init__(
        self,
        data_dir: str | pathlib.Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 4,
        checkpoint_every: int = 32,
        sync: bool = False,
        max_pending: int = 256,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.data_dir = pathlib.Path(data_dir)
        self.host = host
        self.port = port
        self.shards = max(1, shards)
        self.checkpoint_every = checkpoint_every
        self.sync = sync
        self.max_pending = max(1, max_pending)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tenants: dict[str, TenantShard] = {}
        self.failed_tenants: dict[str, str] = {}  # name -> quarantine reason
        self._tenant_locks: dict[str, asyncio.Lock] = {}
        self._create_lock: Optional[asyncio.Lock] = None
        self._queues: list[asyncio.Queue] = []
        self._writer_tasks: list[asyncio.Task] = []
        self._client_tasks: set[asyncio.Task] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._draining = False
        self._stopped = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Recover on-disk tenants, start shard writers, bind the socket."""
        loop = asyncio.get_running_loop()
        self._create_lock = asyncio.Lock()
        self._stop_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, self.shards), thread_name_prefix="repro-apply"
        )
        self._queues = [
            asyncio.Queue(maxsize=self.max_pending) for _ in range(self.shards)
        ]
        self._writer_tasks = [
            asyncio.create_task(self._shard_writer(q), name=f"shard-{i}")
            for i, q in enumerate(self._queues)
        ]
        self.data_dir.mkdir(parents=True, exist_ok=True)
        for name in discover_tenants(self.data_dir):
            # one tenant's poisoned WAL/checkpoint must not keep every
            # other tenant's service down: quarantine it and boot on.
            try:
                await loop.run_in_executor(self._pool, self._open_tenant, name)
            except Exception as exc:
                self._quarantine(name, f"recovery failed: {exc}")
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.registry.gauge("repro_service_tenants").set(len(self.tenants))

    async def run(
        self,
        *,
        install_signals: bool = True,
        on_ready: Optional[Any] = None,
    ) -> None:
        """Start, then serve until :meth:`request_stop` (or SIGTERM/SIGINT)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without support
        if on_ready is not None:
            on_ready()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger (drain happens in :meth:`stop`)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        """Graceful drain: refuse new work, commit the backlog, seal WALs."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.drain()
        for q in self._queues:
            q.put_nowait(None)
        if self._writer_tasks:
            await asyncio.gather(*self._writer_tasks, return_exceptions=True)
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for shard in self.tenants.values():
            # a quarantined shard's ladders diverged from its WAL: leave
            # the WAL unsealed and the old checkpoint alone rather than
            # persisting the divergence as if it were a clean shutdown.
            seal = shard.name not in self.failed_tenants
            await loop.run_in_executor(self._pool, shard.close, seal)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._stop_event is not None:
            self._stop_event.set()

    async def drain(self) -> None:
        """Block until every accepted batch has been committed."""
        await asyncio.gather(*(q.join() for q in self._queues))

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- tenants --------------------------------------------------------------

    def _open_tenant(self, name: str, config: Optional[TenantConfig] = None) -> TenantShard:
        """Blocking tenant construction/recovery (runs in the pool)."""
        directory = self.data_dir / name
        if config is None:
            meta = json.loads((directory / "meta.json").read_text())
            config = TenantConfig.from_json(meta)
        shard = TenantShard(
            name,
            directory,
            config,
            checkpoint_every=self.checkpoint_every,
            sync=self.sync,
            registry=self.registry,
        )
        self.tenants[name] = shard
        return shard

    def _shard_of(self, name: str) -> asyncio.Queue:
        return self._queues[zlib.crc32(name.encode()) % self.shards]

    def _lock_of(self, name: str) -> asyncio.Lock:
        lock = self._tenant_locks.get(name)
        if lock is None:
            lock = self._tenant_locks[name] = asyncio.Lock()
        return lock

    def _quarantine(self, name: str, reason: str) -> None:
        """Mark a tenant failed: all further ingest/queries are refused."""
        self.failed_tenants[name] = reason
        self.registry.counter(
            "repro_service_tenants_quarantined_total", tenant=name
        ).inc(1)
        self.registry.gauge("repro_service_tenants_failed").set(
            len(self.failed_tenants)
        )

    def _check_quarantine(self, name: str) -> None:
        reason = self.failed_tenants.get(name)
        if reason is not None:
            raise ServiceError(
                f"tenant {name!r} is quarantined ({reason}); its on-disk "
                "state needs operator attention before it can serve again"
            )

    def _tenant(self, req: dict) -> TenantShard:
        name = _check_tenant_name(req.get("tenant"))
        self._check_quarantine(name)
        shard = self.tenants.get(name)
        if shard is None:
            raise ServiceError(f"unknown tenant {name!r} (create it first)")
        return shard

    # -- the wire -------------------------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        gauge = self.registry.gauge("repro_service_connections")
        gauge.inc(1)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(_encode({"ok": False, "error": "request line too long"}))
                    await writer.drain()
                    break
                if not line:
                    break
                resp = await self._serve_line(line)
                writer.write(_encode(resp))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            gauge.inc(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_line(self, line: bytes) -> dict:
        req_id = None
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ServiceError("requests are JSON objects, one per line")
            req_id = req.get("id")
            resp = await self._dispatch(req)
        except json.JSONDecodeError as exc:
            resp = {"ok": False, "error": f"bad JSON: {exc}"}
        except ReproError as exc:
            resp = {"ok": False, "error": str(exc)}
            self.registry.counter("repro_service_rejects_total").inc(1)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # malformed input that slipped past validation (or a genuine
            # bug) must answer {ok:false}, never tear down the connection.
            resp = {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }
            self.registry.counter("repro_service_internal_errors_total").inc(1)
        if req_id is not None:
            resp["id"] = req_id
        return resp

    async def _dispatch(self, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {
                "ok": True,
                "version": PROTOCOL_VERSION,
                "tenants": len(self.tenants),
                "draining": self._draining,
            }
        if op == "create":
            return await self._op_create(req)
        if op == "ingest":
            return await self._op_ingest(req)
        if op == "query":
            return self._op_query(req)
        if op == "tenants":
            return {
                "ok": True,
                "tenants": {
                    name: {
                        "epoch": shard.snapshot.epoch,
                        "accepted": shard.accepted,
                        "pending": shard.pending,
                        "mode": shard.config.mode,
                        "live_edges": shard.snapshot.live_edges,
                        "quarantined": name in self.failed_tenants,
                    }
                    for name, shard in sorted(self.tenants.items())
                },
                "quarantined": dict(sorted(self.failed_tenants.items())),
            }
        if op == "drain":
            await self.drain()
            return {"ok": True}
        raise ServiceError(f"unknown op {op!r}")

    async def _op_create(self, req: dict) -> dict:
        if self._draining:
            raise ServiceError("service is draining; not accepting work")
        name = _check_tenant_name(req.get("tenant"))
        self._check_quarantine(name)
        kwargs: dict[str, Any] = {}
        raw_constants = req.get("constants")
        if raw_constants is not None:
            if not isinstance(raw_constants, dict):
                raise ServiceError("'constants' must be a JSON object")
            try:
                kwargs["constants"] = Constants(**raw_constants)
            except TypeError as exc:
                raise ServiceError(f"bad constants: {exc}") from None
        try:
            config = TenantConfig(
                n=int(req.get("n", 256)),
                eps=float(req.get("eps", 0.35)),
                seed=int(req.get("seed", 0)),
                mode=str(req.get("mode", "both")),
                **kwargs,
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad tenant parameters: {exc}") from None
        assert self._create_lock is not None
        async with self._create_lock:
            existing = self.tenants.get(name)
            if existing is not None:
                if existing.config != config:
                    raise ServiceError(
                        f"tenant {name!r} exists with different parameters"
                    )
                return {"ok": True, "created": False, "epoch": existing.snapshot.epoch}
            loop = asyncio.get_running_loop()
            shard = await loop.run_in_executor(
                self._pool, self._open_tenant, name, config
            )
        self.registry.gauge("repro_service_tenants").set(len(self.tenants))
        return {"ok": True, "created": True, "epoch": shard.snapshot.epoch}

    async def _op_ingest(self, req: dict) -> dict:
        if self._draining:
            raise ServiceError("service is draining; not accepting work")
        shard = self._tenant(req)
        kind = req.get("kind")
        if kind not in ("insert", "delete"):
            raise ServiceError(f"ingest kind must be insert|delete, got {kind!r}")
        op = BatchOp(kind, _parse_edges(req.get("edges")))
        wait = bool(req.get("wait", False))
        loop = asyncio.get_running_loop()
        t0 = _wallclock.monotonic()
        future: Optional[asyncio.Future] = (
            loop.create_future() if wait else None
        )
        async with self._lock_of(shard.name):
            # accept (validate + WAL append) runs off-loop: the fsync in
            # sync mode would otherwise stall every other client.  The
            # queue put happens under the same lock, so apply order ==
            # WAL order per tenant.  The put awaits: at max_pending the
            # lane is full and the ack stalls until the writer drains —
            # backpressure instead of an unbounded apply backlog.
            position = await loop.run_in_executor(self._pool, shard.accept, op)
            await self._shard_of(shard.name).put((shard, op, future))
        self.registry.histogram(
            "repro_service_ingest_seconds", tenant=shard.name
        ).observe(max(0.0, _wallclock.monotonic() - t0))
        resp: dict[str, Any] = {"ok": True, "position": position}
        if future is not None:
            resp["epoch"] = await future
        return resp

    def _op_query(self, req: dict) -> dict:
        shard = self._tenant(req)
        what = req.get("what", "stats")
        if what not in _QUERY_KINDS:
            raise ServiceError(
                f"query 'what' must be one of {_QUERY_KINDS}, got {what!r}"
            )
        t0 = _wallclock.monotonic()
        snap = shard.snapshot  # one atomic reference read: a whole epoch
        resp: dict[str, Any] = {
            "ok": True,
            "epoch": snap.epoch,
            "live_edges": snap.live_edges,
        }
        if what == "coreness":
            if snap.coreness is None:
                raise ServiceError(
                    f"tenant {shard.name!r} (mode={shard.config.mode}) does "
                    "not maintain a coreness ladder"
                )
            vertices = _parse_vertices(req.get("vertices"))
            if vertices is None:
                resp["coreness"] = {str(v): c for v, c in sorted(snap.coreness.items())}
            else:
                resp["coreness"] = {
                    str(v): snap.coreness.get(v, 0.0) for v in vertices
                }
            resp["max_coreness"] = snap.max_coreness
        elif what == "density":
            if snap.density is None:
                raise ServiceError(
                    f"tenant {shard.name!r} (mode={shard.config.mode}) does "
                    "not maintain a density ladder"
                )
            resp["density"] = snap.density
            resp["arboricity"] = snap.arboricity
            resp["max_outdegree"] = snap.max_outdegree
        elif what == "orientation":
            if snap.out_neighbors is None:
                raise ServiceError(
                    f"tenant {shard.name!r} (mode={shard.config.mode}) does "
                    "not maintain an orientation"
                )
            vertices = _parse_vertices(req.get("vertices"))
            table = snap.out_neighbors
            if vertices is not None:
                table = {v: table.get(v, ()) for v in vertices}
            resp["out_neighbors"] = {str(v): list(nb) for v, nb in sorted(table.items())}
            resp["max_outdegree"] = snap.max_outdegree
        else:  # stats
            resp["accepted"] = shard.accepted
            resp["pending"] = shard.pending
            resp["mode"] = shard.config.mode
        self.registry.counter(
            "repro_service_queries_total", tenant=shard.name, what=what
        ).inc(1)
        self.registry.histogram(
            "repro_service_query_seconds", tenant=shard.name
        ).observe(max(0.0, _wallclock.monotonic() - t0))
        return resp

    # -- the apply lane -------------------------------------------------------

    async def _shard_writer(self, queue: asyncio.Queue) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            shard, op, future = item
            if shard.name in self.failed_tenants:
                # the shard already diverged; applying more batches on
                # top would only deepen the divergence.
                if future is not None and not future.done():
                    future.set_exception(
                        ServiceError(
                            f"tenant {shard.name!r} is quarantined "
                            f"({self.failed_tenants[shard.name]})"
                        )
                    )
                queue.task_done()
                continue
            try:
                epoch = await loop.run_in_executor(self._pool, shard.apply, op)
            except Exception as exc:  # RecoveryError after all tiers failed
                self.registry.counter(
                    "repro_service_apply_failures_total", tenant=shard.name
                ).inc(1)
                # the WAL/accepted state now holds a batch the ladders
                # never committed; silently acking further work would
                # let the tenant diverge forever.  Quarantine it.
                self._quarantine(shard.name, f"apply failed: {exc}")
                if future is not None and not future.done():
                    future.set_exception(
                        ServiceError(f"apply failed for {shard.name!r}: {exc}")
                    )
            else:
                if future is not None and not future.done():
                    future.set_result(epoch)
            finally:
                queue.task_done()


def _encode(resp: dict) -> bytes:
    return json.dumps(resp, sort_keys=True).encode() + b"\n"


__all__ = ["CorenessService", "MAX_LINE", "PROTOCOL_VERSION"]
