"""Per-tenant state of the coreness service: ladders, WAL, snapshots.

One :class:`TenantShard` owns everything a tenant graph needs:

* the batch-dynamic ladders (a :class:`~repro.core.coreness.CorenessDecomposition`
  and/or :class:`~repro.core.density.DensityEstimator`, per the tenant's
  ``mode``), each wrapped in a
  :class:`~repro.resilience.recovery.RecoveryManager` so an injected or
  organic fault mid-batch escalates through rollback → checkpoint replay
  → rebuild instead of corrupting the tenant;
* a write-ahead :class:`~repro.graphs.tracefile.TraceWriter` log —
  :meth:`accept` appends (and flushes) the batch *before* anything
  applies, which is the durability point an ingest ack refers to;
* the published :class:`Snapshot` — an immutable view of every answer
  the query surface serves, rebuilt after each batch commit and flipped
  by a single reference assignment.  Readers never touch the live
  structures, so queries are consistent (one committed epoch) and never
  block on an in-flight batch — the asynchronous-reads contract of
  Liu–Shun–Zablotchi (arXiv 2401.08015) realised at batch granularity;
* periodic full checkpoints (``checkpoint.json``, atomic rename) so a
  restart replays only the WAL suffix.

Restart story (:meth:`TenantShard.open`): read ``meta.json`` for the
construction parameters, load the WAL through the torn-tail-tolerant
:func:`~repro.graphs.tracefile.recover_trace`, restore the newest usable
checkpoint, and replay the suffix through the recovery managers.  The
ladders are deterministic functions of (parameters, batch sequence), so
a recovered tenant answers bit-identically to one that never died.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Optional

from ..config import Constants
from ..core.coreness import CorenessDecomposition
from ..core.density import DensityEstimator
from ..errors import BatchError, ParameterError
from ..graphs.graph import DynamicGraph, normalize_batch
from ..graphs.streams import BatchOp
from ..graphs.tracefile import TraceWriter, recover_trace
from ..instrument import wallclock as _wallclock
from ..instrument.work_depth import CostModel
from ..resilience import checkpoint as ckpt
from ..resilience.recovery import RecoveryManager

#: tenant modes — which ladder(s) a tenant maintains and may query.
TENANT_MODES = ("coreness", "density", "both")

META_NAME = "meta.json"
WAL_NAME = "wal.trace"
CHECKPOINT_NAME = "checkpoint.json"


@dataclass(frozen=True)
class TenantConfig:
    """Construction parameters of one tenant's ladder(s) (persisted)."""

    n: int = 256
    eps: float = 0.35
    seed: int = 0
    mode: str = "both"
    constants: Constants = field(default_factory=Constants)

    def __post_init__(self) -> None:
        if self.mode not in TENANT_MODES:
            raise ParameterError(
                f"tenant mode must be one of {TENANT_MODES}, got {self.mode!r}"
            )
        if self.n < 2:
            raise ParameterError(f"tenant n must be >= 2, got {self.n}")

    def to_json(self) -> dict[str, Any]:
        """JSON-able form (the ``meta.json`` payload)."""
        return {
            "n": self.n,
            "eps": self.eps,
            "seed": self.seed,
            "mode": self.mode,
            "constants": asdict(self.constants),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TenantConfig":
        """Rebuild from :meth:`to_json` output (BatchError on garbage)."""
        try:
            return cls(
                n=int(payload["n"]),
                eps=float(payload["eps"]),
                seed=int(payload["seed"]),
                mode=str(payload["mode"]),
                constants=Constants(**dict(payload["constants"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BatchError(f"malformed tenant meta.json: {exc}") from exc


@dataclass(frozen=True)
class Snapshot:
    """The immutable published view one committed epoch's queries see.

    ``epoch`` counts committed batches.  Fields for ladders the tenant's
    mode does not maintain are ``None``.  Instances are never mutated —
    a commit builds a fresh one and flips the tenant's reference.
    """

    epoch: int
    live_edges: int
    coreness: Optional[Mapping[int, float]]
    max_coreness: Optional[float]
    density: Optional[float]
    arboricity: Optional[float]
    max_outdegree: Optional[int]
    out_neighbors: Optional[Mapping[int, tuple[int, ...]]]


class TenantShard:
    """One tenant graph: ladders + WAL + published snapshot.

    Thread discipline (enforced by the server, relied on here):
    :meth:`accept` calls are serialised per tenant and never overlap
    :meth:`close`; :meth:`apply` calls are serialised per tenant on the
    owning shard's writer; :attr:`snapshot` is read from anywhere (it is
    a single reference to an immutable object).
    """

    def __init__(
        self,
        name: str,
        directory: str | pathlib.Path,
        config: TenantConfig,
        *,
        checkpoint_every: int = 32,
        sync: bool = False,
        registry: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.directory = pathlib.Path(directory)
        self.config = config
        self.checkpoint_every = max(1, checkpoint_every)
        self.registry = registry
        self.cm = CostModel()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._write_meta()
        wal_ops = self._load_wal()
        self.accepted = len(wal_ops)  # batches durably in the WAL
        self.applied = 0  # batches committed into the ladders
        self.managers: dict[str, RecoveryManager] = {}
        self._recover(wal_ops)
        # mirror used to validate *accepted* (possibly not yet applied)
        # batches; replays the full WAL so accept-order validation holds.
        self.accepted_graph = DynamicGraph(0)
        for op in wal_ops:
            self._mirror(self.accepted_graph, op)
        self.snapshot = self._build_snapshot()
        self._writer = TraceWriter(
            self.directory / WAL_NAME, append=True, sync=sync
        )
        self._closed = False

    # -- construction helpers -------------------------------------------------

    def _write_meta(self) -> None:
        path = self.directory / META_NAME
        if path.exists():
            on_disk = TenantConfig.from_json(json.loads(path.read_text()))
            if on_disk != self.config:
                raise BatchError(
                    f"tenant {self.name!r}: on-disk parameters differ from "
                    "the requested ones — a tenant's ladder parameters are "
                    "immutable once created"
                )
            return
        _atomic_write(path, json.dumps(self.config.to_json(), sort_keys=True))

    def _load_wal(self) -> list[BatchOp]:
        """Tolerant WAL read; physically drops a torn tail before resume."""
        path = self.directory / WAL_NAME
        ops, good = recover_trace(path)
        if path.exists() and good < path.stat().st_size:
            # ``good`` already excludes any footer only for torn files;
            # sealed files return their full size, so a trim here is
            # always the torn-tail case.
            with open(path, "rb+") as fh:
                fh.truncate(good)
        return ops

    def _ladder_kinds(self) -> tuple[str, ...]:
        mode = self.config.mode
        return ("coreness", "density") if mode == "both" else (mode,)

    def _fresh_structure(self, kind: str) -> Any:
        cls = CorenessDecomposition if kind == "coreness" else DensityEstimator
        return cls(
            self.config.n,
            eps=self.config.eps,
            cm=self.cm,
            constants=self.config.constants,
            seed=self.config.seed,
        )

    def _recover(self, wal_ops: list[BatchOp]) -> None:
        """Checkpoint restore + WAL-suffix replay (or full replay)."""
        payload = self._read_checkpoint()
        position = 0
        structures: dict[str, Any] = {}
        if payload is not None and payload["position"] <= len(wal_ops):
            position = payload["position"]
            for kind in self._ladder_kinds():
                structures[kind] = ckpt.restore_checkpoint(
                    payload["structures"][kind], cm=self.cm
                )
        else:
            for kind in self._ladder_kinds():
                structures[kind] = self._fresh_structure(kind)
        prefix, suffix = wal_ops[:position], wal_ops[position:]
        for kind, structure in structures.items():
            graph = DynamicGraph(0)
            for op in prefix:
                self._mirror(graph, op)
            self.managers[kind] = RecoveryManager(
                structure,
                graph=graph,
                history=list(prefix),
                bounded_history=True,
            )
        self.applied = position
        for op in suffix:
            self._apply_managers(op)
            self.applied += 1

    def _read_checkpoint(self) -> Optional[dict[str, Any]]:
        path = self.directory / CHECKPOINT_NAME
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            position = int(payload["position"])
            structures = payload["structures"]
            if position < 0 or not isinstance(structures, dict):
                raise ValueError("negative position or bad structures")
            for kind in self._ladder_kinds():
                if kind not in structures:
                    raise ValueError(f"missing {kind} payload")
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            # a torn checkpoint write is survivable: fall back to a full
            # WAL replay rather than refusing to start the tenant.
            return None
        return {"position": position, "structures": structures}

    # -- the ingest path ------------------------------------------------------

    @staticmethod
    def _mirror(graph: DynamicGraph, op: BatchOp) -> None:
        if op.kind == "insert":
            graph.insert_batch(op.edges)
        else:
            graph.delete_batch(op.edges)

    def validate(self, op: BatchOp) -> BatchOp:
        """Check a batch against the accepted state; returns it canonical.

        Raises :class:`~repro.errors.BatchError` on duplicate edges,
        inserting a live edge, deleting an absent one, or endpoints
        outside the tenant's declared ``[0, n)`` universe.
        """
        # normalize_batch canonicalises and rejects self-loops/duplicates
        batch = normalize_batch(op.edges)
        for u, v in batch:
            if u < 0 or v >= self.config.n:
                raise BatchError(
                    f"edge ({u}, {v}) outside the tenant's declared "
                    f"universe [0, {self.config.n})"
                )
            live = (u, v) in self.accepted_graph.edges
            if op.kind == "insert" and live:
                raise BatchError(f"inserting live edge ({u}, {v})")
            if op.kind == "delete" and not live:
                raise BatchError(f"deleting absent edge ({u}, {v})")
        return BatchOp(op.kind, tuple(batch))

    def accept(self, op: BatchOp) -> int:
        """Validate + WAL-append one batch; returns its 1-based position.

        The returned position is the durability ack: the batch line is
        flushed (and fsynced when the shard was opened ``sync=True``)
        before this method returns, so a crash after the ack always
        replays the batch on restart.
        """
        if self._closed:
            raise BatchError(f"tenant {self.name!r} is closed")
        op = self.validate(op)
        self._writer.append(op)
        self._mirror(self.accepted_graph, op)
        self.accepted += 1
        if self.registry is not None:
            self.registry.counter(
                "repro_service_batches_ingested_total", tenant=self.name
            ).inc(1)
            self.registry.counter(
                "repro_service_edge_updates_total", tenant=self.name
            ).inc(op.size)
        return self.accepted

    # -- the apply path (shard writer thread) ---------------------------------

    def _apply_managers(self, op: BatchOp) -> None:
        for manager in self.managers.values():
            manager.apply(op)

    def apply(self, op: BatchOp) -> int:
        """Commit one accepted batch into the ladders; returns the epoch.

        Runs on the owning shard's writer (never concurrently with
        itself).  The published snapshot flips only after every ladder
        committed, so readers see epoch N answers or epoch N+1 answers,
        never a mixture.
        """
        t0 = _wallclock.monotonic()
        self._apply_managers(op)
        self.applied += 1
        self.snapshot = self._build_snapshot()
        if self.applied % self.checkpoint_every == 0:
            self.write_checkpoint()
        if self.registry is not None:
            self.registry.counter(
                "repro_service_batches_applied_total", tenant=self.name
            ).inc(1)
            self.registry.gauge(
                "repro_service_epoch", tenant=self.name
            ).set(self.applied)
            self.registry.histogram(
                "repro_service_apply_seconds", tenant=self.name
            ).observe(max(0.0, _wallclock.monotonic() - t0))
        return self.applied

    def _build_snapshot(self) -> Snapshot:
        cor = self.managers.get("coreness")
        den = self.managers.get("density")
        coreness = max_core = None
        density = arboricity = max_out = out_nb = None
        if cor is not None:
            st = cor.structure
            coreness = dict(st.estimates())
            max_core = st.max_estimate()
        if den is not None:
            st = den.structure
            density = st.density_estimate()
            arboricity = st.arboricity_estimate()
            max_out = st.max_outdegree()
            out_nb = {
                v: tuple(sorted(st.orientation_out(v)))
                for v in sorted(den.graph.adj)
                if den.graph.adj[v]
            }
        graph = (cor or den).graph
        return Snapshot(
            epoch=self.applied,
            live_edges=len(graph.edges),
            coreness=coreness,
            max_coreness=max_core,
            density=density,
            arboricity=arboricity,
            max_outdegree=max_out,
            out_neighbors=out_nb,
        )

    # -- durability -----------------------------------------------------------

    def write_checkpoint(self) -> None:
        """Atomically persist a full-ladder checkpoint at the current epoch."""
        payload = {
            "position": self.applied,
            "structures": {
                kind: ckpt.checkpoint(manager.structure)
                for kind, manager in self.managers.items()
            },
        }
        _atomic_write(self.directory / CHECKPOINT_NAME, json.dumps(payload))

    def close(self, seal: bool = True) -> None:
        """Checkpoint and seal the WAL (graceful shutdown); idempotent.

        ``seal=False`` releases the WAL handle without footer or
        checkpoint — the shutdown of a quarantined tenant whose ladders
        diverged from the WAL: the next start replays from the last good
        checkpoint instead of trusting the divergence.
        """
        if self._closed:
            return
        self._closed = True
        if seal:
            self.write_checkpoint()
            self._writer.close()
        else:
            self._writer.abort()

    @property
    def pending(self) -> int:
        """Accepted-but-not-yet-committed batches (ingest queue depth)."""
        return self.accepted - self.applied


def _atomic_write(path: pathlib.Path, text: str) -> None:
    """Write-then-rename so readers never observe a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def discover_tenants(data_dir: str | pathlib.Path) -> list[str]:
    """Tenant names with a ``meta.json`` under ``data_dir`` (sorted)."""
    root = pathlib.Path(data_dir)
    if not root.exists():
        return []
    return sorted(
        p.name for p in root.iterdir() if (p / META_NAME).is_file()
    )


__all__ = [
    "CHECKPOINT_NAME",
    "META_NAME",
    "Snapshot",
    "TENANT_MODES",
    "TenantConfig",
    "TenantShard",
    "WAL_NAME",
    "discover_tenants",
]
