"""Storage substrates for the orientation hot paths.

The reproduction's per-vertex ordered sets historically live in
per-object treaps (:mod:`repro.pbst.treap`) — one Python object per
stored edge, pointer-chased on every rank/select.  This package provides
the **flat** substrate: contiguous, binary-searched arrays with identical
set semantics, selected per structure via the ``substrate`` knob
(:func:`repro.config.check_substrate`).  The exemplar k-core engines in
SNIPPETS.md get their speed from exactly this layout (flat slices indexed
by vertex id); docs/PERFORMANCE.md quantifies the win at E21/E22 scale.

Contract: both substrates expose the same interface and the same
*canonical* behaviour — iteration in key order, ``any_at`` returning the
minimum filed tail — so every query answer, every game trajectory, and
(because all cost-model charges live in the callers) every work/depth/
counter total is bit-identical between them.  The differential panel
(``repro verify diff`` with the ``flat`` config) and the hypothesis
property test in ``tests/substrate/test_flat_substrate.py`` enforce the
equivalence end to end.
"""

from __future__ import annotations

from .flat import FlatInIndex, FlatOutSet


def outset_cls(substrate: str):
    """The per-vertex ranked out-set class of a substrate."""
    if substrate == "flat":
        return FlatOutSet
    from ..core.outset import OutSet

    return OutSet


def inindex_cls(substrate: str):
    """The per-vertex incoming-edge index class of a substrate."""
    if substrate == "flat":
        return FlatInIndex
    from ..core.inindex import InIndex

    return InIndex


__all__ = ["FlatOutSet", "FlatInIndex", "outset_cls", "inindex_cls"]
