"""Flat-array substrate: contiguous bisect-backed ordered sets.

Drop-in replacements for :class:`repro.core.outset.OutSet` and
:class:`repro.core.inindex.InIndex` that store keys in plain sorted
``list`` slabs instead of one treap node per edge.  Rank/select become a
binary search plus an index, insert/delete become a ``memmove`` inside
one contiguous buffer — all C-speed in CPython — and the per-edge object
graph (node, priority, two child pointers) disappears entirely.  For the
out-degrees the ladder ever holds (``<= H + 1`` filed positions per
vertex, small constants at E21/E22 scale) the O(n) shift is far below
the constant factor of pointer-chasing a treap, which is exactly the
trade the exemplar flat k-core engines make.

Semantics are *identical* to the treap substrate, not merely similar:

* iteration, ``first`` and ``window`` enumerate in ascending key order —
  the same total order (tuple ``<``) the treap uses;
* ``rank``/``select`` are 1-indexed with the same bounds behaviour
  (``select`` out of range raises :class:`IndexError`, like
  ``Treap.select``);
* ``any_at`` returns the **minimum** filed tail key, the canonical
  content-determined pick that keeps serial and process replicas on
  identical game trajectories;
* duplicate adds / missing removes raise ``AssertionError`` with the
  same messages as the treap-backed classes.

No cost-model calls live here — charging is the caller's job (see
``core/balanced.py``), which is why swapping substrates cannot perturb
work/depth/counters.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Optional


class FlatOutSet:
    """Ordered out-neighbour set of one vertex, on a contiguous slab."""

    __slots__ = ("_keys",)

    def __init__(self) -> None:
        self._keys: list[Any] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, w: Any) -> bool:
        keys = self._keys
        i = bisect_left(keys, w)
        return i < len(keys) and keys[i] == w

    def add(self, w: Any) -> None:
        keys = self._keys
        i = bisect_left(keys, w)
        if i < len(keys) and keys[i] == w:
            raise AssertionError(f"out-edge to {w} already present")
        keys.insert(i, w)

    def remove(self, w: Any) -> None:
        keys = self._keys
        i = bisect_left(keys, w)
        if i >= len(keys) or keys[i] != w:
            raise AssertionError(f"out-edge to {w} absent")
        del keys[i]

    def rank(self, w: Any) -> int:
        """1-indexed rank of the edge to ``w`` (must be present)."""
        keys = self._keys
        i = bisect_left(keys, w)
        if i >= len(keys) or keys[i] != w:
            raise AssertionError(f"out-edge to {w} absent")
        return i + 1

    def select(self, rank: int) -> Any:
        """Neighbour at 1-indexed ``rank``."""
        if not (1 <= rank <= len(self._keys)):
            raise IndexError(f"select({rank - 1}) on set of size {len(self._keys)}")
        return self._keys[rank - 1]

    def first(self, k: int) -> list[Any]:
        """The first ``min(k, len)`` neighbours in rank order."""
        return self._keys[:k]

    def window(self, lo: int, hi: int) -> list[Any]:
        """Keys at 1-indexed positions ``lo..hi`` inclusive (clamped)."""
        return self._keys[max(0, lo - 1): hi]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._keys)

    def check(self) -> None:
        keys = self._keys
        for i in range(1, len(keys)):
            if not keys[i - 1] < keys[i]:
                raise AssertionError("flat out-set keys out of order")


class FlatInIndex:
    """Incoming-edge index of one vertex, one sorted slab per bucket.

    The treap substrate nests ``(tr, label) -> {lev -> Treap}``; here the
    whole key is flattened to one dict level, ``(tr, label, lev) ->
    sorted list of tail keys``, because the only query the games ever
    issue ("minimum tail at exactly this (tr, label, lev)") is a single
    dict hit plus ``bucket[0]``.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: dict[tuple[int, int, int], list[Any]] = {}

    def add(self, tail: Any, tr: int, label: int, lev: int) -> None:
        bucket = self._buckets.get((tr, label, lev))
        if bucket is None:
            self._buckets[(tr, label, lev)] = [tail]
            return
        i = bisect_left(bucket, tail)
        if i < len(bucket) and bucket[i] == tail:
            raise AssertionError(f"in-edge from {tail} already filed at {(tr, label, lev)}")
        bucket.insert(i, tail)

    def remove(self, tail: Any, tr: int, label: int, lev: int) -> None:
        bucket = self._buckets.get((tr, label, lev))
        if bucket is not None:
            i = bisect_left(bucket, tail)
            if i < len(bucket) and bucket[i] == tail:
                del bucket[i]
                if not bucket:
                    del self._buckets[(tr, label, lev)]
                return
        raise AssertionError(
            f"in-edge from {tail} not filed at {(tr, label, lev)}"
        )

    def move(
        self,
        tail: Any,
        old: tuple[int, int, int],
        new: tuple[int, int, int],
    ) -> None:
        """Re-file one in-edge under new (tr, label, lev).

        remove+add inlined: this is the single hottest call in a rung
        batch (every rank/label/level shift funnels through it).
        """
        if old == new:
            return
        buckets = self._buckets
        bucket = buckets.get(old)
        if bucket is not None:
            i = bisect_left(bucket, tail)
            if i < len(bucket) and bucket[i] == tail:
                del bucket[i]
                if not bucket:
                    del buckets[old]
            else:
                bucket = None
        if bucket is None:
            raise AssertionError(f"in-edge from {tail} not filed at {old}")
        target = buckets.get(new)
        if target is None:
            buckets[new] = [tail]
            return
        j = bisect_left(target, tail)
        if j < len(target) and target[j] == tail:
            raise AssertionError(f"in-edge from {tail} already filed at {new}")
        target.insert(j, tail)

    def any_at(self, tr: int, label: int, lev: int) -> Optional[Any]:
        """The minimum tail filed at exactly (tr, label, lev), else None."""
        bucket = self._buckets.get((tr, label, lev))
        if not bucket:
            return None
        return bucket[0]

    def any_truncated(self, tr: int, lev: int) -> Optional[Any]:
        """Any tail with truncated rank ``tr`` at level ``lev``, any label."""
        for label in range(4):
            tail = self.any_at(tr, label, lev)
            if tail is not None:
                return tail
        return None

    def entries(self) -> Iterator[tuple[Any, int, int, int]]:
        """Yield (tail, tr, label, lev) of every filed in-edge (for checks)."""
        for (tr, label, lev), bucket in self._buckets.items():
            for tail in bucket:
                yield tail, tr, label, lev

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
