"""Shared-memory blob transport for the resident-state executor.

:class:`ShmArena` is a small coordinator-owned registry of named
``multiprocessing.shared_memory`` segments.  The coordinator publishes a
structure blob once (`publish`), hands the ``(name, size)`` ticket to a
worker over its pipe, and the worker attaches and copies the bytes out
(`read`).  Segments are coordinator-owned: only the publishing process
ever unlinks (`release` / `close`), so the resource tracker bookkeeping
stays in one process and no segment outlives the executor.

This is deliberately *transport*, not shared state: workers copy the
blob and unpickle their own private structure.  The sharing win is that
a seed blob crosses the process boundary exactly once per structure
lifetime — every later batch ships only the per-rung ops (see
:mod:`repro.pram.shmexec`).
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory


class ShmArena:
    """Coordinator-side registry of published shared-memory blobs."""

    def __init__(self, tag: str = "repro") -> None:
        self._tag = tag
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def publish(self, blob: bytes) -> tuple[str, int]:
        """Copy ``blob`` into a fresh named segment; return its ticket."""
        # names must be unique machine-wide; a random suffix avoids both
        # collisions across executors and guessable names.
        name = f"{self._tag}_{secrets.token_hex(8)}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, len(blob)))
        seg.buf[: len(blob)] = blob
        self._segments[seg.name] = seg
        return seg.name, len(blob)

    def release(self, name: str) -> None:
        """Unlink a published segment (idempotent)."""
        seg = self._segments.pop(name, None)
        if seg is not None:
            seg.close()
            seg.unlink()

    def close(self) -> None:
        """Unlink every outstanding segment."""
        for name in list(self._segments):
            self.release(name)

    def __len__(self) -> int:
        return len(self._segments)

    @staticmethod
    def read(name: str, size: int) -> bytes:
        """Attach to a published segment and copy its payload out.

        Safe from any process; the returned bytes are a private copy, so
        the publisher may unlink as soon as the reader has returned.
        """
        seg = shared_memory.SharedMemory(name=name)
        try:
            return bytes(seg.buf[:size])
        finally:
            seg.close()


__all__ = ["ShmArena"]
