"""The verification subsystem — audits, differential replay, trace shrinking.

Layered bottom-up (and imported in that order — ``audits`` must be fully
initialised before ``differential``, because ``repro.core``'s compat shim
re-enters this package while ``repro.core`` itself is still loading):

* :mod:`repro.verify.audits` — absolute audits of one structure against
  the exact oracles (the old ``core/verify.py``, grown an ``ExecConfig``);
* :mod:`repro.verify.minimize` — deterministic ddmin shrinking of failing
  streams, with validity-preserving stream repair;
* :mod:`repro.verify.differential` — one stream replayed through N named
  execution configurations, outputs diffed per batch;
* :mod:`repro.verify.artifact` — the replayable JSON repro format behind
  ``repro verify --replay``.

docs/VERIFICATION.md is the narrative companion.
"""

from .audits import (
    AuditReport,
    audit_coreness,
    audit_density,
    audit_orientation,
    replay_audit,
)
from .minimize import minimize_stream, repair_stream
from .differential import (
    DiffReport,
    Divergence,
    RunnerConfig,
    configs_by_name,
    default_configs,
    diff_predicate,
    minimize_diff,
    run_diff,
)
from .artifact import read_artifact, replay_artifact, write_artifact

__all__ = [
    "AuditReport",
    "DiffReport",
    "Divergence",
    "RunnerConfig",
    "audit_coreness",
    "audit_density",
    "audit_orientation",
    "configs_by_name",
    "default_configs",
    "diff_predicate",
    "minimize_diff",
    "minimize_stream",
    "read_artifact",
    "repair_stream",
    "replay_artifact",
    "replay_audit",
    "run_diff",
    "write_artifact",
]
