"""Replayable repro artifacts — the JSON exchange format of the harness.

A minimized failing stream is only useful if it travels: CI uploads it,
a developer downloads it, and ``repro verify --replay ARTIFACT`` runs
*exactly* the failing scenario locally.  This module owns that file
format:

* ``kind == "diff"`` — a differential-replay failure: the (minimized)
  stream, the :class:`~repro.verify.differential.RunnerConfig` panel it
  fails under, and the replay parameters (``n``, ``eps``, constants,
  ``deep_every``).
* ``kind == "chaos"`` — a chaos-trial failure: the stream, the managed
  structure's name and parameters, and the planned fault triples.

``replay_artifact`` re-runs the scenario and reports whether the
recorded failure **reproduces** — the exit-0 condition of
``repro verify --replay`` is "yes, it still fails", because a repro
artifact that no longer fails is itself a finding (the bug moved).

The format is versioned and validated on read; unknown versions and
malformed payloads raise :class:`~repro.errors.ParameterError` rather
than half-replaying garbage.  See docs/VERIFICATION.md for the schema.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Optional, Sequence

from ..config import Constants
from ..errors import ParameterError
from ..graphs.streams import BatchOp
from .differential import DiffReport, RunnerConfig, run_diff

FORMAT = "repro-verify-repro"
VERSION = 1
KINDS = ("diff", "chaos")


def _encode_stream(ops: Sequence[BatchOp]) -> list:
    return [[op.kind, [list(e) for e in op.edges]] for op in ops]


def _decode_stream(raw: Any) -> list[BatchOp]:
    if not isinstance(raw, list):
        raise ParameterError("artifact stream must be a list of [kind, edges]")
    ops: list[BatchOp] = []
    for entry in raw:
        try:
            kind, edges = entry
            if kind not in ("insert", "delete"):
                raise ValueError(kind)
            ops.append(BatchOp(kind, tuple((int(u), int(v)) for u, v in edges)))
        except (TypeError, ValueError) as exc:
            raise ParameterError(f"malformed artifact stream entry {entry!r}") from exc
    return ops


def write_artifact(
    path: str | pathlib.Path,
    *,
    kind: str,
    ops: Sequence[BatchOp],
    params: dict,
    configs: Optional[Sequence[RunnerConfig]] = None,
    structure: Optional[str] = None,
    faults: Sequence[tuple[str, int, str]] = (),
    constants: Optional[Constants] = None,
    expected: Optional[dict] = None,
) -> pathlib.Path:
    """Serialise a minimized repro; returns the path written."""
    if kind not in KINDS:
        raise ParameterError(f"unknown artifact kind {kind!r}; known: {KINDS}")
    payload: dict[str, Any] = {
        "format": FORMAT,
        "version": VERSION,
        "kind": kind,
        "stream": _encode_stream(ops),
        "params": dict(params),
        "expected": dict(expected or {}),
    }
    if constants is not None:
        payload["constants"] = dataclasses.asdict(constants)
    if kind == "diff":
        if not configs:
            raise ParameterError("a diff artifact needs its config panel")
        payload["configs"] = [c.to_dict() for c in configs]
    else:
        if structure is None:
            raise ParameterError("a chaos artifact needs the structure name")
        payload["structure"] = structure
        payload["faults"] = [list(f) for f in faults]
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_artifact(path: str | pathlib.Path) -> dict:
    """Load and validate an artifact; returns the decoded payload."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"cannot read artifact {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT:
        raise ParameterError(f"{path} is not a {FORMAT} artifact")
    if payload.get("version") != VERSION:
        raise ParameterError(
            f"{path}: unsupported artifact version {payload.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    if payload.get("kind") not in KINDS:
        raise ParameterError(f"{path}: unknown artifact kind {payload.get('kind')!r}")
    payload["stream"] = _decode_stream(payload.get("stream"))
    return payload


def _constants_of(payload: dict) -> Constants:
    raw = payload.get("constants")
    if raw is None:
        return Constants()
    known = {f.name for f in dataclasses.fields(Constants)}
    return Constants(**{k: v for k, v in raw.items() if k in known})


def replay_artifact(path: str | pathlib.Path) -> tuple[bool, str]:
    """Re-run a repro artifact; ``(reproduced, rendered report)``.

    ``reproduced`` is True iff the recorded failure still occurs — a
    divergence for ``kind="diff"``, at least one trial finding for
    ``kind="chaos"``.
    """
    payload = read_artifact(path)
    ops: list[BatchOp] = payload["stream"]
    params = payload.get("params", {})
    constants = _constants_of(payload)
    if payload["kind"] == "diff":
        report: DiffReport = run_diff(
            ops,
            configs=[RunnerConfig.from_dict(d) for d in payload["configs"]],
            eps=float(params.get("eps", 0.35)),
            constants=constants,
            seed=int(params.get("seed", 0)),
            n=int(params["n"]) if "n" in params else None,
            deep_every=int(params.get("deep_every", 0)),
        )
        return (not report.ok, report.render())
    # kind == "chaos": lazy import — chaos pulls in the whole resilience
    # stack and itself imports this package for artifact writing.
    from ..resilience.chaos import run_trial
    from ..resilience.faults import FaultInjector, FaultSpec

    specs = [
        FaultSpec(site=s, hit=int(h), action=a)
        for s, h, a in payload.get("faults", [])
    ]
    injector = FaultInjector(specs, seed=int(params.get("injector_seed", 0)))
    findings, _manager = run_trial(
        payload["structure"],
        ops,
        injector,
        n=int(params.get("n", 24)),
        H=int(params.get("H", 4)),
        eps=float(params.get("eps", 0.35)),
        checkpoint_every=int(params.get("checkpoint_every", 5)),
        audit_every=int(params.get("audit_every", 1)),
        constants=constants,
        seed=int(params.get("seed", 0)),
        deep_audit=bool(params.get("deep_audit", True)),
        tag="replay",
    )
    lines = [
        f"chaos replay [{payload['structure']}]: "
        f"{len(ops)} batches, {len(injector.fired)} fault(s) fired, "
        f"{'RED (reproduced)' if findings else 'GREEN (did not reproduce)'}"
    ]
    lines.extend(f"  - {f}" for f in findings)
    return (bool(findings), "\n".join(lines))
